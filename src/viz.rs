//! Minimal SVG rendering of simulation geometry: the field, node
//! positions, destination zones, and per-packet routes — the publishable
//! version of the `route_trace` example's ASCII maps. No dependencies;
//! emits plain SVG 1.1.

use alert_geom::{Point, Rect};

/// An SVG scene over a network field.
pub struct SvgScene {
    field: Rect,
    width_px: f64,
    body: String,
}

impl SvgScene {
    /// Creates a scene for `field`, rendered `width_px` wide (height
    /// follows the field's aspect ratio).
    pub fn new(field: Rect, width_px: f64) -> Self {
        assert!(width_px > 0.0 && field.area() > 0.0);
        SvgScene {
            field,
            width_px,
            body: String::new(),
        }
    }

    fn sx(&self, x: f64) -> f64 {
        (x - self.field.min.x) / self.field.width() * self.width_px
    }

    fn sy(&self, y: f64) -> f64 {
        // SVG y grows downward; field y grows upward.
        let h = self.height_px();
        h - (y - self.field.min.y) / self.field.height() * h
    }

    /// Rendered height in pixels.
    pub fn height_px(&self) -> f64 {
        self.width_px * self.field.height() / self.field.width()
    }

    /// Draws every node as a small dot.
    pub fn nodes(&mut self, positions: &[Point], color: &str) -> &mut Self {
        for p in positions {
            self.body.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="2" fill="{color}"/>"#,
                self.sx(p.x),
                self.sy(p.y)
            ));
            self.body.push('\n');
        }
        self
    }

    /// Draws a labelled marker (e.g. S or D).
    pub fn marker(&mut self, p: Point, label: &str, color: &str) -> &mut Self {
        self.body.push_str(&format!(
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="6" fill="{color}"/><text x="{tx:.1}" y="{ty:.1}" font-size="14" font-family="monospace" fill="{color}">{label}</text>"#,
            x = self.sx(p.x),
            y = self.sy(p.y),
            tx = self.sx(p.x) + 8.0,
            ty = self.sy(p.y) - 8.0,
        ));
        self.body.push('\n');
        self
    }

    /// Outlines a zone rectangle (e.g. `Z_D`).
    pub fn zone(&mut self, zone: &Rect, color: &str) -> &mut Self {
        self.body.push_str(&format!(
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="{color}" stroke-width="1.5" stroke-dasharray="6 3"/>"#,
            self.sx(zone.min.x),
            self.sy(zone.max.y),
            zone.width() / self.field.width() * self.width_px,
            zone.height() / self.field.height() * self.height_px(),
        ));
        self.body.push('\n');
        self
    }

    /// Draws a route as a polyline through the given positions.
    pub fn route(&mut self, hops: &[Point], color: &str) -> &mut Self {
        if hops.len() < 2 {
            return self;
        }
        let points: Vec<String> = hops
            .iter()
            .map(|p| format!("{:.1},{:.1}", self.sx(p.x), self.sy(p.y)))
            .collect();
        self.body.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2" opacity="0.8"/>"#,
            points.join(" ")
        ));
        self.body.push('\n');
        self
    }

    /// Adds a caption line under the top edge.
    pub fn caption(&mut self, text: &str) -> &mut Self {
        self.body.push_str(&format!(
            r##"<text x="8" y="18" font-size="14" font-family="monospace" fill="#333">{}</text>"##,
            text.replace('&', "&amp;").replace('<', "&lt;")
        ));
        self.body.push('\n');
        self
    }

    /// Finishes the document.
    pub fn render(&self) -> String {
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" "#,
                r#"viewBox="0 0 {w:.0} {h:.0}">"#,
                "\n<rect width=\"100%\" height=\"100%\" fill=\"#fcfcf8\"/>\n{body}</svg>\n"
            ),
            w = self.width_px,
            h = self.height_px(),
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Rect {
        Rect::with_size(1000.0, 500.0)
    }

    #[test]
    fn document_structure() {
        let mut s = SvgScene::new(field(), 800.0);
        s.caption("test");
        let svg = s.render();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(r#"width="800""#));
        assert!(svg.contains(r#"height="400""#), "aspect ratio preserved");
    }

    #[test]
    fn coordinates_map_correctly() {
        let mut s = SvgScene::new(field(), 1000.0);
        // Field origin (0,0) is bottom-left -> SVG (0, height).
        s.marker(Point::new(0.0, 0.0), "O", "#000");
        let svg = s.render();
        assert!(svg.contains(r#"cx="0.0" cy="500.0""#), "{svg}");
        let mut s = SvgScene::new(field(), 1000.0);
        s.marker(Point::new(1000.0, 500.0), "T", "#000");
        assert!(s.render().contains(r#"cx="1000.0" cy="0.0""#));
    }

    #[test]
    fn routes_become_polylines() {
        let mut s = SvgScene::new(field(), 1000.0);
        s.route(
            &[
                Point::new(0.0, 0.0),
                Point::new(500.0, 250.0),
                Point::new(1000.0, 500.0),
            ],
            "#c00",
        );
        let svg = s.render();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("0.0,500.0 500.0,250.0 1000.0,0.0"));
    }

    #[test]
    fn single_point_route_is_dropped() {
        let mut s = SvgScene::new(field(), 100.0);
        s.route(&[Point::new(1.0, 1.0)], "#c00");
        assert!(!s.render().contains("polyline"));
    }

    #[test]
    fn captions_escape_markup() {
        let mut s = SvgScene::new(field(), 100.0);
        s.caption("a < b & c");
        let svg = s.render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn zones_render_as_dashed_rects() {
        let mut s = SvgScene::new(field(), 1000.0);
        s.zone(
            &Rect::new(Point::new(500.0, 0.0), Point::new(1000.0, 250.0)),
            "#06c",
        );
        let svg = s.render();
        assert!(svg.contains("stroke-dasharray"));
        assert!(
            svg.contains(r#"x="500.0" y="250.0" width="500.0" height="250.0""#),
            "{svg}"
        );
    }
}

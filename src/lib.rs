//! # alert
//!
//! A from-scratch Rust reproduction of **ALERT: An Anonymous
//! Location-Based Efficient Routing Protocol in MANETs** (Shen & Zhao,
//! ICPP 2011 / IEEE TMC 2012): the protocol, the discrete-event MANET
//! simulator it runs on, the GPSR / ALARM / AO2P comparison baselines, the
//! adversary analyzers, and the paper's closed-form theory.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `alert-geom` | points, zones, hierarchical partition, spatial grid |
//! | [`crypto`] | `alert-crypto` | SHA-1, ciphers, pseudonyms, crypto cost model |
//! | [`mobility`] | `alert-mobility` | random waypoint, RPGM group mobility |
//! | [`sim`] | `alert-sim` | event engine, channel/MAC, node runtime, metrics |
//! | [`trace`] | `alert-trace` | trace events & sinks, counter/histogram registry, run profiles |
//! | [`protocols`] | `alert-protocols` | GPSR, ALARM, AO2P, forwarding primitives |
//! | [`core`] | `alert-core` | **the ALERT protocol** |
//! | [`adversary`] | `alert-adversary` | eavesdropping, timing & intersection attacks |
//! | [`analysis`] | `alert-analysis` | Eqs. (1)–(15) closed forms |
//! | [`viz`] | (this crate) | dependency-free SVG rendering of fields, zones and routes |
//!
//! ## Quickstart
//!
//! ```
//! use alert::prelude::*;
//!
//! // The paper's default scenario, scaled down for a doc test.
//! let mut scenario = ScenarioConfig::default().with_nodes(80).with_duration(10.0);
//! scenario.traffic.pairs = 3;
//! let mut world = World::new(scenario, 7, |_, _| Alert::new(AlertConfig::default()));
//! world.run();
//! let m = world.metrics();
//! assert!(m.delivery_rate() > 0.5);
//! assert!(m.mean_random_forwarders() > 0.0, "anonymity comes from RFs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod viz;

pub use alert_adversary as adversary;
pub use alert_analysis as analysis;
pub use alert_core as core;
pub use alert_crypto as crypto;
pub use alert_geom as geom;
pub use alert_mobility as mobility;
pub use alert_protocols as protocols;
pub use alert_sim as sim;
pub use alert_trace as trace;

/// The most common imports for driving an ALERT simulation.
pub mod prelude {
    pub use alert_adversary::{IntersectionAttack, TrafficLog};
    pub use alert_core::{Alert, AlertConfig};
    pub use alert_geom::{destination_zone, Axis, Point, Rect};
    pub use alert_protocols::{Alarm, Anodr, Ao2p, Gpsr, Mapcp, Mask, Prism, Zap};
    pub use alert_sim::{
        LocationPolicy, Metrics, MobilityKind, NodeId, ScenarioConfig, SessionId, World,
    };
}

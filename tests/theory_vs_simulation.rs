//! Cross-crate consistency: the paper's Section 4 closed forms against
//! the Section 5 simulator — "Experimental results exhibit consistency
//! with the theoretical analysis" is itself a claim we test.

use alert::analysis;
use alert::geom::{destination_zone, Axis, Rect};
use alert::mobility::{Mobility, RandomWaypoint, RandomWaypointConfig};
use alert::prelude::*;

const L: f64 = 1000.0;

/// Simulated RF counts track the Eq. (10) curve: same slope regime, with
/// the simulator's extra "last RF" offsetting the analytic count upward
/// by a bounded constant.
#[test]
fn random_forwarders_match_eq_10_shape() {
    let mut sim_means = Vec::new();
    let mut theory = Vec::new();
    for h in [3u32, 5, 7] {
        let mut acc = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let mut cfg = ScenarioConfig::default().with_duration(40.0);
            cfg.traffic.pairs = 5;
            let acfg = AlertConfig::default().with_h(h);
            let mut w = World::new(cfg, 300 + seed, move |_, _| Alert::new(acfg));
            w.run();
            acc += w.metrics().mean_random_forwarders();
        }
        sim_means.push(acc / runs as f64);
        theory.push(analysis::expected_random_forwarders(h));
    }
    // Per-point: the simulator's extra "last RF" keeps it near (and
    // loosely above) the analytic curve. The band is deliberately wide —
    // 5-run Monte-Carlo means move with the RNG stream, and this test
    // must hold across toolchains, not just one lucky seed batch.
    for (i, (s, t)) in sim_means.iter().zip(&theory).enumerate() {
        let offset = s - t;
        assert!(
            (-0.5..3.0).contains(&offset),
            "H point {i}: simulated {s:.2} vs theory {t:.2} (offset {offset:.2})"
        );
    }
    // Growth direction is asserted once, on the endpoints — not per
    // point, where Monte-Carlo noise between adjacent H values flakes.
    let sim_slope = (sim_means[2] - sim_means[0]) / 4.0;
    let theory_slope = (theory[2] - theory[0]) / 4.0;
    assert!(
        sim_slope > 0.0,
        "simulated RFs must grow with H: slope {sim_slope:.2}/partition"
    );
    assert!(
        (sim_slope - theory_slope).abs() < 0.5,
        "slopes diverge: sim {sim_slope:.2}/partition vs theory {theory_slope:.2}"
    );
}

/// Simulated zone residence tracks Eq. (15) within Monte-Carlo noise.
#[test]
fn zone_residence_matches_eq_15() {
    let (nodes, h, speed) = (200usize, 5u32, 2.0f64);
    let field = Rect::with_size(L, L);
    let runs = 30;
    let t_probe = 20.0;
    let mut remaining_acc = 0.0;
    for seed in 0..runs {
        let mut m = RandomWaypoint::new(
            field,
            RandomWaypointConfig::fixed_speed(nodes, speed),
            900 + seed,
        );
        let dest = m.position(0);
        let zd = destination_zone(&field, dest, h, Axis::Vertical);
        let members: Vec<usize> = (0..nodes).filter(|&i| zd.contains(m.position(i))).collect();
        let mut t = 0.0;
        while t < t_probe {
            m.step(0.5);
            t += 0.5;
        }
        remaining_acc += members
            .iter()
            .filter(|&&i| zd.contains(m.position(i)))
            .count() as f64;
    }
    let simulated = remaining_acc / runs as f64;
    let predicted = analysis::remaining_nodes(h, L, L, nodes as f64 / (L * L), speed, t_probe);
    let rel_err = (simulated - predicted).abs() / predicted;
    // 0.45 rather than a tighter band: the estimate averages 30 runs of
    // a boundary-crossing count, whose variance is dominated by the few
    // nodes that straddle the zone edge — CI-safe beats seed-lucky.
    assert!(
        rel_err < 0.45,
        "Eq. 15 predicts {predicted:.2}, simulation gives {simulated:.2} (rel err {rel_err:.2})"
    );
}

/// The analytic participation ceiling (Eq. 7) bounds — in order of
/// magnitude — what the simulator actually recruits per packet.
#[test]
fn participation_theory_is_an_upper_envelope_per_packet() {
    let mut cfg = ScenarioConfig::default().with_duration(40.0);
    cfg.traffic.pairs = 5;
    let mut w = World::new(cfg, 42, |_, _| Alert::new(AlertConfig::default()));
    w.run();
    // Per-packet participants (not the cumulative union).
    let m = w.metrics();
    let per_packet: f64 = m
        .packets
        .iter()
        .map(|p| p.participants.len() as f64)
        .sum::<f64>()
        / m.packets_sent().max(1) as f64;
    let ceiling = analysis::expected_participants(5, L, L, 200.0 / (L * L));
    assert!(
        per_packet < ceiling,
        "one packet recruits {per_packet:.1} nodes, above the possible-participant mean {ceiling:.1}"
    );
    assert!(
        per_packet > 2.0,
        "suspiciously few participants: {per_packet:.1}"
    );
}

/// The location-service overhead condition at the end of Section 4.3:
/// with N_L ~ sqrt(N), service traffic is a vanishing fraction of
/// communication traffic in an actual run.
#[test]
fn location_service_overhead_is_negligible() {
    let cfg = ScenarioConfig::default().with_duration(60.0);
    let mut w = World::new(cfg, 5, |_, _| Alert::new(AlertConfig::default()));
    w.run();
    let service_msgs = w.location().messages as f64;
    // Position updates happen once per second per node: f = 1 Hz. CBR data
    // transmissions (per hop) are the "regular communication messages".
    let data_hops: u64 = w.metrics().packets.iter().map(|p| u64::from(p.hops)).sum();
    let ratio_model = w.location().overhead_ratio(200, 1.0, 5.0);
    assert!(
        ratio_model < 1.0,
        "Section 4.3 condition violated: {ratio_model}"
    );
    // And the realized accounting is the same order of magnitude.
    assert!(service_msgs > 0.0 && data_hops > 0);
}

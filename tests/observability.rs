//! End-to-end observability: run the real ALERT protocol with a trace
//! sink attached, replay the trace, and check it against the simulator's
//! ground-truth `Metrics` — plus profile and ring-buffer sanity.

use alert::core::{Alert, AlertConfig};
use alert::sim::{JsonlSink, RingBufferSink, ScenarioConfig, SharedBuf, World};
use alert::trace::{parse_trace, reconstruct_packets, trace_stats, TraceEvent};
use alert_bench::{run_instrumented, ProtocolChoice, RunOptions};

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(100)
        .with_duration(20.0);
    cfg.traffic.pairs = 4;
    cfg
}

/// Runs ALERT with a JSONL sink; returns the world and trace text.
fn traced_alert(seed: u64) -> (World<Alert>, String) {
    let buf = SharedBuf::new();
    let mut w = World::new(scenario(), seed, |_, _| Alert::new(AlertConfig::default()));
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    w.run();
    w.take_trace_sink();
    (w, buf.contents())
}

#[test]
fn alert_trace_replay_matches_metrics() {
    let (w, text) = traced_alert(21);
    let events = parse_trace(&text).expect("ALERT trace parses");
    assert!(!events.is_empty());
    let packets = reconstruct_packets(&events);
    let m = w.metrics();
    assert!(m.delivery_rate() > 0.5, "scenario sanity");
    assert_eq!(packets.len(), m.packets_sent());

    for (id, rec) in m.packets.iter().enumerate() {
        let p = &packets[&(id as u64)];
        assert_eq!(p.session, Some(u64::from(rec.session.0)));
        assert_eq!(p.src, Some(rec.src.0 as u64));
        assert_eq!(p.dst, Some(rec.dst.0 as u64));
        assert_eq!(p.sent_at, Some(rec.sent_at));
        // The core self-check: the hop path reconstructed from the trace
        // is exactly the ground-truth participant list.
        let participants: Vec<u64> = rec.participants.iter().map(|n| n.0 as u64).collect();
        assert_eq!(p.participants, participants, "packet {id} participants");
        assert_eq!(p.hops, u64::from(rec.hops), "packet {id} hops");
        assert_eq!(
            p.random_forwarders,
            u64::from(rec.random_forwarders),
            "packet {id} RFs"
        );
        assert_eq!(p.delivered_at.is_some(), rec.delivered_at.is_some());
        match (p.latency, rec.latency()) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12, "packet {id} latency"),
            (None, None) => {}
            other => panic!("packet {id}: latency mismatch {other:?}"),
        }
    }

    let stats = trace_stats(&events);
    assert_eq!(stats.drops_by_reason, m.drops);
    assert!(
        stats.pseudonym_rotations > 0,
        "ALERT rotates pseudonyms every hello interval"
    );
    let partitions: u64 = packets.values().map(|p| p.zone_partitions).sum();
    assert!(partitions > 0, "ALERT partitions zones while routing");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::ForwarderSelect { .. })),
        "greedy forwarding decisions are traced"
    );
}

#[test]
fn alert_traces_are_reproducible() {
    let (_, a) = traced_alert(33);
    let (_, b) = traced_alert(33);
    assert_eq!(a, b, "same-seed ALERT traces must be byte-identical");
}

#[test]
fn instrumented_run_produces_a_profile() {
    let opts = RunOptions {
        trace: None,
        profile: true,
        ..RunOptions::default()
    };
    let out = run_instrumented(
        ProtocolChoice::Alert(AlertConfig::default()),
        &scenario(),
        5,
        opts,
    )
    .expect("valid scenario");
    let p = &out.profile;
    assert!(p.events_dispatched > 0);
    assert!(p.fel_high_water > 0);
    assert!(p.wall_clock_s > 0.0);
    assert!(p.events_per_sec > 0.0);
    assert!(p.sim_time_s > 0.0);
    assert!(
        p.callbacks.contains_key("deliver") && p.callbacks.contains_key("app_send"),
        "callback classes present: {:?}",
        p.callbacks.keys().collect::<Vec<_>>()
    );
    let cb_total: u64 = p.callbacks.values().map(|c| c.count).sum();
    assert_eq!(cb_total, p.events_dispatched, "every event is classified");
    // The registry snapshot rides along in the profile.
    assert!(p.registry.counters["app.packets"] > 0);
    assert!(p.registry.counters["tx.frames"] > 0);
}

#[test]
fn ring_buffer_keeps_the_tail_of_a_run() {
    let sink = RingBufferSink::new(64);
    let handle = sink.handle();
    let mut w = World::new(scenario(), 13, |_, _| Alert::new(AlertConfig::default()));
    w.set_trace_sink(Box::new(sink));
    w.run();
    let tail = handle.events();
    assert_eq!(tail.len(), 64, "buffer is full after a long run");
    // Events arrive in nondecreasing sim-time order.
    for pair in tail.windows(2) {
        assert!(pair[0].time() <= pair[1].time());
    }
    // The tail is from the end of the run, not the beginning.
    assert!(tail[0].time() > 1.0);
}

//! Whole-repository ordering invariants: with all eight protocols on the
//! same scenario and seeds, the cost/anonymity orderings the paper argues
//! for must hold simultaneously. This is the repo's broadest regression
//! fence — any calibration change that silently flips a comparison fails
//! here.

use alert::crypto::CostModel;
use alert::prelude::*;

struct Row {
    name: &'static str,
    delivery: f64,
    latency: f64,
    hops: f64,
    energy: f64,
    pk_per_packet: f64,
}

fn run_all(seed: u64) -> Vec<Row> {
    let mut cfg = ScenarioConfig::default().with_duration(60.0);
    cfg.traffic.pairs = 5;
    let cpu = cfg.energy.cpu_watts;
    let mut rows = Vec::new();
    macro_rules! measure {
        ($name:literal, $factory:expr) => {{
            let mut w = World::new(cfg.clone(), seed, $factory);
            w.run();
            let m = w.metrics();
            rows.push(Row {
                name: $name,
                delivery: m.delivery_rate(),
                latency: m.mean_latency().unwrap_or(f64::NAN),
                hops: m.hops_per_packet(),
                energy: m.energy_per_delivered_packet_j(&CostModel::PAPER_1_8GHZ, cpu),
                pk_per_packet: (m.crypto.pk_encrypt + m.crypto.pk_decrypt) as f64
                    / m.packets_sent().max(1) as f64,
            });
        }};
    }
    measure!("ALERT", |_, _| Alert::new(AlertConfig::default()));
    measure!("GPSR", |_, _| Gpsr::default());
    measure!("ALARM", |_, _| Alarm::default());
    measure!("AO2P", |_, _| Ao2p::default());
    measure!("ZAP", |_, _| Zap::default());
    measure!("ANODR", |_, _| Anodr::default());
    measure!("PRISM", |_, _| Prism::default());
    measure!("MASK", |_, _| Mask::default());
    rows
}

fn get<'a>(rows: &'a [Row], name: &str) -> &'a Row {
    rows.iter().find(|r| r.name == name).expect("protocol row")
}

#[test]
fn paper_orderings_hold_simultaneously() {
    // Average over two seeds to damp run noise.
    let a = run_all(31);
    let b = run_all(32);
    let avg = |name: &str, f: fn(&Row) -> f64| (f(get(&a, name)) + f(get(&b, name))) / 2.0;

    // 1. Everyone delivers on the paper's dense default.
    for name in [
        "ALERT", "GPSR", "ALARM", "AO2P", "ZAP", "ANODR", "PRISM", "MASK",
    ] {
        let d = avg(name, |r| r.delivery);
        assert!(d > 0.8, "{name} delivery {d:.3}");
    }

    // 2. Latency: GPSR < ALERT << ALARM < AO2P (Fig. 14).
    let (gpsr_l, alert_l) = (avg("GPSR", |r| r.latency), avg("ALERT", |r| r.latency));
    let (alarm_l, ao2p_l) = (avg("ALARM", |r| r.latency), avg("AO2P", |r| r.latency));
    assert!(gpsr_l < alert_l, "GPSR {gpsr_l:.3} < ALERT {alert_l:.3}");
    assert!(
        alert_l * 5.0 < alarm_l,
        "ALERT {alert_l:.3} << ALARM {alarm_l:.3}"
    );
    assert!(alarm_l < ao2p_l, "ALARM {alarm_l:.3} < AO2P {ao2p_l:.3}");

    // 3. Hops: greedy protocols take near-shortest paths; ALERT pays its
    //    randomization tax (Fig. 15).
    let alert_h = avg("ALERT", |r| r.hops);
    for name in ["GPSR", "ALARM", "AO2P", "ANODR", "PRISM", "MASK"] {
        let h = avg(name, |r| r.hops);
        assert!(
            h < alert_h,
            "{name} hops {h:.2} must be below ALERT {alert_h:.2}"
        );
    }

    // 4. Public-key work per packet: hop-by-hop protocols pay per hop,
    //    ALERT amortizes per session (Section 2.5).
    let alert_pk = avg("ALERT", |r| r.pk_per_packet);
    let ao2p_pk = avg("AO2P", |r| r.pk_per_packet);
    assert!(alert_pk < 0.3, "ALERT pk/packet {alert_pk:.2}");
    assert!(ao2p_pk > 2.0, "AO2P pk/packet {ao2p_pk:.2}");

    // 5. Energy: the flooding protocols are the most expensive class;
    //    ALERT's data path (without cover traffic it would be ~2.8 J) stays
    //    below the topological flooders even with cover traffic charged.
    let alert_e = avg("ALERT", |r| r.energy);
    let anodr_e = avg("ANODR", |r| r.energy);
    let prism_e = avg("PRISM", |r| r.energy);
    assert!(
        alert_e < anodr_e,
        "ALERT {alert_e:.1} J < ANODR {anodr_e:.1} J"
    );
    assert!(
        alert_e < prism_e,
        "ALERT {alert_e:.1} J < PRISM {prism_e:.1} J"
    );
    let gpsr_e = avg("GPSR", |r| r.energy);
    assert!(gpsr_e < alert_e, "GPSR {gpsr_e:.1} J is the floor");
}

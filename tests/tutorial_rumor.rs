//! The assembled code of `docs/TUTORIAL.md`: rumor (random-walk) routing
//! built on the public API, instrumented like the paper's evaluation.
//! Kept passing so the tutorial cannot rot.

use alert::adversary::{mean_route_diversity, TrafficLog};
use alert::crypto::Pseudonym;
use alert::prelude::*;
use alert::sim::{Api, DataRequest, Frame, PacketId, ProtocolNode, TrafficClass};
use rand::Rng;

#[derive(Debug, Clone)]
struct RumorMsg {
    packet: PacketId,
    dst: Pseudonym,
    ttl: u32,
    bytes: usize,
}

#[derive(Default)]
struct Rumor;

fn walk(api: &mut Api<'_, RumorMsg>, mut msg: RumorMsg) {
    if msg.ttl == 0 {
        api.mark_drop("rumor_ttl");
        return;
    }
    msg.ttl -= 1;
    let neighbors = api.neighbors();
    if neighbors.is_empty() {
        return;
    }
    let pick = neighbors[api.rng().gen_range(0..neighbors.len())];
    api.mark_hop(msg.packet);
    let wire = msg.bytes + 24;
    api.send_unicast(
        pick.pseudonym,
        msg.clone(),
        wire,
        TrafficClass::Data,
        Some(msg.packet),
    );
}

impl ProtocolNode for Rumor {
    type Msg = RumorMsg;

    fn name() -> &'static str {
        "RUMOR"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            return;
        };
        walk(
            api,
            RumorMsg {
                packet: req.packet,
                dst: info.pseudonym,
                ttl: 64,
                bytes: req.bytes,
            },
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let msg = frame.msg;
        if msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet) {
            api.mark_delivered(msg.packet);
            return;
        }
        walk(api, msg);
    }
}

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(120)
        .with_duration(30.0);
    cfg.traffic.pairs = 3;
    cfg
}

#[test]
fn rumor_routing_runs_and_sometimes_delivers() {
    let mut world = World::new(scenario(), 7, |_, _| Rumor);
    world.run();
    let m = world.metrics();
    // A 64-step random walk on a 120-node graph finds the destination
    // often but not reliably — that's the tutorial's lesson.
    let rate = m.delivery_rate();
    assert!(rate > 0.2, "random walk too weak: {rate}");
    assert!(rate < 1.0, "a random walk should not be perfect");
    assert!(m.drops.contains_key("rumor_ttl"), "some walks must die");
}

#[test]
fn rumor_diversity_is_high_but_efficiency_is_poor() {
    let (log, _capture) = TrafficLog::new();
    let mut world = World::new(scenario(), 8, |_, _| Rumor);
    world.add_observer(Box::new(log));
    world.run();
    let m = world.metrics();

    // High route diversity (every packet wanders differently)...
    let mut div = 0.0;
    for s in 0..3u32 {
        let routes: Vec<Vec<NodeId>> = m
            .packets
            .iter()
            .filter(|p| p.session == SessionId(s) && p.delivered_at.is_some())
            .map(|p| p.participants.clone())
            .collect();
        div += mean_route_diversity(&routes) / 3.0;
    }
    assert!(
        div > 0.5,
        "random walks should diversify routes, got {div:.2}"
    );

    // ...at hopeless efficiency: far more hops than a greedy baseline.
    let mut gpsr = World::new(scenario(), 8, |_, _| Gpsr::default());
    gpsr.run();
    assert!(
        m.hops_per_packet() > gpsr.metrics().hops_per_packet() * 3.0,
        "rumor hops {} vs GPSR {}",
        m.hops_per_packet(),
        gpsr.metrics().hops_per_packet()
    );
}

#[test]
fn rumor_is_deterministic_like_everything_else() {
    let run = |seed| {
        let mut w = World::new(scenario(), seed, |_, _| Rumor);
        w.run();
        (w.metrics().delivery_rate(), w.metrics().hops_per_packet())
    };
    assert_eq!(run(9), run(9));
}

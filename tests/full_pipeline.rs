//! End-to-end pipeline tests through the umbrella crate's public API:
//! everything a downstream user would touch, wired together.

use alert::adversary::TrafficLog;
use alert::prelude::*;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(120)
        .with_duration(30.0);
    cfg.traffic.pairs = 4;
    cfg
}

#[test]
fn prelude_covers_a_full_experiment() {
    let (log, capture) = TrafficLog::new();
    let mut world = World::new(scenario(), 11, |_, _| Alert::new(AlertConfig::default()));
    world.add_observer(Box::new(log));
    world.run();
    let m = world.metrics();
    assert!(m.delivery_rate() > 0.8);
    assert!(capture.lock().data_transmissions() > 0);
}

#[test]
fn all_four_protocols_run_the_same_scenario() {
    let cfg = scenario();
    let alert_rate = {
        let mut w = World::new(cfg.clone(), 3, |_, _| Alert::new(AlertConfig::default()));
        w.run();
        w.metrics().delivery_rate()
    };
    let gpsr_rate = {
        let mut w = World::new(cfg.clone(), 3, |_, _| Gpsr::default());
        w.run();
        w.metrics().delivery_rate()
    };
    let alarm_rate = {
        let mut w = World::new(cfg.clone(), 3, |_, _| Alarm::default());
        w.run();
        w.metrics().delivery_rate()
    };
    let ao2p_rate = {
        let mut w = World::new(cfg, 3, |_, _| Ao2p::default());
        w.run();
        w.metrics().delivery_rate()
    };
    for (name, rate) in [
        ("ALERT", alert_rate),
        ("GPSR", gpsr_rate),
        ("ALARM", alarm_rate),
        ("AO2P", ao2p_rate),
    ] {
        assert!(rate > 0.8, "{name} delivered only {rate}");
    }
}

#[test]
fn alert_cost_ordering_holds_end_to_end() {
    // The paper's headline cost claims on one scenario: pk ops per packet
    // ALERT << ALARM/AO2P; latency ALERT < ALARM < AO2P is checked in the
    // protocol crates; here we verify the crypto-op accounting.
    let cfg = scenario();
    let count = |m: &Metrics| m.crypto.pk_encrypt + m.crypto.pk_decrypt;
    let alert_pk = {
        let mut w = World::new(cfg.clone(), 9, |_, _| Alert::new(AlertConfig::default()));
        w.run();
        count(w.metrics()) as f64 / w.metrics().packets_sent() as f64
    };
    let ao2p_pk = {
        let mut w = World::new(cfg, 9, |_, _| Ao2p::default());
        w.run();
        count(w.metrics()) as f64 / w.metrics().packets_sent() as f64
    };
    assert!(
        alert_pk < 0.5,
        "ALERT pk ops/packet {alert_pk} should be amortized per session"
    );
    assert!(
        ao2p_pk > 2.0,
        "AO2P pk ops/packet {ao2p_pk} should be per hop"
    );
}

#[test]
fn zone_math_is_reachable_from_the_umbrella() {
    use alert::geom::{required_partitions, Point};
    let field = Rect::with_size(1000.0, 1000.0);
    let h = required_partitions(200e-6, field.area(), 6.25);
    let zd = destination_zone(&field, Point::new(10.0, 990.0), h, Axis::Horizontal);
    assert!(zd.contains(Point::new(10.0, 990.0)));
    assert_eq!(h, 5);
}

#[test]
fn crypto_stack_is_reachable_from_the_umbrella() {
    use alert::crypto::{open, pk_decrypt, pk_encrypt, seal, KeyPair, SymmetricKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let key = SymmetricKey::random(&mut rng);
    let wrapped = pk_encrypt(&kp.public, &key.0);
    let unwrapped = pk_decrypt(&kp.private, &wrapped).unwrap();
    assert_eq!(unwrapped, key.0);
    let sealed = seal(&key, b"the commander's orders", &mut rng);
    assert_eq!(open(&key, &sealed), b"the commander's orders");
}

#[test]
fn intersection_defense_is_wired_through_the_public_api() {
    let mut cfg = scenario();
    cfg.traffic.pairs = 1;
    let acfg = AlertConfig::default().with_intersection_defense(3);
    let mut w = World::new(cfg, 21, move |_, _| Alert::new(acfg));
    w.run();
    // Records show holder-based (Some) deliveries when the defense is on.
    let held_rounds: usize = (0..120)
        .map(|i| {
            w.protocol(NodeId(i))
                .zone_deliveries
                .iter()
                .filter(|r| r.holders.is_some())
                .count()
        })
        .sum();
    assert!(held_rounds > 0, "no two-step deliveries recorded");
}

#!/usr/bin/env bash
# Offline *runnable* build of `simrun` with plain `rustc -O`.
#
# `check.sh` only type-checks (`--emit=metadata`); this script links real
# rlibs so air-gapped boxes can actually execute the perf harness
# (`simrun --bench-json`) and the runtime-heavy regression tests. The
# external dependencies resolve to the same stubs check.sh uses, except
# `rand`, which swaps in `runstubs/rand.rs` — a functional deterministic
# xoshiro256++ generator instead of the type-check-only panicking stub.
#
# The resulting binary is NOT bit-compatible with a crates.io build
# (different RNG stream), but it is deterministic per (scenario, seed),
# which is all that trace-diff equivalence checks and before/after
# wall-clock ratios need.
#
# Usage: tools/offline-check/bench.sh
#        target/offline-bench/simrun --protocol alert --nodes 60 ...
set -euo pipefail

cd "$(dirname "$0")/../.."
ROOT="$PWD"
OUT="$ROOT/target/offline-bench"
STUBS="$ROOT/tools/offline-check/stubs"
RUNSTUBS="$ROOT/tools/offline-check/runstubs"
mkdir -p "$OUT"

RUSTC_FLAGS=(--edition 2021 --out-dir "$OUT" -L "dependency=$OUT"
    -C opt-level=3 -C debug-assertions=no -Aunused -Awarnings)

ex() { # ex <crate> ... -> "--extern <crate>=<rlib path>" for each crate
    for c in "$@"; do
        printf -- "--extern\n%s=%s/lib%s.rlib\n" "$c" "$OUT" "$c"
    done
}

stub() { # stub <name> [extra rustc args...]
    echo "stub  $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type rlib --crate-name "$1" \
        "$STUBS/$1.rs" "${@:2}"
}

lib() { # lib <crate_name> <src> [extra rustc args...]
    echo "lib   $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type rlib --crate-name "$1" \
        "$2" "${@:3}"
}

build_bin() { # build_bin <name> <src> [extra rustc args...]
    echo "bin   $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type bin --crate-name "$1" \
        "$2" "${@:3}"
}

build_test() { # build_test <name> <src> [extra rustc args...]
    echo "test  $1"
    rustc "${RUSTC_FLAGS[@]}" --test --crate-name "$1" \
        "$2" "${@:3}"
}

# --- external-dependency stubs -------------------------------------------
echo "proc  serde_derive"
rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive \
    --out-dir "$OUT" "$STUBS/serde_derive.rs"
DERIVE=(--extern "serde_derive=$OUT/libserde_derive.so")
stub serde "${DERIVE[@]}"
stub serde_json $(ex serde)
echo "rstub rand"
rustc "${RUSTC_FLAGS[@]}" --crate-type rlib --crate-name rand \
    "$RUNSTUBS/rand.rs"
stub rayon
stub parking_lot

E_SERDE=($(ex serde) "${DERIVE[@]}")

# --- workspace crates, dependency order ----------------------------------
lib alert_trace crates/trace/src/lib.rs "${E_SERDE[@]}"
lib alert_geom crates/geom/src/lib.rs "${E_SERDE[@]}" $(ex rand)
lib alert_crypto crates/crypto/src/lib.rs "${E_SERDE[@]}" $(ex rand)
lib alert_mobility crates/mobility/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom)
lib alert_analysis crates/analysis/src/lib.rs "${E_SERDE[@]}" $(ex alert_geom)
lib alert_sim crates/sim/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace)
lib alert_protocols crates/protocols/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim)
lib alert_core crates/core/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim alert_protocols)
lib alert_adversary crates/adversary/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand parking_lot alert_geom alert_crypto alert_sim alert_core alert_protocols)
E_ALL=("${E_SERDE[@]}" $(ex rand rayon serde_json alert_geom alert_crypto \
    alert_mobility alert_trace alert_sim alert_protocols alert_core \
    alert_adversary alert_analysis))
lib alert_bench crates/bench/src/lib.rs "${E_ALL[@]}"
lib alert_simcheck crates/simcheck/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)
lib alertd crates/alertd/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)

# --- runnable artifacts ---------------------------------------------------
build_bin simrun crates/bench/src/bin/simrun.rs "${E_ALL[@]}" $(ex alert_bench)
build_bin tracequery crates/bench/src/bin/tracequery.rs "${E_ALL[@]}" $(ex alert_bench)
build_bin repro crates/bench/src/bin/repro.rs "${E_ALL[@]}" $(ex alert_bench)
build_bin simcheck crates/simcheck/src/bin/simcheck.rs "${E_ALL[@]}" \
    $(ex alert_bench alert_simcheck)
build_bin alertd crates/alertd/src/bin/alertd.rs "${E_ALL[@]}" $(ex alert_bench alertd)
build_bin alertctl crates/alertd/src/bin/alertctl.rs "${E_ALL[@]}" \
    $(ex alert_bench alertd)
build_test trace_determinism crates/sim/tests/trace_determinism.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
if [ -f crates/sim/tests/alloc_regression.rs ]; then
    build_test alloc_regression crates/sim/tests/alloc_regression.rs "${E_SERDE[@]}" \
        $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
fi
build_test guardrails crates/sim/tests/guardrails.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
build_test energy_model crates/sim/tests/energy_model.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
# The bench unit tests cover the leased pool, journal, and failure
# ledger in-process; resume and pool_smoke drive the repro binary built
# above (REPRO_BIN; there is no cargo here to set CARGO_BIN_EXE_repro).
build_test alert_bench_unit crates/bench/src/lib.rs "${E_ALL[@]}"
build_test resume crates/bench/tests/resume.rs "${E_ALL[@]}" $(ex alert_bench)
build_test pool_smoke crates/bench/tests/pool_smoke.rs "${E_ALL[@]}" $(ex alert_bench)
build_test tracequery_golden crates/bench/tests/tracequery_golden.rs "${E_ALL[@]}" \
    $(ex alert_bench)
# The simcheck unit tests exercise the oracle suite in-process; the CLI
# test drives the simcheck/simrun binaries built above (SIMCHECK_BIN /
# SIMRUN_BIN; there is no cargo here to set CARGO_BIN_EXE_*).
build_test alert_simcheck_unit crates/simcheck/src/lib.rs "${E_ALL[@]}" \
    $(ex alert_bench)
build_test simcheck_cli crates/simcheck/tests/cli.rs "${E_ALL[@]}" \
    $(ex alert_bench alert_simcheck)
# The alertd unit tests cover the journal, store, protocol, supervisor,
# and an in-process daemon round trip; daemon_smoke drives the alertd /
# alertctl binaries built above (ALERTD_BIN / ALERTCTL_BIN).
build_test alertd_unit crates/alertd/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)
build_test daemon_smoke crates/alertd/tests/daemon_smoke.rs "${E_ALL[@]}" \
    $(ex alert_bench alertd)

echo "offline bench build OK: $OUT/simrun"
echo "run the resilience tests with:"
echo "  $OUT/guardrails && REPRO_BIN=$OUT/repro $OUT/resume"
echo "  REPRO_BIN=$OUT/repro $OUT/pool_smoke"
echo "run the simcheck suite with:"
echo "  $OUT/alert_simcheck_unit && SIMCHECK_BIN=$OUT/simcheck SIMRUN_BIN=$OUT/simrun $OUT/simcheck_cli"
echo "run the daemon suite with:"
echo "  $OUT/alertd_unit && ALERTD_BIN=$OUT/alertd ALERTCTL_BIN=$OUT/alertctl $OUT/daemon_smoke"

//! *Runnable* offline stand-in for `rand` 0.8, used by `bench.sh` to
//! build an executable `simrun` on air-gapped boxes (the sibling
//! `stubs/rand.rs` is type-check only and panics at runtime).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and good enough statistically for simulation work. It
//! is **not** bit-compatible with the real crate's ChaCha-based
//! `StdRng`, so absolute results differ from a crates.io build; within
//! one offline build, runs remain a pure function of `(scenario, seed)`
//! exactly as with the real dependency. That is the property the
//! offline perf harness needs: baseline and optimized builds use the
//! identical stream, so wall-clock *ratios* are trustworthy.

/// Byte-level RNG core, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value type `gen()` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = f64::draw(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = f64::draw(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Buffers `fill` can populate, mirroring `rand::Fill`.
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing sampling surface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed, per the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

//! Offline stub for `serde_derive`: emits trivial marker-trait impls so
//! the workspace can be *type-checked* without the real crates.io
//! dependency graph. See ../README.md. Never used by real builds.
//!
//! Limitations (sufficient for this workspace): the deriving type must
//! not be generic, and `#[serde(...)]` helper attributes are ignored.

extern crate proc_macro;
use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}

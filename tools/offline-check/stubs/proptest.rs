//! Type-check-only stub for the `proptest` crate.
//!
//! CI compiles the real proptest from crates.io; this stub exists so the
//! air-gapped offline check can still type-check the property-test
//! suites. Strategies carry their `Value` type through `prop_map`,
//! tuples, ranges, `Just`, `any`, `prop_oneof!` and `collection::vec`,
//! and the `proptest!` macro expands each test body into a type-checked
//! (but never executed) closure. Running a stub-built test binary
//! aborts immediately with a pointer at the real harness.

pub mod strategy {
    use core::marker::PhantomData;

    pub trait Strategy {
        type Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F, U>
        where
            Self: Sized,
        {
            let _ = f;
            Map(self, PhantomData)
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(PhantomData)
        }

        #[doc(hidden)]
        fn __stub_value(&self) -> Self::Value {
            unimplemented!("proptest stub: strategies cannot produce values")
        }
    }

    pub struct Map<S, F, U>(#[allow(dead_code)] S, PhantomData<(F, U)>);

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F, U> {
        type Value = U;
    }

    pub struct BoxedStrategy<V>(PhantomData<V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
    }

    #[doc(hidden)]
    pub fn __union<V>(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
        let _ = arms;
        BoxedStrategy(PhantomData)
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
    }

    impl<T: Clone> Strategy for core::ops::Range<T> {
        type Value = T;
    }

    impl<T: Clone> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
    }
}

pub mod arbitrary {
    use core::marker::PhantomData;

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> crate::strategy::Strategy for AnyStrategy<T> {
        type Value = T;
    }

    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use core::marker::PhantomData;

    pub struct VecStrategy<S>(#[allow(dead_code)] S);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy, R>(element: S, size: R) -> VecStrategy<S> {
        let _ = size;
        VecStrategy(element)
    }

    pub struct HashSetStrategy<S>(#[allow(dead_code)] S);

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: core::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
    }

    pub fn hash_set<S: Strategy, R>(element: S, size: R) -> HashSetStrategy<S>
    where
        S::Value: core::hash::Hash + Eq,
    {
        let _ = size;
        HashSetStrategy(element)
    }
}

pub mod test_runner {
    /// Stand-in for proptest's test-case failure payload.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError;

    impl TestCaseError {
        pub fn fail(reason: String) -> Self {
            let _ = reason;
            TestCaseError
        }
    }

    /// Stand-in for proptest's runner configuration.
    #[derive(Debug, Clone, Default)]
    pub struct Config;

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            let _ = cases;
            Config
        }
    }
}

#[macro_export]
macro_rules! proptest {
    () => {};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        const _: () = {
            #[allow(dead_code)]
            fn __proptest_config() {
                let _ = $cfg;
            }
        };
        $crate::proptest! { $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_variables, unreachable_code, unused_mut)]
            let _typecheck = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $(let $pat = $crate::strategy::Strategy::__stub_value(&($strat));)*
                $body
                ::core::result::Result::Ok(())
            };
            ::core::unimplemented!(
                "proptest stub: run this suite with cargo against the real proptest"
            )
        }
        $crate::proptest! { $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::new(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {{
        let _ = ::std::format!($($fmt)*);
        $crate::prop_assert!($cond)
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right)
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let _ = ::std::format!($($fmt)*);
        $crate::prop_assert_eq!($left, $right)
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right)
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let _ = ::std::format!($($fmt)*);
        $crate::prop_assert_ne!($left, $right)
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::__union(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::__union(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

//! Offline stub for `rand` 0.8: just enough surface (StdRng,
//! SeedableRng, Rng with gen/gen_range/gen_bool/fill) for the workspace
//! to type-check. Type-check only; see ../README.md.

/// Stand-in for `rand::RngCore` (no methods needed for type-checking).
pub trait RngCore {}

impl<R: RngCore + ?Sized> RngCore for &mut R {}

/// Ranges a value of type `T` can be sampled from.
pub trait SampleRange<T> {}

impl<T> SampleRange<T> for std::ops::Range<T> {}
impl<T> SampleRange<T> for std::ops::RangeInclusive<T> {}

/// Stand-in for `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a uniform value.
    fn gen<T>(&mut self) -> T {
        unimplemented!("rand stub")
    }

    /// Sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, _range: R) -> T {
        unimplemented!("rand stub")
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, _p: f64) -> bool {
        unimplemented!("rand stub")
    }

    /// Fill a buffer with random data.
    fn fill<T: ?Sized>(&mut self, _dest: &mut T) {
        unimplemented!("rand stub")
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed from a `u64`.
    fn seed_from_u64(_state: u64) -> Self {
        unimplemented!("rand stub")
    }
}

/// Concrete RNG types.
pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng;

    impl super::RngCore for StdRng {}
    impl super::SeedableRng for StdRng {}
}

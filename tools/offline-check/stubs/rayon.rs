//! Offline stub for `rayon`: `into_par_iter` degrades to the sequential
//! iterator so all the std `Iterator` adapters type-check identically.
//! Type-check only; see ../README.md.

/// Stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// The (sequential, in this stub) iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" iterator — sequential fallback.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// Stand-in prelude.
pub mod prelude {
    pub use super::IntoParallelIterator;
}

//! Offline stub for `rayon`: `into_par_iter` degrades to the sequential
//! iterator so all the std `Iterator` adapters type-check identically.
//! Type-check only; see ../README.md.

/// Stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// The (sequential, in this stub) iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" iterator — sequential fallback.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// Stand-in prelude.
pub mod prelude {
    pub use super::IntoParallelIterator;
}

/// Stand-in for `rayon::ThreadPoolBuildError`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stub thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Stand-in for `rayon::ThreadPool`: `install` runs the closure on the
/// current thread, which matches the sequential `into_par_iter`
/// fallback above — "pool" work never leaves the calling thread, so
/// thread-local state (e.g. the bench failure scope) set by the caller
/// is visible exactly as a `start_handler` would make it on real pool
/// threads.
#[derive(Debug)]
pub struct ThreadPool(());

impl ThreadPool {
    /// Runs `op` on the current thread (sequential stub).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }
}

/// Stand-in for `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder(());

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder(())
    }

    /// Accepted and ignored (the stub has no threads to count).
    pub fn num_threads(self, _n: usize) -> ThreadPoolBuilder {
        self
    }

    /// Accepted and dropped: the stub spawns no threads, and `install`
    /// closures run on the calling thread, which sets its own
    /// thread-local state directly (the workspace's only use of a
    /// start handler is mirrored by an explicit call in the closure).
    pub fn start_handler<H>(self, _handler: H) -> ThreadPoolBuilder
    where
        H: Fn(usize) + Send + Sync + 'static,
    {
        self
    }

    /// Builds the (threadless) stub pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool(()))
    }
}

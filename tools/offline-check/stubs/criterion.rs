//! Offline stub for `criterion`: just enough surface (Criterion,
//! BenchmarkGroup, BenchmarkId, Bencher, the group/main macros) to
//! type-check the workspace's bench targets. Nothing here measures
//! anything — CI runs the real crate.

pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        BenchmarkGroup
    }
    pub fn bench_function<F>(&mut self, _id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F>(&mut self, _id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F>(&mut self, _id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        f(&mut Bencher, input);
        self
    }
    pub fn finish(self) {}
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(_name: S, _param: P) -> Self {
        BenchmarkId
    }
    pub fn from_parameter<P: std::fmt::Display>(_param: P) -> Self {
        BenchmarkId
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
    pub fn iter_with_setup<S, O, Setup, F>(&mut self, mut setup: Setup, mut f: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let _ = f(setup());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

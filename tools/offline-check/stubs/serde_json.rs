//! Offline stub for `serde_json`. Type-check only; see ../README.md.

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Stand-in result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Signature-compatible stand-in for `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

/// Signature-compatible stand-in for `serde_json::to_string`.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

/// Signature-compatible stand-in for `serde_json::from_str`.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub")
}

/// Stand-in for `serde_json::Map` (generic like the real thing, which the
/// workspace only ever instantiates as `Map<String, Value>`).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// Structural stand-in for `serde_json::Value` — just enough shape for
/// tree-surgery code (`as_object_mut`, `remove`) to type-check.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// Stand-in for `Value::as_object_mut`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            Value::Null => None,
        }
    }
}

/// Signature-compatible stand-in for `serde_json::to_value`.
pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value> {
    unimplemented!("serde_json stub")
}

/// Signature-compatible stand-in for `serde_json::from_value`.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(_value: Value) -> Result<T> {
    unimplemented!("serde_json stub")
}

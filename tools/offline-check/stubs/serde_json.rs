//! Offline stub for `serde_json`. Type-check only; see ../README.md.

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Stand-in result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Signature-compatible stand-in for `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

/// Signature-compatible stand-in for `serde_json::to_string`.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

/// Signature-compatible stand-in for `serde_json::from_str`.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub")
}

//! Offline stub for `parking_lot`: a functional `Mutex` over
//! `std::sync::Mutex` with parking_lot's panic-free `lock()` signature.
//! See ../README.md.

use std::ops::{Deref, DerefMut};

/// Stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Stand-in for `parking_lot::MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (never poisons, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

//! Offline stub for `serde`: marker traits + the derive re-exports.
//! Type-check only; see ../README.md.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_both {
    ($($t:ty),*) => {
        $(impl Serialize for $t {}
          impl<'de> Deserialize<'de> for $t {})*
    };
}

impl_both!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl Serialize for str {}

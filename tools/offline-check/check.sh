#!/usr/bin/env bash
# Offline type-check of the whole workspace with `rustc --emit=metadata`.
#
# The CI runners fetch crates.io normally; this script exists for
# air-gapped development boxes where `cargo build` cannot resolve the
# registry. It compiles tiny stub crates (see stubs/) for the external
# dependencies and then type-checks every workspace crate, binary,
# example, and the non-proptest integration tests in dependency order.
#
# Usage: tools/offline-check/check.sh
set -euo pipefail

cd "$(dirname "$0")/../.."
ROOT="$PWD"
OUT="$ROOT/target/offline-check"
STUBS="$ROOT/tools/offline-check/stubs"
mkdir -p "$OUT"

RUSTC_FLAGS=(--edition 2021 --out-dir "$OUT" -L "dependency=$OUT" -Dwarnings -Aunused)

ex() { # ex <crate> ... -> "--extern <crate>=<rmeta path>" for each crate
    for c in "$@"; do
        printf -- "--extern\n%s=%s/lib%s.rmeta\n" "$c" "$OUT" "$c"
    done
}

stub() { # stub <name> [extra rustc args...]
    echo "stub  $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type lib --crate-name "$1" \
        --emit=metadata "$STUBS/$1.rs" "${@:2}"
}

lib() { # lib <crate_name> <src> [extra rustc args...]
    echo "lib   $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type lib --crate-name "$1" \
        --emit=metadata "$2" "${@:3}"
}

check_bin() { # check_bin <name> <src> [extra rustc args...]
    echo "bin   $1"
    rustc "${RUSTC_FLAGS[@]}" --crate-type bin --crate-name "$1" \
        --emit=metadata "$2" "${@:3}"
}

check_test() { # check_test <name> <src> [extra rustc args...]
    echo "test  $1"
    rustc "${RUSTC_FLAGS[@]}" --test --crate-name "$1" \
        --emit=metadata "$2" "${@:3}"
}

# --- external-dependency stubs -------------------------------------------
echo "proc  serde_derive"
rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive \
    --out-dir "$OUT" "$STUBS/serde_derive.rs"
DERIVE=(--extern "serde_derive=$OUT/libserde_derive.so")
stub serde "${DERIVE[@]}"
stub serde_json $(ex serde)
stub rand
stub rayon
stub parking_lot
stub criterion
stub proptest

E_SERDE=($(ex serde) "${DERIVE[@]}")

# --- workspace crates, dependency order ----------------------------------
lib alert_trace crates/trace/src/lib.rs "${E_SERDE[@]}"
lib alert_geom crates/geom/src/lib.rs "${E_SERDE[@]}" $(ex rand)
lib alert_crypto crates/crypto/src/lib.rs "${E_SERDE[@]}" $(ex rand)
lib alert_mobility crates/mobility/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom)
lib alert_analysis crates/analysis/src/lib.rs "${E_SERDE[@]}" $(ex alert_geom)
lib alert_sim crates/sim/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace)
lib alert_protocols crates/protocols/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim)
lib alert_core crates/core/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim alert_protocols)
lib alert_adversary crates/adversary/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand parking_lot alert_geom alert_crypto alert_sim alert_core alert_protocols)
E_ALL=("${E_SERDE[@]}" $(ex rand rayon serde_json alert_geom alert_crypto \
    alert_mobility alert_trace alert_sim alert_protocols alert_core \
    alert_adversary alert_analysis))
lib alert_bench crates/bench/src/lib.rs "${E_ALL[@]}"
lib alert_simcheck crates/simcheck/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)
lib alertd crates/alertd/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)
lib alert src/lib.rs "${E_ALL[@]}"

# --- binaries ------------------------------------------------------------
check_bin repro crates/bench/src/bin/repro.rs "${E_ALL[@]}" $(ex alert_bench)
check_bin simrun crates/bench/src/bin/simrun.rs "${E_ALL[@]}" $(ex alert_bench)
check_bin tracequery crates/bench/src/bin/tracequery.rs "${E_ALL[@]}" $(ex alert_bench)
check_bin simcheck crates/simcheck/src/bin/simcheck.rs "${E_ALL[@]}" \
    $(ex alert_bench alert_simcheck)
check_bin alertd_main crates/alertd/src/bin/alertd.rs "${E_ALL[@]}" \
    $(ex alert_bench alertd)
check_bin alertctl_main crates/alertd/src/bin/alertctl.rs "${E_ALL[@]}" \
    $(ex alert_bench alertd)

# --- examples ------------------------------------------------------------
for exf in examples/*.rs; do
    name="$(basename "$exf" .rs)"
    check_bin "example_$name" "$exf" "${E_ALL[@]}" $(ex alert alert_bench)
done

# --- unit tests (lib targets with #[cfg(test)]) --------------------------
check_test alert_trace_unit crates/trace/src/lib.rs "${E_SERDE[@]}"
check_test alert_geom_unit crates/geom/src/lib.rs "${E_SERDE[@]}" $(ex rand)
check_test alert_crypto_unit crates/crypto/src/lib.rs "${E_SERDE[@]}" $(ex rand)
check_test alert_mobility_unit crates/mobility/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom)
check_test alert_analysis_unit crates/analysis/src/lib.rs "${E_SERDE[@]}" \
    $(ex alert_geom)
check_test alert_sim_unit crates/sim/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace)
check_test alert_protocols_unit crates/protocols/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim)
check_test alert_core_unit crates/core/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_sim alert_protocols)
check_test alert_adversary_unit crates/adversary/src/lib.rs "${E_SERDE[@]}" \
    $(ex rand parking_lot alert_geom alert_crypto alert_sim alert_core alert_protocols)
check_test alert_bench_unit crates/bench/src/lib.rs "${E_ALL[@]}"
check_test alert_simcheck_unit crates/simcheck/src/lib.rs "${E_ALL[@]}" \
    $(ex alert_bench)
check_test alertd_unit crates/alertd/src/lib.rs "${E_ALL[@]}" $(ex alert_bench)

# --- integration tests that need no proptest -----------------------------
check_test analysis_props crates/analysis/tests/analysis_props.rs "${E_SERDE[@]}" \
    $(ex alert_geom alert_analysis)
check_test runtime_smoke crates/sim/tests/runtime_smoke.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test trace_determinism crates/sim/tests/trace_determinism.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test fault_injection crates/sim/tests/fault_injection.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test dos_resilience crates/adversary/tests/dos_resilience.rs "${E_SERDE[@]}" \
    $(ex rand parking_lot alert_geom alert_crypto alert_mobility alert_trace alert_sim \
         alert_core alert_protocols alert_adversary)
check_test observability tests/observability.rs "${E_ALL[@]}" \
    $(ex alert alert_bench)
check_test full_pipeline tests/full_pipeline.rs "${E_ALL[@]}" \
    $(ex alert alert_bench)
check_test theory_vs_simulation tests/theory_vs_simulation.rs "${E_ALL[@]}" \
    $(ex alert alert_bench)
check_test alloc_regression crates/sim/tests/alloc_regression.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test guardrails crates/sim/tests/guardrails.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test config_serde crates/sim/tests/config_serde.rs "${E_SERDE[@]}" \
    $(ex serde_json rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test energy_model crates/sim/tests/energy_model.rs "${E_SERDE[@]}" \
    $(ex rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test resume crates/bench/tests/resume.rs "${E_ALL[@]}" $(ex alert_bench)
check_test pool_smoke crates/bench/tests/pool_smoke.rs "${E_ALL[@]}" $(ex alert_bench)
check_test tracequery_golden crates/bench/tests/tracequery_golden.rs "${E_ALL[@]}" \
    $(ex alert_bench)
check_test simcheck_cli crates/simcheck/tests/cli.rs "${E_ALL[@]}" \
    $(ex alert_bench alert_simcheck)
check_test daemon_smoke crates/alertd/tests/daemon_smoke.rs "${E_ALL[@]}" \
    $(ex alert_bench alertd)

# --- property-test suites (type-check against the proptest stub) ---------
check_test fel_props crates/sim/tests/fel_props.rs "${E_SERDE[@]}" \
    $(ex proptest rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test engine_props crates/sim/tests/engine_props.rs "${E_SERDE[@]}" \
    $(ex proptest rand alert_geom alert_crypto alert_mobility alert_trace alert_sim)
check_test grid_props crates/geom/tests/grid_props.rs "${E_SERDE[@]}" \
    $(ex proptest alert_geom)
check_test partition_props crates/geom/tests/partition_props.rs "${E_SERDE[@]}" \
    $(ex proptest alert_geom)
check_test mobility_props crates/mobility/tests/mobility_props.rs "${E_SERDE[@]}" \
    $(ex proptest rand alert_geom alert_mobility)

# --- bench targets (criterion stub; CI runs the real harness) ------------
for bf in crates/bench/benches/*.rs; do
    name="$(basename "$bf" .rs)"
    check_bin "bench_$name" "$bf" "${E_ALL[@]}" $(ex criterion alert_bench)
done

echo "offline check OK"

//! The `simcheck` / `simrun` exit-code contract and the end-to-end
//! planted-defect acceptance path: `0` clean, `1` violation, `2` usage;
//! same seed, byte-identical report; a planted NodeId leak is caught,
//! shrunk, and reported with a `simrun` replay command that actually
//! runs.
//!
//! Runs the binaries as real subprocesses. Under `cargo test` the paths
//! come from `CARGO_BIN_EXE_*`; standalone harnesses (the offline check
//! scripts) can point `SIMCHECK_BIN` / `SIMRUN_BIN` at prebuilt
//! binaries instead.

use std::path::PathBuf;
use std::process::{Command, Output};

fn simcheck_bin() -> Option<PathBuf> {
    if let Some(p) = option_env!("CARGO_BIN_EXE_simcheck") {
        return Some(PathBuf::from(p));
    }
    std::env::var_os("SIMCHECK_BIN").map(PathBuf::from)
}

fn simrun_bin() -> Option<PathBuf> {
    // Another package's binary: cargo exposes no CARGO_BIN_EXE for it,
    // so derive it from simcheck's target dir, or take SIMRUN_BIN.
    if let Some(p) = std::env::var_os("SIMRUN_BIN") {
        return Some(PathBuf::from(p));
    }
    let simcheck = simcheck_bin()?;
    let sibling = simcheck.with_file_name(format!("simrun{}", std::env::consts::EXE_SUFFIX));
    sibling.exists().then_some(sibling)
}

fn run(bin: &PathBuf, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("spawn binary")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_suite_exits_zero_and_is_byte_identical() {
    let Some(bin) = simcheck_bin() else { return };
    let args = ["--cases", "8", "--seed", "0"];
    let a = run(&bin, &args);
    assert!(
        a.status.success(),
        "clean suite must exit 0\nstdout:\n{}\nstderr:\n{}",
        stdout_of(&a),
        String::from_utf8_lossy(&a.stderr)
    );
    let b = run(&bin, &args);
    assert_eq!(
        a.stdout, b.stdout,
        "same seed must produce a byte-identical report"
    );
    assert!(stdout_of(&a).contains("# summary: cases=8 violations=0"));
}

#[test]
fn usage_errors_exit_two() {
    let Some(bin) = simcheck_bin() else { return };
    for args in [
        &["--no-such-flag"][..],
        &["--cases"][..],
        &["--cases", "not-a-number"][..],
        &["--cases", "0"][..],
        &["--plant", "weeds"][..],
    ] {
        let out = run(&bin, args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "usage error {args:?} must exit 2, got {:?}",
            out.status.code()
        );
    }
}

#[test]
fn list_invariants_exits_zero_and_names_the_oracles() {
    let Some(bin) = simcheck_bin() else { return };
    let out = run(&bin, &["--list-invariants"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    for name in [
        "radio-range",
        "no-node-id-on-wire",
        "accounting-identities",
        "no-panic",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn planted_leak_is_caught_shrunk_and_replayable() {
    let Some(bin) = simcheck_bin() else { return };
    let out = run(
        &bin,
        &[
            "--cases",
            "8",
            "--seed",
            "0",
            "--plant",
            "leak",
            "--shrink-runs",
            "25",
        ],
    );
    let text = stdout_of(&out);
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted violation must exit 1\n{text}"
    );
    assert!(text.contains("no-node-id-on-wire"), "{text}");
    assert!(text.contains("shrunk ("), "{text}");

    // The report must contain a one-line replay command...
    let replay = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("replay: "))
        .unwrap_or_else(|| panic!("no replay line in:\n{text}"));
    let mut words = replay.split_whitespace();
    assert_eq!(words.next(), Some("simrun"), "{replay}");
    let args: Vec<&str> = words.collect();
    assert!(args.contains(&"--protocol"), "{replay}");
    assert!(args.contains(&"__leaky-node-id"), "{replay}");

    // ...and that command must actually run (exit 0 under simrun).
    let Some(simrun) = simrun_bin() else { return };
    let rerun = run(&simrun, &args);
    assert!(
        rerun.status.success(),
        "replay command failed: simrun {}\nstderr:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&rerun.stderr)
    );
}

#[test]
fn simrun_honours_the_same_exit_code_contract() {
    let Some(simrun) = simrun_bin() else { return };
    // 0: a small clean run.
    let ok = run(
        &simrun,
        &[
            "--protocol",
            "gpsr",
            "--nodes",
            "20",
            "--pairs",
            "1",
            "--duration",
            "3",
            "--seed",
            "1",
        ],
    );
    assert!(
        ok.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    // 1: runtime failure (guardrail abort).
    let aborted = run(
        &simrun,
        &[
            "--protocol",
            "gpsr",
            "--nodes",
            "20",
            "--pairs",
            "1",
            "--duration",
            "3",
            "--seed",
            "1",
            "--max-events",
            "10",
        ],
    );
    assert_eq!(aborted.status.code(), Some(1));
    // 2: usage error.
    let usage = run(&simrun, &["--protocol", "no-such-protocol"]);
    assert_eq!(usage.status.code(), Some(2));
}

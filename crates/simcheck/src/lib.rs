//! # alert-simcheck
//!
//! Deterministic scenario fuzzing, invariant oracles, and failing-case
//! shrinking for the whole simulator stack — the simulation-testing
//! harness that hunts for bugs `simrun`'s happy paths never exercise.
//!
//! The harness has four layers:
//!
//! * [`fuzz`] — a seeded scenario generator. Every case is a pure
//!   function of `(master seed, case index)`, sampling
//!   `protocol × ScenarioConfig × FaultPlan × mobility` with explicit
//!   bias toward degenerate corners (one-node worlds, zero traffic,
//!   near-blackout channels, partition-heavy fault plans,
//!   budget-truncated runs).
//! * [`driver`] — instrumented execution. One run is observed through
//!   four independent channels at once: the structured trace, the
//!   eavesdropper [`TxEvent`](alert_sim::TxEvent) stream, the typed
//!   frame-audit hook (via [`audit::WireAudit`]), and periodic
//!   ground-truth position samples.
//! * [`oracle`] — composable invariant checkers over a finished
//!   [`driver::CaseRun`]: simulator physics (receptions within radio
//!   range, monotone timestamps, no activity by crashed nodes),
//!   protocol contracts (pseudonyms never straddle rotation epochs, no
//!   real `NodeId` on the wire, bounded per-packet frame budgets, hop
//!   counts above the geometric floor), and accounting identities
//!   (registry == trace == metrics).
//! * [`shrink`] — minimizes a failing case along its config axes while
//!   the same invariant keeps firing, aiming for a scenario that is
//!   fully expressible as `simrun` flags so the emitted one-line replay
//!   command is exact.
//!
//! [`report::run_suite`] ties the layers into the `simcheck` binary:
//! same `(cases, seed, plant)` renders a byte-identical report, exit
//! codes follow the `0 = clean / 1 = violation / 2 = usage` contract,
//! and `--plant leak` interleaves a deliberately broken protocol to
//! prove the oracles, shrinker, and replay plumbing end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod driver;
pub mod fuzz;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use audit::WireAudit;
pub use driver::{run_case, CaseRun, FrameRecord, InsiderOutcome, PosSample};
pub use fuzz::{flag_encodable, gen_case, insider_drill_scenario, Case, Plant};
pub use oracle::{check_all, Violation, INVARIANTS};
pub use report::{coverage_lines, run_suite, SuiteOptions, SuiteSummary};
pub use shrink::{reproduces, shrink, Shrunk};

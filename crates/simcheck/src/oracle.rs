//! The invariant oracle library: composable checkers over one
//! instrumented run ([`CaseRun`]), each returning the violations it
//! found. [`check_all`] runs the whole suite.
//!
//! Three families, mirroring the layering of the stack:
//!
//! * **physics** — timestamps monotone, no reception outside radio
//!   range, no activity attributed to a crashed node;
//! * **protocol contracts** — no ground-truth `NodeId` on the wire,
//!   pseudonyms never straddle non-adjacent rotation epochs or two
//!   senders, TTL-bounded forwarding (GPSR perimeter mode exits or
//!   drops), delivered hop counts at or above the geometric lower
//!   bound;
//! * **accounting identities** — registry counters, trace-derived
//!   totals, and ground-truth metrics all tell the same story, and
//!   packet bookkeeping is conserved (no ghost deliveries or drops).
//!
//! Geometry checks compare against positions *sampled* between event
//! slices, so each carries an explicit tolerance
//! ([`crate::driver::position_tolerance_m`]) derived from node speed and
//! the sampling pitch — the oracles are sound (no false alarms on an
//! honest simulator) rather than maximally tight.

use crate::driver::{position_tolerance_m, CaseRun};
use alert_bench::ProtocolChoice;
use alert_geom::Point;
use alert_trace::{trace_stats, DownNodeAudit, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// One invariant violation: which oracle fired and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable oracle name (the shrinker reproduces against this).
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: String) -> Violation {
        Violation { invariant, detail }
    }
}

/// Every oracle in the suite, with a one-line contract each (the
/// `--list-invariants` output).
pub const INVARIANTS: &[(&str, &str)] = &[
    (
        "monotone-timestamps",
        "trace events are emitted in nondecreasing simulated-time order",
    ),
    (
        "down-node-activity",
        "a crashed node records no activity inside its down interval",
    ),
    (
        "radio-range",
        "no frame is received by a node outside the sender's radio range (+ sampling tolerance)",
    ),
    (
        "hop-lower-bound",
        "a delivered packet's hop count covers the src-dst distance: hops*range + speed*latency >= distance",
    ),
    (
        "pseudonym-epochs",
        "an on-wire pseudonym belongs to one sender and never reappears in a non-adjacent rotation epoch",
    ),
    (
        "no-node-id-on-wire",
        "no frame's typed message carries a ground-truth NodeId",
    ),
    (
        "frame-budget",
        "TTL-bounded protocols transmit at most ttl*(1+arq_retries) data frames per packet (perimeter mode exits or drops)",
    ),
    (
        "accounting-identities",
        "registry counters == trace-derived totals == ground-truth metrics, per channel and drop reason",
    ),
    (
        "packet-conservation",
        "every delivery/drop/hop references a registered packet, delivery follows send, trace and metrics agree on the delivered set",
    ),
    (
        "energy-conservation",
        "metered runs drain exactly what the per-cause meters account for, never more than the fleet carried, and death counts agree across planes",
    ),
    (
        "insider-containment",
        "a packet tampered by an insider is never delivered unless the tampering was detected (per-hop integrity)",
    ),
    (
        "no-panic",
        "no case panics the simulator (enforced by the fuzz loop's catch_unwind)",
    ),
];

/// Runs the full oracle suite over one instrumented run.
///
/// `protocol` selects protocol-specific contracts (the TTL frame budget
/// only binds the bounded-forwarding protocols). Aborted runs skip the
/// completion-shaped conservation check but keep physics and accounting.
pub fn check_all(protocol: ProtocolChoice, run: &CaseRun) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(monotone_timestamps(run));
    v.extend(down_node_activity(run));
    v.extend(radio_range(run));
    v.extend(hop_lower_bound(run));
    v.extend(pseudonym_epochs(run));
    v.extend(no_node_id_on_wire(run));
    v.extend(frame_budget(protocol, run));
    v.extend(accounting_identities(run));
    v.extend(energy_conservation(run));
    v.extend(insider_containment(run));
    if run.aborted.is_none() {
        v.extend(packet_conservation(run));
    }
    v
}

/// Caps per-oracle violation lists so a systemically broken run reports
/// evidence, not megabytes.
const MAX_DETAILS: usize = 5;

fn push_capped(out: &mut Vec<Violation>, invariant: &'static str, detail: String) {
    if out.iter().filter(|v| v.invariant == invariant).count() < MAX_DETAILS {
        out.push(Violation::new(invariant, detail));
    }
}

/// Physics: the trace is emitted in nondecreasing simulated-time order.
pub fn monotone_timestamps(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut last = f64::NEG_INFINITY;
    for ev in &run.events {
        let t = ev.time();
        if !t.is_finite() {
            push_capped(
                &mut out,
                "monotone-timestamps",
                format!("`{}` event carries non-finite time {t}", ev.kind()),
            );
            continue;
        }
        if t < last {
            push_capped(
                &mut out,
                "monotone-timestamps",
                format!(
                    "`{}` event at t={t} emitted after an event at t={last}",
                    ev.kind()
                ),
            );
        }
        last = last.max(t);
    }
    out
}

/// Physics: no activity attributed to a node inside its down interval
/// (shared executable form of the invariant documented on
/// [`alert_trace::down_intervals`]).
pub fn down_node_activity(run: &CaseRun) -> Vec<Violation> {
    let mut audit = DownNodeAudit::new();
    for ev in &run.events {
        audit.observe(ev);
    }
    audit
        .into_violations()
        .into_iter()
        .take(MAX_DETAILS)
        .map(|detail| Violation::new("down-node-activity", detail))
        .collect()
}

/// Per-node position samples, time-sorted, for nearest-sample lookup.
struct PositionIndex {
    by_node: BTreeMap<u64, Vec<(f64, Point)>>,
}

impl PositionIndex {
    fn build(run: &CaseRun) -> PositionIndex {
        let mut by_node: BTreeMap<u64, Vec<(f64, Point)>> = BTreeMap::new();
        for s in &run.positions {
            by_node.entry(s.node).or_default().push((s.time, s.pos));
        }
        PositionIndex { by_node }
    }

    /// Position of `node` at the sample nearest to `t`, if the node was
    /// ever sampled.
    fn nearest(&self, node: u64, t: f64) -> Option<Point> {
        let samples = self.by_node.get(&node)?;
        let i = samples.partition_point(|(st, _)| *st < t);
        let after = samples.get(i);
        let before = i.checked_sub(1).and_then(|j| samples.get(j));
        match (before, after) {
            (Some(&(tb, pb)), Some(&(ta, pa))) => Some(if (t - tb) <= (ta - t) { pb } else { pa }),
            (Some(&(_, p)), None) | (None, Some(&(_, p))) => Some(p),
            (None, None) => None,
        }
    }
}

/// Physics: every resolved reception happened within radio range of the
/// transmitter (unit-disk channel), up to the position-sampling
/// tolerance. Receptions are matched to their transmission through the
/// trace's emission-order contract: each `rx` follows its `tx`, and the
/// observer's [`alert_sim::TxEvent`] stream is 1:1 with `tx` events, so
/// the *exact* transmitter position is known; only the receiver's is
/// sampled.
pub fn radio_range(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let index = PositionIndex::build(run);
    // Cluster heads under the energy model transmit at a boosted range;
    // the unit-disk bound must cover the strongest legal transmitter.
    let range = run.cfg.mac.range_m * run.cfg.energy.max_range_boost();
    let tol = position_tolerance_m(&run.cfg);
    let mut tx_seen = 0usize;
    for ev in &run.events {
        match ev {
            TraceEvent::Tx { .. } => tx_seen += 1,
            TraceEvent::Rx { node, time, .. } => {
                let Some(tx) = tx_seen.checked_sub(1).and_then(|i| run.txs.get(i)) else {
                    push_capped(
                        &mut out,
                        "radio-range",
                        format!("rx event at t={time} precedes any tx event"),
                    );
                    continue;
                };
                let Some(rx_pos) = index.nearest(*node, *time) else {
                    push_capped(
                        &mut out,
                        "radio-range",
                        format!("rx by unsampled node {node} at t={time}"),
                    );
                    continue;
                };
                let d = tx.sender_pos.distance(rx_pos);
                if d > range + tol {
                    push_capped(
                        &mut out,
                        "radio-range",
                        format!(
                            "node {node} received a frame at t={time} from node {} at \
                             distance {d:.1} m > range {range} m + tolerance {tol:.1} m",
                            tx.sender.0
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Protocol contract: a delivered packet's accumulated hop count must be
/// geometrically sufficient — `hops * range_m` plus the distance its
/// holders could drift during flight covers the sampled src→dst
/// distance. Catches under-counted hops and teleporting packets alike.
pub fn hop_lower_bound(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let index = PositionIndex::build(run);
    let range = run.cfg.mac.range_m * run.cfg.energy.max_range_boost();
    let tol = position_tolerance_m(&run.cfg);
    for (id, rec) in run.metrics.packets.iter().enumerate() {
        let Some(delivered_at) = rec.delivered_at else {
            continue;
        };
        let (Some(src_pos), Some(dst_pos)) = (
            index.nearest(rec.src.0 as u64, rec.sent_at),
            index.nearest(rec.dst.0 as u64, delivered_at),
        ) else {
            continue;
        };
        let d = src_pos.distance(dst_pos);
        let latency = (delivered_at - rec.sent_at).max(0.0);
        let reach = f64::from(rec.hops) * range + run.cfg.speed * latency + 2.0 * tol + 1.0;
        if d > reach {
            push_capped(
                &mut out,
                "hop-lower-bound",
                format!(
                    "packet {id} delivered over {d:.1} m in {} hop(s): max reach {reach:.1} m",
                    rec.hops
                ),
            );
        }
    }
    out
}

/// Protocol contract: each on-wire sender pseudonym belongs to exactly
/// one node and never spans non-adjacent rotation epochs (pseudonyms are
/// rotated, not reused — Section 2.2). Epochs are delimited by the
/// node's `pseudonym_rotation` trace events; same-instant boundary races
/// make *adjacent* epochs legal.
pub fn pseudonym_epochs(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    // Per-node rotation times, in order.
    let mut rotations: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for ev in &run.events {
        if let TraceEvent::PseudonymRotation { time, node } = ev {
            rotations.entry(*node).or_default().push(*time);
        }
    }
    struct Usage {
        senders: Vec<u64>,
        min_epoch: usize,
        max_epoch: usize,
    }
    let mut usage: BTreeMap<u64, Usage> = BTreeMap::new();
    for f in &run.frames {
        let epoch = rotations
            .get(&f.sender)
            .map_or(0, |r| r.partition_point(|&t| t <= f.time));
        let u = usage.entry(f.pseudonym).or_insert(Usage {
            senders: Vec::new(),
            min_epoch: epoch,
            max_epoch: epoch,
        });
        if !u.senders.contains(&f.sender) {
            u.senders.push(f.sender);
        }
        u.min_epoch = u.min_epoch.min(epoch);
        u.max_epoch = u.max_epoch.max(epoch);
    }
    for (p, u) in &usage {
        if u.senders.len() > 1 {
            push_capped(
                &mut out,
                "pseudonym-epochs",
                format!(
                    "pseudonym {p:#x} transmitted by {} distinct nodes",
                    u.senders.len()
                ),
            );
        }
        if u.max_epoch - u.min_epoch > 1 {
            push_capped(
                &mut out,
                "pseudonym-epochs",
                format!(
                    "pseudonym {p:#x} of node {} reappeared across epochs {}..{}",
                    u.senders.first().copied().unwrap_or(0),
                    u.min_epoch,
                    u.max_epoch
                ),
            );
        }
    }
    out
}

/// Protocol contract: no frame's typed message carries a ground-truth
/// [`alert_sim::NodeId`] (the anonymity sine qua non; see
/// [`crate::audit::WireAudit`]).
pub fn no_node_id_on_wire(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &run.frames {
        if !f.leaked.is_empty() {
            push_capped(
                &mut out,
                "no-node-id-on-wire",
                format!(
                    "frame from node {} at t={:.3} carries ground-truth node id(s) {:?}",
                    f.sender, f.time, f.leaked
                ),
            );
        }
    }
    out
}

/// Protocol contract, for the TTL-bounded forwarders (GPSR and the
/// planted variant, both hop budget 10): no packet incurs more data
/// frames than its TTL allows, counting link-layer retransmissions —
/// operationally, "perimeter mode always exits or drops". Protocols
/// that legitimately flood or retry at the routing layer are exempt.
pub fn frame_budget(protocol: ProtocolChoice, run: &CaseRun) -> Vec<Violation> {
    let ttl = match protocol {
        ProtocolChoice::Gpsr | ProtocolChoice::LeakyNodeId => 10u64,
        _ => return Vec::new(),
    };
    let budget = ttl * (1 + u64::from(run.cfg.mac.arq_max_retries)) + 2;
    let mut frames_per_packet: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in &run.events {
        if let TraceEvent::Tx {
            packet: Some(p), ..
        } = ev
        {
            *frames_per_packet.entry(*p).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    for (p, n) in &frames_per_packet {
        if *n > budget {
            push_capped(
                &mut out,
                "frame-budget",
                format!("packet {p} incurred {n} data frames > TTL budget {budget}"),
            );
        }
    }
    out
}

/// Accounting: the three observability planes — registry counters,
/// trace-derived totals, ground-truth metrics — agree on every shared
/// channel, including per-reason drop counts. Holds on aborted runs
/// too: increments and trace emissions are co-located at every site.
pub fn accounting_identities(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let stats = trace_stats(&run.events);
    let counter = |name: &str| run.registry.counters.get(name).copied().unwrap_or(0);
    let mut check = |name: &'static str, registry: u64, trace: u64| {
        if registry != trace {
            push_capped(
                &mut out,
                "accounting-identities",
                format!("registry {name}={registry} but trace says {trace}"),
            );
        }
    };
    check("tx.frames", counter("tx.frames"), stats.tx_frames);
    check("rx.frames", counter("rx.frames"), stats.rx_frames);
    check("app.packets", counter("app.packets"), stats.app_packets);
    check("delivered", counter("delivered"), stats.delivered_packets);
    check("timer.fired", counter("timer.fired"), stats.timer_fires);
    check(
        "pseudonym.rotations",
        counter("pseudonym.rotations"),
        stats.pseudonym_rotations,
    );
    check(
        "location.lookups",
        counter("location.lookups"),
        stats.location_lookups,
    );
    check("node.downs", counter("node.downs"), stats.node_downs);
    check("node.ups", counter("node.ups"), stats.node_ups);
    check(
        "drops",
        counter("drops"),
        stats.drops_by_reason.values().sum(),
    );
    let retries = run
        .registry
        .histograms
        .get("link.retries")
        .map_or(0, |h| h.count);
    check("link.retries", retries, stats.link_retries);

    // Trace vs ground-truth metrics.
    if stats.app_packets != run.metrics.packets.len() as u64 {
        push_capped(
            &mut out,
            "accounting-identities",
            format!(
                "trace saw {} app_send events but metrics registered {} packets",
                stats.app_packets,
                run.metrics.packets.len()
            ),
        );
    }
    let delivered_truth = run
        .metrics
        .packets
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count() as u64;
    if stats.delivered_packets != delivered_truth {
        push_capped(
            &mut out,
            "accounting-identities",
            format!(
                "trace saw {} delivered packets but metrics say {delivered_truth}",
                stats.delivered_packets
            ),
        );
    }
    if run.metrics.drops != stats.drops_by_reason {
        push_capped(
            &mut out,
            "accounting-identities",
            format!(
                "metrics drop map {:?} != trace drop map {:?}",
                run.metrics.drops, stats.drops_by_reason
            ),
        );
    }
    out
}

/// Accounting: on a metered run, the total energy drained equals the sum
/// of the per-cause meters (tx, rx, idle, beacon — each charge site
/// accrues into exactly one bucket), never exceeds what the fleet
/// carried at t=0, and the death count agrees between the registry
/// counter and the ground-truth metrics. Holds on aborted runs too:
/// every charge updates both planes at the same site.
pub fn energy_conservation(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(initial) = run.cfg.energy.initial_j else {
        return out;
    };
    let e = &run.metrics.node_energy;
    let parts = e.tx_j + e.rx_j + e.idle_j + e.beacon_j;
    // Float tolerance: the buckets and the total accumulate in different
    // orders, so exact equality is not owed — proportional slack only.
    let tol = 1e-9 * (1.0 + parts.abs());
    if (e.drained_j - parts).abs() > tol {
        push_capped(
            &mut out,
            "energy-conservation",
            format!(
                "drained {:.9} J but per-cause meters sum to {parts:.9} J \
                 (tx={:.9} rx={:.9} idle={:.9} beacon={:.9})",
                e.drained_j, e.tx_j, e.rx_j, e.idle_j, e.beacon_j
            ),
        );
    }
    let capacity = initial * run.cfg.nodes as f64;
    if e.drained_j > capacity + tol {
        push_capped(
            &mut out,
            "energy-conservation",
            format!(
                "drained {:.9} J from a fleet that carried only {capacity:.9} J",
                e.drained_j
            ),
        );
    }
    let registry_deaths = run
        .registry
        .counters
        .get("energy.deaths")
        .copied()
        .unwrap_or(0);
    if registry_deaths != e.deaths {
        push_capped(
            &mut out,
            "energy-conservation",
            format!(
                "registry energy.deaths={registry_deaths} but metrics say {}",
                e.deaths
            ),
        );
    }
    out
}

/// Adversary contract: tampering never goes unnoticed. Every frame an
/// insider modifies must either be caught by per-hop integrity (an
/// `insider_modified` drop) or, failing that, the tampered packet must
/// never reach its destination. A tampered *and delivered* packet with
/// uncaught modifications is exactly the defect the `--plant insider`
/// drill plants.
pub fn insider_containment(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(ins) = &run.insider else {
        return out;
    };
    let caught = run
        .metrics
        .drops
        .get("insider_modified")
        .copied()
        .unwrap_or(0);
    if ins.modified <= caught {
        return out; // every modification was detected and attributed
    }
    let delivered: BTreeSet<u64> = run
        .metrics
        .packets
        .iter()
        .enumerate()
        .filter(|(_, r)| r.delivered_at.is_some())
        .map(|(i, _)| i as u64)
        .collect();
    for p in ins.tampered_packets.intersection(&delivered) {
        push_capped(
            &mut out,
            "insider-containment",
            format!(
                "packet {p} was tampered by an insider ({} modifications, only {caught} \
                 caught) yet delivered",
                ins.modified
            ),
        );
    }
    out
}

/// Accounting: packet bookkeeping is conserved. Strict flow conservation
/// ("sent = delivered + dropped") is deliberately *not* asserted — GPSR
/// drops TTL-exhausted and unroutable packets silently by design — but
/// every event must reference a registered packet, nothing is delivered
/// before it is sent, and the trace's delivered set matches ground
/// truth packet for packet.
pub fn packet_conservation(run: &CaseRun) -> Vec<Violation> {
    let mut out = Vec::new();
    let registered = run.metrics.packets.len() as u64;
    let mut sent_at: BTreeMap<u64, f64> = BTreeMap::new();
    let mut delivered_trace: BTreeMap<u64, f64> = BTreeMap::new();
    for ev in &run.events {
        let (packet, label): (Option<u64>, &str) = match ev {
            TraceEvent::AppSend { time, packet, .. } => {
                sent_at.insert(*packet, *time);
                (Some(*packet), "app_send")
            }
            TraceEvent::Hop { packet, .. } => (Some(*packet), "hop"),
            TraceEvent::RandomForwarder { packet, .. } => (Some(*packet), "rf"),
            TraceEvent::Delivered { time, packet, .. } => {
                delivered_trace.entry(*packet).or_insert(*time);
                (Some(*packet), "delivered")
            }
            TraceEvent::Drop { packet, .. } => (*packet, "drop"),
            TraceEvent::Tx { packet, .. } => (*packet, "tx"),
            _ => (None, ""),
        };
        if let Some(p) = packet {
            if p >= registered {
                push_capped(
                    &mut out,
                    "packet-conservation",
                    format!("`{label}` event references unregistered packet {p}"),
                );
            }
        }
    }
    for (p, t) in &delivered_trace {
        match sent_at.get(p) {
            None => push_capped(
                &mut out,
                "packet-conservation",
                format!("packet {p} delivered without an app_send"),
            ),
            Some(s) if t < s => push_capped(
                &mut out,
                "packet-conservation",
                format!("packet {p} delivered at t={t} before its send at t={s}"),
            ),
            _ => {}
        }
    }
    // The trace's delivered set and ground truth agree exactly.
    for (id, rec) in run.metrics.packets.iter().enumerate() {
        let in_trace = delivered_trace.contains_key(&(id as u64));
        if rec.delivered_at.is_some() != in_trace {
            push_capped(
                &mut out,
                "packet-conservation",
                format!(
                    "packet {id}: metrics delivered={} but trace delivered={}",
                    rec.delivered_at.is_some(),
                    in_trace
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_case;
    use alert_sim::ScenarioConfig;

    fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg
    }

    #[test]
    fn honest_run_passes_every_oracle() {
        let cfg = small();
        let run = run_case(ProtocolChoice::Gpsr, &cfg, 11).unwrap();
        let v = check_all(ProtocolChoice::Gpsr, &run);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn leaky_plant_trips_exactly_the_node_id_oracle() {
        let cfg = small();
        let run = run_case(ProtocolChoice::LeakyNodeId, &cfg, 11).unwrap();
        let v = check_all(ProtocolChoice::LeakyNodeId, &run);
        assert!(!v.is_empty(), "plant went uncaught");
        assert!(
            v.iter().all(|x| x.invariant == "no-node-id-on-wire"),
            "plant tripped unrelated oracles: {v:?}"
        );
    }

    #[test]
    fn planted_trace_corruption_is_caught() {
        let cfg = small();
        let mut run = run_case(ProtocolChoice::Gpsr, &cfg, 3).unwrap();
        // Corrupt the trace: rewind one event's timestamp and point a
        // hop at a ghost packet.
        run.events.push(alert_trace::TraceEvent::Hop {
            time: 0.0,
            node: 1,
            packet: 9_999_999,
        });
        let v = check_all(ProtocolChoice::Gpsr, &run);
        let names: Vec<_> = v.iter().map(|x| x.invariant).collect();
        assert!(names.contains(&"monotone-timestamps"), "{names:?}");
        assert!(names.contains(&"packet-conservation"), "{names:?}");
    }

    #[test]
    fn invariant_list_is_consistent() {
        // Every name the oracles can emit is documented in INVARIANTS.
        let documented: Vec<_> = INVARIANTS.iter().map(|(n, _)| *n).collect();
        for name in [
            "monotone-timestamps",
            "down-node-activity",
            "radio-range",
            "hop-lower-bound",
            "pseudonym-epochs",
            "no-node-id-on-wire",
            "frame-budget",
            "accounting-identities",
            "energy-conservation",
            "insider-containment",
            "packet-conservation",
            "no-panic",
        ] {
            assert!(documented.contains(&name), "{name} undocumented");
        }
    }

    #[test]
    fn metered_run_passes_energy_conservation() {
        let mut cfg = small();
        cfg.energy.initial_j = Some(200.0);
        cfg.energy.idle_watts = 0.05;
        cfg.energy.cluster_head_fraction = 0.12;
        let run = run_case(ProtocolChoice::Gpsr, &cfg, 11).unwrap();
        let v = check_all(ProtocolChoice::Gpsr, &run);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
        assert!(run.metrics.node_energy.drained_j > 0.0, "meter never ran");
    }

    #[test]
    fn honest_insiders_pass_containment() {
        use alert_sim::{InsiderConfig, InsiderMode};
        for mode in [InsiderMode::Log, InsiderMode::Drop, InsiderMode::Modify] {
            let mut cfg = small();
            cfg.insiders = InsiderConfig {
                fraction: 0.3,
                mode,
            };
            let run = run_case(ProtocolChoice::Gpsr, &cfg, 11).unwrap();
            let v = check_all(ProtocolChoice::Gpsr, &run);
            assert!(v.is_empty(), "mode {mode}: unexpected violations: {v:?}");
            assert!(run.insider.is_some(), "no insider evidence collected");
        }
    }

    #[test]
    fn stealth_tampering_trips_exactly_the_containment_oracle() {
        let cfg = crate::fuzz::insider_drill_scenario();
        let run = run_case(ProtocolChoice::Gpsr, &cfg, 11).unwrap();
        let ins = run.insider.as_ref().expect("drill collects evidence");
        assert!(ins.modified > 0, "drill produced no tampering");
        let v = check_all(ProtocolChoice::Gpsr, &run);
        assert!(!v.is_empty(), "stealth tampering went uncaught");
        assert!(
            v.iter().all(|x| x.invariant == "insider-containment"),
            "drill tripped unrelated oracles: {v:?}"
        );
    }
}

//! On-wire content auditing: what invariant checkers may learn from a
//! typed protocol message as it crosses the frame-audit hook
//! ([`alert_sim::World::set_frame_audit`]).
//!
//! The central anonymity contract of the whole codebase is *structural*:
//! no message type carries a ground-truth [`alert_sim::NodeId`], so no
//! frame can leak one. [`WireAudit`] turns that from a convention into a
//! checkable declaration — every fuzzable message type states which of
//! its fields are real node identities, and the `no-node-id-on-wire`
//! oracle flags any frame whose message reports one. Honest protocols
//! have nothing to declare (the vacuous default); the planted
//! [`alert_bench::planted::LeakyMsg`] declares its leak, which is
//! exactly how the oracle suite proves it can catch this bug class.

use alert_bench::planted::LeakyMsg;
use alert_core::AlertMsg;
use alert_protocols::{AlarmMsg, AnodrMsg, Ao2pMsg, GpsrMsg, MapcpMsg, MaskMsg, PrismMsg, ZapMsg};

/// Declares which parts of a wire message are ground-truth node
/// identities, for the `no-node-id-on-wire` oracle.
///
/// The default implementation reports nothing — correct for every honest
/// message type, whose anonymity is structural (no `NodeId`-typed field
/// exists to leak). A type that *does* smuggle a real identity must
/// report it here, which is what makes a planted leak observable.
pub trait WireAudit {
    /// Calls `visit` once per ground-truth node id embedded in the
    /// message. The default visits nothing.
    fn visit_node_ids(&self, visit: &mut dyn FnMut(u64)) {
        let _ = visit;
    }

    /// The application packet this message carries, when the wire format
    /// exposes one. Feeds the insider adversary's tamper log so the
    /// `insider-containment` oracle can correlate tampered frames with
    /// the delivered set; `None` (the default) merely coarsens that
    /// correlation — it never changes simulator behavior.
    fn packet_id(&self) -> Option<u64> {
        None
    }
}

// The nine real protocols: all structurally anonymous at this level.
// ALERT's header (paper Fig. 5) is pseudonyms + zone coordinates only;
// the baselines likewise address by pseudonym and position. None of
// these message types has a `NodeId` field, so the vacuous default *is*
// the audit.
impl WireAudit for AlertMsg {}
impl WireAudit for GpsrMsg {
    fn packet_id(&self) -> Option<u64> {
        Some(self.packet.0)
    }
}
impl WireAudit for AlarmMsg {}
impl WireAudit for Ao2pMsg {}
impl WireAudit for ZapMsg {}
impl WireAudit for AnodrMsg {}
impl WireAudit for PrismMsg {}
impl WireAudit for MaskMsg {}
impl WireAudit for MapcpMsg {}

impl WireAudit for LeakyMsg {
    fn visit_node_ids(&self, visit: &mut dyn FnMut(u64)) {
        visit(self.src_node);
    }

    fn packet_id(&self) -> Option<u64> {
        Some(self.packet.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_crypto::Pseudonym;
    use alert_geom::Point;
    use alert_sim::PacketId;

    #[test]
    fn honest_messages_report_no_node_ids() {
        let msg = GpsrMsg {
            packet: PacketId(0),
            bytes: 512,
            target: Point { x: 0.0, y: 0.0 },
            dst: Pseudonym(42),
            ttl: 10,
            mode: alert_protocols::GpsrMode::Greedy,
        };
        let mut seen = Vec::new();
        msg.visit_node_ids(&mut |id| seen.push(id));
        assert!(seen.is_empty());
    }

    #[test]
    fn leaky_message_reports_its_planted_leak() {
        let msg = LeakyMsg {
            packet: PacketId(0),
            bytes: 512,
            target: Point { x: 0.0, y: 0.0 },
            dst: Pseudonym(42),
            ttl: 10,
            src_node: 7,
        };
        let mut seen = Vec::new();
        msg.visit_node_ids(&mut |id| seen.push(id));
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn packet_ids_are_exposed_where_the_wire_format_has_one() {
        let msg = GpsrMsg {
            packet: PacketId(9),
            bytes: 512,
            target: Point { x: 0.0, y: 0.0 },
            dst: Pseudonym(42),
            ttl: 10,
            mode: alert_protocols::GpsrMode::Greedy,
        };
        assert_eq!(msg.packet_id(), Some(9));
    }
}

//! The suite runner: enumerate cases, run each under the full oracle
//! suite, shrink failures, and render the deterministic report.
//!
//! Everything written to the report stream is a pure function of the
//! suite options — same `(cases, seed, plant)` means byte-identical
//! output, which is what lets CI diff two simcheck runs and what the
//! exit-code contract test pins. Wall-clock chatter goes to stderr
//! only; the opt-in `--max-wall-s` budget trades determinism for a
//! bounded CI slot (its early stop is reported in the summary).

use crate::driver::run_case;
use crate::fuzz::{flag_encodable, gen_case, Case, Plant};
use crate::oracle::{check_all, Violation};
use crate::shrink::{shrink, Shrunk};
use alert_bench::{fingerprint_with, run_pool, PoolOptions, UnitOutcome, WorkUnit};
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Suite configuration (the `simcheck` CLI surface).
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Number of cases to enumerate.
    pub cases: usize,
    /// Master seed of the enumeration.
    pub seed: u64,
    /// Planted-defect interleaving.
    pub plant: Plant,
    /// Simulator re-runs the shrinker may spend per failing case.
    pub shrink_runs: usize,
    /// Optional wall-clock budget; checked between cases.
    pub max_wall: Option<Duration>,
    /// Where to write scenario JSON + replay artifacts for failures.
    pub artifact_dir: Option<PathBuf>,
    /// Worker threads executing cases (min 1). Cases are fanned across
    /// the leased pool and the report assembled in case order by a
    /// single committer, so the bytes are identical at any jobs count.
    pub jobs: usize,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            cases: 100,
            seed: 0,
            plant: Plant::None,
            shrink_runs: 40,
            max_wall: None,
            artifact_dir: None,
            jobs: 1,
        }
    }
}

/// What a whole suite run amounted to (drives the exit code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteSummary {
    /// Cases actually run (fewer than requested iff the wall budget
    /// tripped).
    pub cases_run: usize,
    /// Cases with at least one invariant violation.
    pub violated: usize,
    /// Cases the harness itself failed to run (generator produced an
    /// invalid scenario — a simcheck bug, not a simulator bug).
    pub harness_errors: usize,
}

/// How one case fared.
enum CaseResult {
    /// All oracles passed; the trace had this many events.
    Ok {
        events: usize,
        aborted: Option<String>,
    },
    /// At least one oracle fired.
    Violated {
        violations: Vec<Violation>,
        aborted: Option<String>,
    },
    /// The harness could not run the case at all.
    HarnessError(String),
}

/// Runs one case under the suite, converting panics into `no-panic`
/// violations (the FoundationDB posture: a crashing simulator is a
/// finding, not a harness failure).
fn run_one(case: &Case) -> CaseResult {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_case(case.protocol, &case.cfg, case.seed)
    }));
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            CaseResult::Violated {
                violations: vec![Violation {
                    invariant: "no-panic",
                    detail: format!("simulator panicked: {msg}"),
                }],
                aborted: None,
            }
        }
        Ok(Err(failure)) => CaseResult::HarnessError(failure.to_string()),
        Ok(Ok(run)) => {
            let aborted = run.aborted.as_ref().map(|a| a.to_string());
            let violations = check_all(case.protocol, &run);
            if violations.is_empty() {
                CaseResult::Ok {
                    events: run.events.len(),
                    aborted,
                }
            } else {
                CaseResult::Violated {
                    violations,
                    aborted,
                }
            }
        }
    }
}

/// Writes the scenario JSON and replay command for a shrunk failure;
/// returns the replay line to print. Only called on the failure path,
/// so a read-only CI run writes nothing.
fn emit_artifacts(opts: &SuiteOptions, case: &Case) -> io::Result<String> {
    let exact = flag_encodable(&case.cfg);
    let Some(dir) = &opts.artifact_dir else {
        return Ok(if exact {
            case.replay_command()
        } else {
            format!(
                "{} (scenario has non-default knobs; rerun simcheck with --artifact-dir for an exact --scenario replay)",
                case.replay_command()
            )
        });
    };
    std::fs::create_dir_all(dir)?;
    let scenario_path = dir.join(format!("case-{:04}.scenario.json", case.index));
    let json = serde_json::to_string_pretty(&case.cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?;
    std::fs::write(&scenario_path, json + "\n")?;
    let replay = if exact {
        case.replay_command()
    } else {
        format!(
            "simrun --protocol {} --scenario {} --seed {}",
            case.protocol.name().to_lowercase(),
            scenario_path.display(),
            case.seed
        )
    };
    std::fs::write(
        dir.join(format!("case-{:04}.replay", case.index)),
        format!("{replay}\n"),
    )?;
    Ok(replay)
}

/// The per-knob coverage counters over the first `cases` generated
/// cases — the dead-knob guard. A knob whose counter sticks at zero is
/// declared in `ScenarioConfig` but unreachable from the generator; the
/// counters go into the report so a CI diff surfaces distribution
/// drift, and a regression test pins them at a fixed master seed.
/// Generation-only (no simulation), so recomputing is cheap.
pub fn coverage_lines(seed: u64, cases: usize, plant: Plant) -> Vec<String> {
    use alert_sim::{InsiderMode, MobilityKind, Placement};
    let (mut m_static, mut m_group, mut m_manhattan, mut m_rwp) = (0, 0, 0, 0);
    let (mut p_uniform, mut p_convoy, mut p_teams) = (0, 0, 0);
    let (mut e_metered, mut e_zero, mut e_heads) = (0, 0, 0);
    let (mut i_log, mut i_drop, mut i_modify, mut i_stealth) = (0, 0, 0, 0);
    let (mut f_any, mut b_capped, mut t_zero_pairs, mut t_tiny) = (0, 0, 0, 0);
    for index in 0..cases {
        let cfg = gen_case(seed, index, plant).cfg;
        match cfg.mobility {
            MobilityKind::Static => m_static += 1,
            MobilityKind::Group { .. } => m_group += 1,
            MobilityKind::ManhattanGrid { .. } => m_manhattan += 1,
            MobilityKind::RandomWaypoint => m_rwp += 1,
        }
        match cfg.placement {
            Placement::Uniform => p_uniform += 1,
            Placement::Convoy => p_convoy += 1,
            Placement::SmallTeams { .. } => p_teams += 1,
        }
        if cfg.energy.metered() {
            e_metered += 1;
            if cfg.energy.initial_j == Some(0.0) {
                e_zero += 1;
            }
            if cfg.energy.cluster_head_fraction > 0.0 {
                e_heads += 1;
            }
        }
        if cfg.insiders.is_active() {
            match cfg.insiders.mode {
                InsiderMode::Log => i_log += 1,
                InsiderMode::Drop => i_drop += 1,
                InsiderMode::Modify => i_modify += 1,
                InsiderMode::ModifyStealth => i_stealth += 1,
            }
        }
        if !cfg.faults.is_empty() {
            f_any += 1;
        }
        if cfg.budget.max_events.is_some() {
            b_capped += 1;
        }
        if cfg.traffic.pairs == 0 {
            t_zero_pairs += 1;
        }
        if cfg.nodes <= 3 {
            t_tiny += 1;
        }
    }
    vec![
        format!(
            "# coverage: mobility static={m_static} group={m_group} \
             manhattan={m_manhattan} rwp={m_rwp}"
        ),
        format!("# coverage: placement uniform={p_uniform} convoy={p_convoy} teams={p_teams}"),
        format!("# coverage: energy metered={e_metered} zero-start={e_zero} cluster-heads={e_heads}"),
        format!(
            "# coverage: insiders log={i_log} drop={i_drop} modify={i_modify} \
             stealth={i_stealth}"
        ),
        format!(
            "# coverage: faults any={f_any} budget-capped={b_capped} \
             zero-pairs={t_zero_pairs} tiny-world={t_tiny}"
        ),
    ]
}

/// Everything one executed case hands the committer: the generated
/// case, how it fared, and (for violations) the shrunk reproduction.
struct CaseWork {
    case: Case,
    result: CaseResult,
    shrunk: Option<Shrunk>,
}

/// Runs the whole suite, streaming the deterministic report to `out`.
///
/// Cases are fanned across [`SuiteOptions::jobs`] leased pool workers
/// (each case keyed by an FNV-1a fingerprint of `(seed, index, plant)`
/// and generated purely from those values, never from claim order); the
/// calling thread commits results strictly in case order, so the report
/// bytes are independent of the jobs count and of scheduling.
pub fn run_suite(opts: &SuiteOptions, out: &mut dyn Write) -> io::Result<SuiteSummary> {
    let start = Instant::now();
    writeln!(
        out,
        "# simcheck: cases={} seed={} plant={}",
        opts.cases,
        opts.seed,
        match opts.plant {
            Plant::None => "none",
            Plant::Leak => "leak",
            Plant::Insider => "insider",
        }
    )?;
    let mut summary = SuiteSummary {
        cases_run: 0,
        violated: 0,
        harness_errors: 0,
    };

    let plant_tag: &[u8] = match opts.plant {
        Plant::None => b"none",
        Plant::Leak => b"leak",
        Plant::Insider => b"insider",
    };
    let units: Vec<WorkUnit<usize>> = (0..opts.cases)
        .map(|index| WorkUnit {
            label: format!("case-{index:04}"),
            fingerprint: fingerprint_with(&[
                b"simcheck-case",
                &opts.seed.to_le_bytes(),
                &(index as u64).to_le_bytes(),
                plant_tag,
            ]),
            input: index,
        })
        .collect();
    let pool_opts = PoolOptions {
        jobs: opts.jobs.max(1),
        deadline: opts.max_wall.map(|budget| start + budget),
        ..PoolOptions::default()
    };

    let exec = |_w: usize, unit: &WorkUnit<usize>| -> Result<CaseWork, String> {
        let case = gen_case(opts.seed, unit.input, opts.plant);
        let result = run_one(&case);
        let shrunk = match &result {
            CaseResult::Violated { violations, .. } => {
                Some(shrink(&case, violations[0].invariant, opts.shrink_runs))
            }
            _ => None,
        };
        Ok(CaseWork {
            case,
            result,
            shrunk,
        })
    };

    // The committer writes report lines on the calling thread only;
    // I/O errors are stashed and re-raised after the pool drains.
    let mut io_err: Option<io::Error> = None;
    let commit = |unit: &WorkUnit<usize>, outcome: UnitOutcome<CaseWork>| {
        if io_err.is_some() {
            return;
        }
        let index = unit.input;
        let res = (|| -> io::Result<()> {
            let work = match outcome {
                UnitOutcome::Completed(work) => work,
                UnitOutcome::Failed { error, attempts } => {
                    // The harness itself died on every attempt (e.g. a
                    // panicking generator) — a simcheck bug, not a
                    // simulator bug.
                    summary.cases_run += 1;
                    summary.harness_errors += 1;
                    writeln!(
                        out,
                        "case {index:04} HARNESS-ERROR worker failed after \
                         {attempts} attempt(s): {error}"
                    )?;
                    return Ok(());
                }
            };
            summary.cases_run += 1;
            match work.result {
                CaseResult::Ok { events, aborted } => {
                    let note = aborted
                        .map(|a| format!(" [aborted: {a}]"))
                        .unwrap_or_default();
                    writeln!(
                        out,
                        "case {index:04} ok        {} (events={events}){note}",
                        work.case.describe()
                    )?;
                }
                CaseResult::Violated {
                    violations,
                    aborted,
                } => {
                    summary.violated += 1;
                    let note = aborted
                        .map(|a| format!(" [aborted: {a}]"))
                        .unwrap_or_default();
                    writeln!(
                        out,
                        "case {index:04} VIOLATION {}{note}",
                        work.case.describe()
                    )?;
                    for v in &violations {
                        writeln!(out, "  {}: {}", v.invariant, v.detail)?;
                    }
                    let shrunk = work.shrunk.as_ref().expect("violated cases are shrunk");
                    writeln!(
                        out,
                        "  shrunk ({} runs): {}",
                        shrunk.runs_used,
                        shrunk.case.describe()
                    )?;
                    writeln!(out, "  replay: {}", emit_artifacts(opts, &shrunk.case)?)?;
                }
                CaseResult::HarnessError(msg) => {
                    summary.harness_errors += 1;
                    writeln!(
                        out,
                        "case {index:04} HARNESS-ERROR {}: {msg}",
                        work.case.describe()
                    )?;
                }
            }
            Ok(())
        })();
        if let Err(e) = res {
            io_err = Some(e);
        }
    };

    let stats = run_pool(&units, &pool_opts, exec, |_, _, _, _| {}, commit);
    if let Some(e) = io_err {
        return Err(e);
    }
    if stats.cancelled {
        writeln!(
            out,
            "# wall budget exhausted after {} of {} cases",
            summary.cases_run, opts.cases
        )?;
    }
    for line in coverage_lines(opts.seed, summary.cases_run, opts.plant) {
        writeln!(out, "{line}")?;
    }
    writeln!(
        out,
        "# summary: cases={} violations={} harness-errors={}",
        summary.cases_run, summary.violated, summary.harness_errors
    )?;
    eprintln!(
        "[simcheck] {} cases in {:.2}s",
        summary.cases_run,
        start.elapsed().as_secs_f64()
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(opts: &SuiteOptions) -> (SuiteSummary, String) {
        let mut buf = Vec::new();
        let summary = run_suite(opts, &mut buf).unwrap();
        (summary, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn small_suite_passes_and_is_byte_identical() {
        let opts = SuiteOptions {
            cases: 6,
            seed: 0,
            ..SuiteOptions::default()
        };
        let (a_sum, a) = run_to_string(&opts);
        let (b_sum, b) = run_to_string(&opts);
        assert_eq!(a, b, "same seed must render a byte-identical report");
        assert_eq!(a_sum, b_sum);
        assert_eq!(a_sum.violated, 0, "report:\n{a}");
        assert_eq!(a_sum.harness_errors, 0, "report:\n{a}");
        assert!(a.contains("# summary: cases=6 violations=0"));
    }

    #[test]
    fn parallel_suite_is_byte_identical_to_serial() {
        let serial = SuiteOptions {
            cases: 10,
            seed: 7,
            plant: Plant::Leak,
            shrink_runs: 25,
            ..SuiteOptions::default()
        };
        let parallel = SuiteOptions {
            jobs: 4,
            ..serial.clone()
        };
        let (s_sum, s) = run_to_string(&serial);
        let (p_sum, p) = run_to_string(&parallel);
        assert_eq!(s, p, "jobs=4 report must match jobs=1 byte for byte");
        assert_eq!(s_sum, p_sum);
    }

    #[test]
    fn coverage_counters_are_deterministic_and_guard_every_knob() {
        let lines = coverage_lines(0, 300, Plant::None);
        assert_eq!(lines, coverage_lines(0, 300, Plant::None));
        let joined = lines.join("\n");
        // Every counter except the reserved stealth plant must be
        // exercised — a zero here means a declared knob became
        // unreachable from the generator (a dead knob).
        for dead in [
            "static=0",
            "group=0",
            "manhattan=0",
            "rwp=0",
            "uniform=0",
            "convoy=0",
            "teams=0",
            "metered=0",
            "zero-start=0",
            "cluster-heads=0",
            "log=0",
            "drop=0",
            "modify=0",
            "any=0",
            "budget-capped=0",
            "zero-pairs=0",
            "tiny-world=0",
        ] {
            assert!(!joined.contains(dead), "dead knob: {dead}\n{joined}");
        }
        assert!(joined.contains("stealth=0"), "{joined}");
    }

    #[test]
    fn coverage_distribution_is_pinned_at_the_fixed_master_seed() {
        // The exact distribution at master seed 0 over 300 honest cases
        // (under the deterministic offline `rand` stream, the same one the
        // committed trace goldens use). A diff here means the generator's
        // draw order changed, which invalidates every recorded replay
        // command — bump deliberately.
        assert_eq!(
            coverage_lines(0, 300, Plant::None),
            vec![
                "# coverage: mobility static=55 group=46 manhattan=101 rwp=98".to_string(),
                "# coverage: placement uniform=223 convoy=43 teams=34".to_string(),
                "# coverage: energy metered=81 zero-start=7 cluster-heads=21".to_string(),
                "# coverage: insiders log=20 drop=20 modify=24 stealth=0".to_string(),
                "# coverage: faults any=174 budget-capped=32 zero-pairs=45 tiny-world=43"
                    .to_string(),
            ]
        );
    }

    #[test]
    fn insider_plant_suite_is_caught_by_the_containment_oracle() {
        let opts = SuiteOptions {
            cases: 4,
            seed: 0,
            plant: Plant::Insider,
            shrink_runs: 5,
            ..SuiteOptions::default()
        };
        let (summary, report) = run_to_string(&opts);
        assert!(summary.violated > 0, "insider drill went uncaught:\n{report}");
        assert!(report.contains("insider-containment"), "{report}");
    }

    #[test]
    fn planted_suite_reports_catches_and_replays() {
        let opts = SuiteOptions {
            cases: 8,
            seed: 0,
            plant: Plant::Leak,
            shrink_runs: 25,
            ..SuiteOptions::default()
        };
        let (summary, report) = run_to_string(&opts);
        assert!(summary.violated > 0, "plant went uncaught:\n{report}");
        assert!(report.contains("no-node-id-on-wire"), "{report}");
        assert!(report.contains("shrunk ("), "{report}");
        assert!(
            report.contains("replay: simrun --protocol __leaky-node-id"),
            "{report}"
        );
    }
}

//! The seeded scenario fuzzer: deterministic, biased generation of
//! `(protocol, ScenarioConfig × FaultPlan, seed)` cases.
//!
//! Everything is a pure function of `(master seed, case index)` — no
//! entropy, no wall clock — so `simcheck --cases N --seed S` enumerates
//! the same cases on every machine, and any case can be regenerated in
//! isolation for shrinking.
//!
//! The generators are biased toward the corners where simulators break:
//! one-node worlds, zero traffic, saturated loss, partition-heavy fault
//! plans, and budget-truncated runs — alongside a bulk of ordinary
//! mid-size scenarios.

use alert_bench::ProtocolChoice;
use alert_core::AlertConfig;
use alert_sim::{
    FaultPlan, InsiderConfig, InsiderMode, LinkDegradation, MobilityKind, Placement, RegionOutage,
    ScenarioConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fuzz case: everything needed to run (and re-run) it.
#[derive(Debug, Clone)]
pub struct Case {
    /// Position in the enumeration (for reporting).
    pub index: usize,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Generated scenario.
    pub cfg: ScenarioConfig,
    /// Run seed (also the generation seed — one number regenerates the
    /// case).
    pub seed: u64,
}

/// Whether the enumeration interleaves planted-defect protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Plant {
    /// Honest protocols only (the CI posture).
    None,
    /// Every fourth case (including case 0) runs the NodeId-leaking
    /// plant, proving the oracle suite catches it.
    Leak,
    /// Every fourth case (including case 0) runs the insider drill: a
    /// fixed well-connected GPSR scenario in which *every* relay is a
    /// stealth-tampering insider, proving the `insider-containment`
    /// oracle catches undetected modification.
    Insider,
}

/// SplitMix64 — the standard seed mixer; decorrelates adjacent case
/// indices without touching the `rand` API surface.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The nine honest protocols the fuzzer cycles through. Parameterized
/// choices use their `simrun` defaults so every case is replayable by
/// protocol name alone.
fn honest_protocol(rng: &mut StdRng) -> ProtocolChoice {
    match rng.gen_range(0u32..9) {
        0 => ProtocolChoice::Alert(AlertConfig::default()),
        1 => ProtocolChoice::Gpsr,
        2 => ProtocolChoice::Alarm,
        3 => ProtocolChoice::Ao2p,
        4 => ProtocolChoice::Zap { growth: 1.0 },
        5 => ProtocolChoice::Anodr,
        6 => ProtocolChoice::Prism,
        7 => ProtocolChoice::Mask,
        _ => ProtocolChoice::Mapcp,
    }
}

/// Generates case `index` of the enumeration seeded by `master_seed`.
/// The returned scenario always passes [`ScenarioConfig::validate`].
pub fn gen_case(master_seed: u64, index: usize, plant: Plant) -> Case {
    let seed = splitmix64(master_seed ^ splitmix64(index as u64));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = ScenarioConfig::default();

    // Geometry: mostly small-to-mid worlds (fast cases), with a
    // degenerate-corner bias toward 1–3 nodes.
    cfg.nodes = if rng.gen_bool(0.15) {
        rng.gen_range(1..=3)
    } else {
        rng.gen_range(4..=60)
    };
    cfg.traffic.pairs = if cfg.nodes < 2 || rng.gen_bool(0.10) {
        0 // zero-traffic corner: beacons, rotations and faults only
    } else {
        rng.gen_range(1..=cfg.nodes / 2)
    };
    cfg.duration_s = rng.gen_range(2..=15) as f64;
    cfg.speed = rng.gen_range(0.5..10.0);
    cfg.mobility = match rng.gen_range(0u32..6) {
        0 => MobilityKind::Static,
        1 => MobilityKind::Group {
            groups: rng.gen_range(1..=cfg.nodes.min(4)),
            range: rng.gen_range(50.0..200.0),
        },
        2 | 3 => {
            // Manhattan grid, biased toward the degenerate single-street
            // city and the never-turn / always-turn corners.
            let (h_streets, v_streets) = if rng.gen_bool(0.2) {
                (1, 1)
            } else {
                (rng.gen_range(2..=6), rng.gen_range(2..=6))
            };
            let turn_prob = match rng.gen_range(0u32..6) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen_range(0.0..1.0),
            };
            MobilityKind::ManhattanGrid {
                h_streets,
                v_streets,
                turn_prob,
                speed_classes: rng.gen_range(1..=3),
            }
        }
        _ => MobilityKind::RandomWaypoint,
    };

    // Initial placement, orthogonal to mobility: mostly uniform, with a
    // convoy line or small-teams clusters a quarter of the time. The
    // team-size draw reaches both the 1-node-team corner and the
    // everyone-in-one-team corner; spread 0 stacks a team on one point.
    cfg.placement = match rng.gen_range(0u32..8) {
        0 => Placement::Convoy,
        1 => Placement::SmallTeams {
            team_size: rng.gen_range(1..=cfg.nodes),
            spread_m: if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(5.0..60.0)
            },
        },
        _ => Placement::Uniform,
    };

    // Channel: half the cases run lossless; the rest sample moderate
    // loss, with a rare near-blackout channel.
    cfg.mac.loss_probability = if rng.gen_bool(0.5) {
        0.0
    } else if rng.gen_bool(0.1) {
        0.9
    } else {
        rng.gen_range(0.0..0.5)
    };
    cfg.mac.arq_max_retries = rng.gen_range(0..=3);

    // Keep pseudonym lifetimes >= 1 s: sub-second lifetimes would rotate
    // inside the construction-time warmup where the trace sink is not
    // yet attached, which is a harness blind spot, not a simulator bug.
    if rng.gen_bool(0.3) {
        cfg.pseudonym_lifetime_s = rng.gen_range(2.0..10.0);
    }

    // Faults: none / random churn / a half-field outage (partition
    // pressure) / a mid-run link blackout.
    cfg.faults = match rng.gen_range(0u32..5) {
        0 | 1 => FaultPlan::default(),
        2 => FaultPlan::churn(
            cfg.nodes,
            rng.gen_range(0.1..0.5),
            cfg.duration_s,
            rng.gen(),
        ),
        3 => FaultPlan {
            regional_outages: vec![RegionOutage {
                x: 0.0,
                y: 0.0,
                w: cfg.field_w / 2.0,
                h: cfg.field_h,
                start_s: cfg.duration_s * 0.25,
                end_s: cfg.duration_s * 0.75,
            }],
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            link_degradations: vec![LinkDegradation {
                start_s: cfg.duration_s * 0.3,
                end_s: cfg.duration_s * 0.6,
                factor: 1.0,
                add: 0.9,
            }],
            ..FaultPlan::default()
        },
    };

    // Energy metering: a quarter of the cases run on a battery, with a
    // zero-energy-start corner (everyone dead at t=0) and occasional
    // cluster-head election / idle drain.
    if rng.gen_bool(0.25) {
        cfg.energy.initial_j = Some(if rng.gen_bool(0.10) {
            0.0
        } else {
            rng.gen_range(20.0..2_000.0)
        });
        if rng.gen_bool(0.3) {
            cfg.energy.idle_watts = rng.gen_range(0.0..0.2);
        }
        if rng.gen_bool(0.3) {
            cfg.energy.cluster_head_fraction = 0.12;
        }
    }

    // Insider adversaries: a fifth of the cases compromise some relays.
    // Honest fuzzing never draws ModifyStealth — tampering that evades
    // the integrity check is exactly the defect the containment oracle
    // exists to catch, so it is reserved for the planted drill.
    if rng.gen_bool(0.2) {
        cfg.insiders = InsiderConfig {
            fraction: if rng.gen_bool(0.1) {
                1.0 // all-relays-compromised corner
            } else {
                rng.gen_range(0.05..0.5)
            },
            mode: match rng.gen_range(0u32..3) {
                0 => InsiderMode::Log,
                1 => InsiderMode::Drop,
                _ => InsiderMode::Modify,
            },
        };
    }

    // Budget-truncation corner: the run aborts mid-flight and the
    // oracles must still hold on the prefix.
    if rng.gen_bool(0.1) {
        cfg.budget.max_events = Some(rng.gen_range(500..5_000));
    }

    let protocol = match plant {
        Plant::Leak if index % 4 == 0 => ProtocolChoice::LeakyNodeId,
        Plant::Insider if index % 4 == 0 => {
            cfg = insider_drill_scenario();
            ProtocolChoice::Gpsr
        }
        _ => honest_protocol(&mut rng),
    };
    Case {
        index,
        protocol,
        cfg,
        seed,
    }
}

/// The insider-drill scenario: a fixed, well-connected, static GPSR
/// world with every relay compromised in stealth-tamper mode. Traffic
/// gets delivered, every forwarded frame is modified undetected, and the
/// `insider-containment` oracle must fire — and nothing else.
pub fn insider_drill_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(8.0);
    cfg.traffic.pairs = 3;
    cfg.mobility = MobilityKind::Static;
    cfg.mac.loss_probability = 0.0;
    cfg.insiders = InsiderConfig {
        fraction: 1.0,
        mode: InsiderMode::ModifyStealth,
    };
    cfg
}

impl Case {
    /// One deterministic line describing the case (the report row).
    pub fn describe(&self) -> String {
        let mob = match self.cfg.mobility {
            MobilityKind::RandomWaypoint => "rwp".to_string(),
            MobilityKind::Static => "static".to_string(),
            MobilityKind::Group { groups, .. } => format!("group{groups}"),
            MobilityKind::ManhattanGrid {
                h_streets,
                v_streets,
                ..
            } => format!("manhattan{h_streets}x{v_streets}"),
        };
        let place = match self.cfg.placement {
            Placement::Uniform => String::new(),
            Placement::Convoy => " place=convoy".to_string(),
            Placement::SmallTeams { team_size, .. } => format!(" place=teams{team_size}"),
        };
        let energy = match self.cfg.energy.initial_j {
            Some(j) => format!(" energy={j:.0}J"),
            None => String::new(),
        };
        let insiders = if self.cfg.insiders.is_active() {
            format!(
                " insiders={:.2}/{}",
                self.cfg.insiders.fraction, self.cfg.insiders.mode
            )
        } else {
            String::new()
        };
        let faults = if self.cfg.faults.is_empty() {
            "none".to_string()
        } else {
            format!(
                "c{}o{}l{}",
                self.cfg.faults.crashes.len(),
                self.cfg.faults.regional_outages.len(),
                self.cfg.faults.link_degradations.len()
            )
        };
        let budget = match self.cfg.budget.max_events {
            Some(n) => format!(" budget={n}"),
            None => String::new(),
        };
        format!(
            "{} nodes={} pairs={} dur={} mob={mob} loss={:.2} arq={} faults={faults}{place}{energy}{insiders}{budget} seed={}",
            self.protocol.name(),
            self.cfg.nodes,
            self.cfg.traffic.pairs,
            self.cfg.duration_s,
            self.cfg.mac.loss_probability,
            self.cfg.mac.arq_max_retries,
            self.seed
        )
    }

    /// The one-line `simrun` command replaying this case (exact when the
    /// scenario is [`flag_encodable`]; otherwise the geometry flags are
    /// right but the scenario JSON artifact is needed for the rest).
    pub fn replay_command(&self) -> String {
        format!(
            "simrun --protocol {} --nodes {} --pairs {} --duration {} --seed {}",
            self.protocol.name().to_lowercase(),
            self.cfg.nodes,
            self.cfg.traffic.pairs,
            self.cfg.duration_s,
            self.seed
        )
    }
}

/// Whether a scenario is fully expressible as `simrun` geometry flags —
/// i.e. it is the default scenario except for nodes, pairs, and
/// duration, so [`Case::replay_command`] reproduces it exactly.
pub fn flag_encodable(cfg: &ScenarioConfig) -> bool {
    let mut canon = ScenarioConfig::default()
        .with_nodes(cfg.nodes)
        .with_duration(cfg.duration_s);
    canon.traffic.pairs = cfg.traffic.pairs;
    canon == *cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..50 {
            let a = gen_case(0, i, Plant::None);
            let b = gen_case(0, i, Plant::None);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.cfg, b.cfg);
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn every_generated_scenario_validates() {
        for plant in [Plant::Leak, Plant::Insider] {
            for i in 0..300 {
                let c = gen_case(0xDEAD_BEEF, i, plant);
                assert!(
                    c.cfg.validate().is_ok(),
                    "case {i} invalid: {:?} / {:?}",
                    c.cfg.validate(),
                    c.cfg
                );
            }
        }
    }

    #[test]
    fn corners_are_reachable() {
        let cases: Vec<Case> = (0..300).map(|i| gen_case(1, i, Plant::None)).collect();
        assert!(cases.iter().any(|c| c.cfg.nodes == 1), "no 1-node world");
        assert!(
            cases.iter().any(|c| c.cfg.traffic.pairs == 0),
            "no zero-pair case"
        );
        assert!(
            cases.iter().any(|c| c.cfg.budget.max_events.is_some()),
            "no budget-truncated case"
        );
        assert!(
            cases
                .iter()
                .any(|c| !c.cfg.faults.regional_outages.is_empty()),
            "no partition-heavy plan"
        );
        assert!(
            cases.iter().any(|c| c.cfg.mac.loss_probability > 0.8),
            "no near-blackout channel"
        );
    }

    #[test]
    fn new_scenario_knobs_and_their_corners_are_reachable() {
        let cases: Vec<Case> = (0..400).map(|i| gen_case(2, i, Plant::None)).collect();
        assert!(
            cases.iter().any(|c| matches!(
                c.cfg.mobility,
                MobilityKind::ManhattanGrid {
                    h_streets: 1,
                    v_streets: 1,
                    ..
                }
            )),
            "no single-street city"
        );
        assert!(
            cases.iter().any(|c| matches!(
                c.cfg.mobility,
                MobilityKind::ManhattanGrid { turn_prob, .. } if turn_prob == 0.0
            )),
            "no never-turn corner"
        );
        assert!(
            cases.iter().any(|c| matches!(
                c.cfg.mobility,
                MobilityKind::ManhattanGrid { turn_prob, .. } if turn_prob == 1.0
            )),
            "no always-turn corner"
        );
        assert!(
            cases.iter().any(|c| c.cfg.placement == Placement::Convoy),
            "no convoy placement"
        );
        assert!(
            cases
                .iter()
                .any(|c| matches!(c.cfg.placement, Placement::SmallTeams { team_size: 1, .. })),
            "no 1-node-team corner"
        );
        assert!(
            cases.iter().any(|c| c.cfg.energy.initial_j == Some(0.0)),
            "no zero-energy start"
        );
        assert!(
            cases
                .iter()
                .any(|c| c.cfg.energy.metered() && c.cfg.energy.cluster_head_fraction > 0.0),
            "no cluster-head election"
        );
        assert!(
            cases
                .iter()
                .any(|c| c.cfg.insiders.is_active() && c.cfg.insiders.fraction == 1.0),
            "no all-relays-compromised corner"
        );
        assert!(
            cases
                .iter()
                .all(|c| c.cfg.insiders.mode != InsiderMode::ModifyStealth),
            "honest fuzzing must never draw the stealth plant"
        );
    }

    #[test]
    fn insider_plant_interleaves_the_drill() {
        let c0 = gen_case(0, 0, Plant::Insider);
        assert_eq!(c0.protocol, ProtocolChoice::Gpsr);
        assert_eq!(c0.cfg, insider_drill_scenario());
        assert_eq!(c0.cfg.insiders.mode, InsiderMode::ModifyStealth);
        assert!(c0.cfg.validate().is_ok());
        // Non-planted cases are untouched by the plant choice.
        let honest = gen_case(0, 1, Plant::Insider);
        assert_eq!(honest.cfg, gen_case(0, 1, Plant::None).cfg);
    }

    #[test]
    fn plant_mode_interleaves_the_leaky_protocol() {
        let c0 = gen_case(0, 0, Plant::Leak);
        assert_eq!(c0.protocol, ProtocolChoice::LeakyNodeId);
        let honest = gen_case(0, 1, Plant::Leak);
        assert_ne!(honest.protocol, ProtocolChoice::LeakyNodeId);
        // Plant choice does not perturb the scenario itself.
        assert_eq!(c0.cfg, gen_case(0, 0, Plant::None).cfg);
    }

    #[test]
    fn flag_encodable_detects_non_default_knobs() {
        let mut cfg = ScenarioConfig::default().with_nodes(10).with_duration(3.0);
        cfg.traffic.pairs = 2;
        assert!(flag_encodable(&cfg));
        cfg.mac.loss_probability = 0.2;
        assert!(!flag_encodable(&cfg));
    }
}

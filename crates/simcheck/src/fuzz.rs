//! The seeded scenario fuzzer: deterministic, biased generation of
//! `(protocol, ScenarioConfig × FaultPlan, seed)` cases.
//!
//! Everything is a pure function of `(master seed, case index)` — no
//! entropy, no wall clock — so `simcheck --cases N --seed S` enumerates
//! the same cases on every machine, and any case can be regenerated in
//! isolation for shrinking.
//!
//! The generators are biased toward the corners where simulators break:
//! one-node worlds, zero traffic, saturated loss, partition-heavy fault
//! plans, and budget-truncated runs — alongside a bulk of ordinary
//! mid-size scenarios.

use alert_bench::ProtocolChoice;
use alert_core::AlertConfig;
use alert_sim::{FaultPlan, LinkDegradation, MobilityKind, RegionOutage, ScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fuzz case: everything needed to run (and re-run) it.
#[derive(Debug, Clone)]
pub struct Case {
    /// Position in the enumeration (for reporting).
    pub index: usize,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Generated scenario.
    pub cfg: ScenarioConfig,
    /// Run seed (also the generation seed — one number regenerates the
    /// case).
    pub seed: u64,
}

/// Whether the enumeration interleaves planted-defect protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Plant {
    /// Honest protocols only (the CI posture).
    None,
    /// Every fourth case (including case 0) runs the NodeId-leaking
    /// plant, proving the oracle suite catches it.
    Leak,
}

/// SplitMix64 — the standard seed mixer; decorrelates adjacent case
/// indices without touching the `rand` API surface.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The nine honest protocols the fuzzer cycles through. Parameterized
/// choices use their `simrun` defaults so every case is replayable by
/// protocol name alone.
fn honest_protocol(rng: &mut StdRng) -> ProtocolChoice {
    match rng.gen_range(0u32..9) {
        0 => ProtocolChoice::Alert(AlertConfig::default()),
        1 => ProtocolChoice::Gpsr,
        2 => ProtocolChoice::Alarm,
        3 => ProtocolChoice::Ao2p,
        4 => ProtocolChoice::Zap { growth: 1.0 },
        5 => ProtocolChoice::Anodr,
        6 => ProtocolChoice::Prism,
        7 => ProtocolChoice::Mask,
        _ => ProtocolChoice::Mapcp,
    }
}

/// Generates case `index` of the enumeration seeded by `master_seed`.
/// The returned scenario always passes [`ScenarioConfig::validate`].
pub fn gen_case(master_seed: u64, index: usize, plant: Plant) -> Case {
    let seed = splitmix64(master_seed ^ splitmix64(index as u64));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = ScenarioConfig::default();

    // Geometry: mostly small-to-mid worlds (fast cases), with a
    // degenerate-corner bias toward 1–3 nodes.
    cfg.nodes = if rng.gen_bool(0.15) {
        rng.gen_range(1..=3)
    } else {
        rng.gen_range(4..=60)
    };
    cfg.traffic.pairs = if cfg.nodes < 2 || rng.gen_bool(0.10) {
        0 // zero-traffic corner: beacons, rotations and faults only
    } else {
        rng.gen_range(1..=cfg.nodes / 2)
    };
    cfg.duration_s = rng.gen_range(2..=15) as f64;
    cfg.speed = rng.gen_range(0.5..10.0);
    cfg.mobility = match rng.gen_range(0u32..4) {
        0 => MobilityKind::Static,
        1 => MobilityKind::Group {
            groups: rng.gen_range(1..=cfg.nodes.min(4)),
            range: rng.gen_range(50.0..200.0),
        },
        _ => MobilityKind::RandomWaypoint,
    };

    // Channel: half the cases run lossless; the rest sample moderate
    // loss, with a rare near-blackout channel.
    cfg.mac.loss_probability = if rng.gen_bool(0.5) {
        0.0
    } else if rng.gen_bool(0.1) {
        0.9
    } else {
        rng.gen_range(0.0..0.5)
    };
    cfg.mac.arq_max_retries = rng.gen_range(0..=3);

    // Keep pseudonym lifetimes >= 1 s: sub-second lifetimes would rotate
    // inside the construction-time warmup where the trace sink is not
    // yet attached, which is a harness blind spot, not a simulator bug.
    if rng.gen_bool(0.3) {
        cfg.pseudonym_lifetime_s = rng.gen_range(2.0..10.0);
    }

    // Faults: none / random churn / a half-field outage (partition
    // pressure) / a mid-run link blackout.
    cfg.faults = match rng.gen_range(0u32..5) {
        0 | 1 => FaultPlan::default(),
        2 => FaultPlan::churn(
            cfg.nodes,
            rng.gen_range(0.1..0.5),
            cfg.duration_s,
            rng.gen(),
        ),
        3 => FaultPlan {
            regional_outages: vec![RegionOutage {
                x: 0.0,
                y: 0.0,
                w: cfg.field_w / 2.0,
                h: cfg.field_h,
                start_s: cfg.duration_s * 0.25,
                end_s: cfg.duration_s * 0.75,
            }],
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            link_degradations: vec![LinkDegradation {
                start_s: cfg.duration_s * 0.3,
                end_s: cfg.duration_s * 0.6,
                factor: 1.0,
                add: 0.9,
            }],
            ..FaultPlan::default()
        },
    };

    // Budget-truncation corner: the run aborts mid-flight and the
    // oracles must still hold on the prefix.
    if rng.gen_bool(0.1) {
        cfg.budget.max_events = Some(rng.gen_range(500..5_000));
    }

    let protocol = match plant {
        Plant::Leak if index % 4 == 0 => ProtocolChoice::LeakyNodeId,
        _ => honest_protocol(&mut rng),
    };
    Case {
        index,
        protocol,
        cfg,
        seed,
    }
}

impl Case {
    /// One deterministic line describing the case (the report row).
    pub fn describe(&self) -> String {
        let mob = match self.cfg.mobility {
            MobilityKind::RandomWaypoint => "rwp".to_string(),
            MobilityKind::Static => "static".to_string(),
            MobilityKind::Group { groups, .. } => format!("group{groups}"),
        };
        let faults = if self.cfg.faults.is_empty() {
            "none".to_string()
        } else {
            format!(
                "c{}o{}l{}",
                self.cfg.faults.crashes.len(),
                self.cfg.faults.regional_outages.len(),
                self.cfg.faults.link_degradations.len()
            )
        };
        let budget = match self.cfg.budget.max_events {
            Some(n) => format!(" budget={n}"),
            None => String::new(),
        };
        format!(
            "{} nodes={} pairs={} dur={} mob={mob} loss={:.2} arq={} faults={faults}{budget} seed={}",
            self.protocol.name(),
            self.cfg.nodes,
            self.cfg.traffic.pairs,
            self.cfg.duration_s,
            self.cfg.mac.loss_probability,
            self.cfg.mac.arq_max_retries,
            self.seed
        )
    }

    /// The one-line `simrun` command replaying this case (exact when the
    /// scenario is [`flag_encodable`]; otherwise the geometry flags are
    /// right but the scenario JSON artifact is needed for the rest).
    pub fn replay_command(&self) -> String {
        format!(
            "simrun --protocol {} --nodes {} --pairs {} --duration {} --seed {}",
            self.protocol.name().to_lowercase(),
            self.cfg.nodes,
            self.cfg.traffic.pairs,
            self.cfg.duration_s,
            self.seed
        )
    }
}

/// Whether a scenario is fully expressible as `simrun` geometry flags —
/// i.e. it is the default scenario except for nodes, pairs, and
/// duration, so [`Case::replay_command`] reproduces it exactly.
pub fn flag_encodable(cfg: &ScenarioConfig) -> bool {
    let mut canon = ScenarioConfig::default()
        .with_nodes(cfg.nodes)
        .with_duration(cfg.duration_s);
    canon.traffic.pairs = cfg.traffic.pairs;
    canon == *cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..50 {
            let a = gen_case(0, i, Plant::None);
            let b = gen_case(0, i, Plant::None);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.cfg, b.cfg);
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn every_generated_scenario_validates() {
        for i in 0..300 {
            let c = gen_case(0xDEAD_BEEF, i, Plant::Leak);
            assert!(
                c.cfg.validate().is_ok(),
                "case {i} invalid: {:?} / {:?}",
                c.cfg.validate(),
                c.cfg
            );
        }
    }

    #[test]
    fn corners_are_reachable() {
        let cases: Vec<Case> = (0..300).map(|i| gen_case(1, i, Plant::None)).collect();
        assert!(cases.iter().any(|c| c.cfg.nodes == 1), "no 1-node world");
        assert!(
            cases.iter().any(|c| c.cfg.traffic.pairs == 0),
            "no zero-pair case"
        );
        assert!(
            cases.iter().any(|c| c.cfg.budget.max_events.is_some()),
            "no budget-truncated case"
        );
        assert!(
            cases
                .iter()
                .any(|c| !c.cfg.faults.regional_outages.is_empty()),
            "no partition-heavy plan"
        );
        assert!(
            cases.iter().any(|c| c.cfg.mac.loss_probability > 0.8),
            "no near-blackout channel"
        );
    }

    #[test]
    fn plant_mode_interleaves_the_leaky_protocol() {
        let c0 = gen_case(0, 0, Plant::Leak);
        assert_eq!(c0.protocol, ProtocolChoice::LeakyNodeId);
        let honest = gen_case(0, 1, Plant::Leak);
        assert_ne!(honest.protocol, ProtocolChoice::LeakyNodeId);
        // Plant choice does not perturb the scenario itself.
        assert_eq!(c0.cfg, gen_case(0, 0, Plant::None).cfg);
    }

    #[test]
    fn flag_encodable_detects_non_default_knobs() {
        let mut cfg = ScenarioConfig::default().with_nodes(10).with_duration(3.0);
        cfg.traffic.pairs = 2;
        assert!(flag_encodable(&cfg));
        cfg.mac.loss_probability = 0.2;
        assert!(!flag_encodable(&cfg));
    }
}

//! The failing-case shrinker: given a case that trips an invariant,
//! minimize it along the config axes (scenario canonicalization, node
//! count, pair count, duration, fault entries) while the *same*
//! invariant keeps firing, within a bounded re-run budget.
//!
//! The first move is the most valuable: try replacing the whole fuzzed
//! scenario with the default one (keeping only geometry and seed). When
//! that reproduces — always, for config-independent bugs like an
//! identity leak — the minimized case is fully expressible as `simrun`
//! flags and the emitted replay command is exact.

use crate::driver::run_case;
use crate::fuzz::Case;
use crate::oracle::check_all;
use alert_sim::ScenarioConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of shrinking one failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized case (still failing with the original invariant).
    pub case: Case,
    /// Simulator re-runs spent.
    pub runs_used: usize,
}

/// Does `case` still violate `invariant`? Panics count only for the
/// `no-panic` pseudo-invariant; an invalid scenario (impossible from the
/// generator, possible mid-shrink) counts as not reproducing.
pub fn reproduces(case: &Case, invariant: &str) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_case(case.protocol, &case.cfg, case.seed)
    }));
    match result {
        Err(_) => invariant == "no-panic",
        Ok(Err(_)) => false,
        Ok(Ok(run)) => check_all(case.protocol, &run)
            .iter()
            .any(|v| v.invariant == invariant),
    }
}

/// Minimizes `case` while `invariant` reproduces, spending at most
/// `max_runs` simulator re-runs.
pub fn shrink(case: &Case, invariant: &'static str, max_runs: usize) -> Shrunk {
    let mut best = case.clone();
    let mut runs_used = 0usize;
    let mut try_adopt = |best: &mut Case, candidate: Case, runs_used: &mut usize| -> bool {
        if *runs_used >= max_runs || candidate.cfg.validate().is_err() {
            return false;
        }
        *runs_used += 1;
        if reproduces(&candidate, invariant) {
            *best = candidate;
            true
        } else {
            false
        }
    };

    // Pass 1: canonicalize — default scenario, fuzzed geometry.
    let mut canon = best.clone();
    canon.cfg = canonical_geometry(&best.cfg);
    if canon.cfg != best.cfg {
        try_adopt(&mut best, canon, &mut runs_used);
    }

    // Pass 2: greedy halving to a fixpoint across the remaining axes.
    let mut progressed = true;
    while progressed && runs_used < max_runs {
        progressed = false;

        if best.cfg.duration_s > 1.0 {
            let mut c = best.clone();
            c.cfg.duration_s = (c.cfg.duration_s / 2.0).max(1.0).round().max(1.0);
            c.cfg.faults = clamp_faults(&c.cfg);
            if c.cfg.duration_s < best.cfg.duration_s && try_adopt(&mut best, c, &mut runs_used) {
                progressed = true;
            }
        }

        if best.cfg.traffic.pairs > 0 {
            let mut c = best.clone();
            c.cfg.traffic.pairs /= 2;
            if try_adopt(&mut best, c, &mut runs_used) {
                progressed = true;
            }
        }

        let floor = (2 * best.cfg.traffic.pairs).max(1);
        if best.cfg.nodes > floor {
            let mut c = best.clone();
            c.cfg.nodes = (c.cfg.nodes / 2).max(floor);
            c.cfg.faults = clamp_faults(&c.cfg);
            if try_adopt(&mut best, c, &mut runs_used) {
                progressed = true;
            }
        }

        if !best.cfg.faults.is_empty() {
            let mut c = best.clone();
            let n = c.cfg.faults.crashes.len();
            if n > 0 {
                c.cfg.faults.crashes.truncate(n / 2);
            } else if !c.cfg.faults.regional_outages.is_empty() {
                c.cfg.faults.regional_outages.clear();
            } else {
                c.cfg.faults.link_degradations.clear();
            }
            if try_adopt(&mut best, c, &mut runs_used) {
                progressed = true;
            }
        }
    }

    Shrunk {
        case: best,
        runs_used,
    }
}

/// The default scenario carrying only `cfg`'s geometry (nodes, pairs,
/// duration) — the flag-encodable canonical form.
fn canonical_geometry(cfg: &ScenarioConfig) -> ScenarioConfig {
    let mut canon = ScenarioConfig::default()
        .with_nodes(cfg.nodes)
        .with_duration(cfg.duration_s);
    canon.traffic.pairs = cfg.traffic.pairs;
    canon
}

/// Drops fault entries a smaller geometry has made invalid (crashes of
/// nodes past the new population; windows past the new duration stay —
/// they are legal, just inert).
fn clamp_faults(cfg: &ScenarioConfig) -> alert_sim::FaultPlan {
    let mut faults = cfg.faults.clone();
    faults.crashes.retain(|c| c.node < cfg.nodes);
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{flag_encodable, gen_case, Plant};
    use alert_bench::ProtocolChoice;

    #[test]
    fn leak_shrinks_to_a_flag_encodable_minimum() {
        // Every fourth case in plant mode is the leaky protocol under a
        // fuzzed scenario. The leak needs at least one data frame to
        // become observable, so find the first planted case that
        // actually reproduces it (a zero-pair or disconnected corner
        // may legitimately stay silent), then shrink that. The leak is
        // config-independent, so shrinking must reach the canonical
        // default scenario at small geometry.
        let case = (0..40)
            .step_by(4)
            .map(|i| gen_case(0, i, Plant::Leak))
            .inspect(|c| assert_eq!(c.protocol, ProtocolChoice::LeakyNodeId))
            .find(|c| reproduces(c, "no-node-id-on-wire"))
            .expect("no planted case leaked in 10 tries");
        let shrunk = shrink(&case, "no-node-id-on-wire", 40);
        assert!(reproduces(&shrunk.case, "no-node-id-on-wire"));
        assert!(
            flag_encodable(&shrunk.case.cfg),
            "shrunk case not flag-encodable: {:?}",
            shrunk.case.cfg
        );
        assert!(shrunk.case.cfg.nodes <= case.cfg.nodes);
        assert!(shrunk.case.cfg.duration_s <= case.cfg.duration_s);
        assert!(shrunk.case.cfg.faults.is_empty());
        let replay = shrunk.case.replay_command();
        assert!(
            replay.starts_with("simrun --protocol __leaky-node-id --nodes"),
            "{replay}"
        );
    }

    #[test]
    fn shrink_respects_its_run_budget() {
        let case = gen_case(0, 0, Plant::Leak);
        let shrunk = shrink(&case, "no-node-id-on-wire", 3);
        assert!(shrunk.runs_used <= 3);
    }

    #[test]
    fn non_reproducing_invariant_shrinks_nothing() {
        let case = gen_case(0, 1, Plant::None);
        let shrunk = shrink(&case, "no-node-id-on-wire", 10);
        assert_eq!(shrunk.case.cfg, case.cfg);
    }
}

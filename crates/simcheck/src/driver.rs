//! Instrumented case execution: run one `(protocol, scenario, seed)`
//! point with every observation channel the oracles need wide open —
//! the full structured trace, the eavesdropper's [`TxEvent`] stream,
//! the frame-audit view of typed on-wire messages, and periodic
//! ground-truth position samples.
//!
//! This mirrors `alert-bench`'s single-choke-point `drive` (one generic
//! body, one match over [`ProtocolChoice`]) so instrumentation cannot
//! drift between protocol arms.

use crate::audit::WireAudit;
use alert_adversary::{tamper_log, Insider};
use alert_bench::planted::LeakyGeo;
use alert_bench::{ProtocolChoice, RunFailure};
use alert_core::Alert;
use alert_geom::Point;
use alert_protocols::{Alarm, Anodr, Ao2p, Gpsr, Mapcp, Mask, Prism, Zap};
use alert_sim::{
    Metrics, NodeId, Observer, ProtocolNode, RegistrySnapshot, RunAbort, ScenarioConfig,
    TraceEvent, TraceSink, TxEvent, World,
};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// One frame as the audit hook saw it: when it was put on the air, who
/// really sent it, what sender pseudonym it carried, and any ground-truth
/// node ids its typed message declared via [`WireAudit`].
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Transmission start time.
    pub time: f64,
    /// Ground-truth transmitting node.
    pub sender: u64,
    /// On-wire sender pseudonym.
    pub pseudonym: u64,
    /// Ground-truth node ids found in the message (empty for every
    /// honest protocol).
    pub leaked: Vec<u64>,
}

/// A ground-truth position sample taken between event slices.
#[derive(Debug, Clone, Copy)]
pub struct PosSample {
    /// Sample time.
    pub time: f64,
    /// Sampled node.
    pub node: u64,
    /// Ground-truth position at `time`.
    pub pos: Point,
}

/// What the insider cohort saw and did during a run with active
/// [`alert_sim::InsiderConfig`] — the evidence the `insider-containment`
/// oracle correlates with the delivered set.
#[derive(Debug, Clone, Default)]
pub struct InsiderOutcome {
    /// Ground-truth ids of the compromised nodes.
    pub compromised: Vec<u64>,
    /// Frames received by compromised relays.
    pub observed: u64,
    /// Frames swallowed by `Drop` insiders.
    pub dropped: u64,
    /// Frames whose payload an insider corrupted.
    pub modified: u64,
    /// Packet ids of tampered frames (where the wire format exposes one).
    pub tampered_packets: BTreeSet<u64>,
}

/// Everything one instrumented case run produced, for the oracles.
#[derive(Debug)]
pub struct CaseRun {
    /// The scenario that ran (the oracles need its geometry and MAC
    /// parameters to compute bounds).
    pub cfg: ScenarioConfig,
    /// Full structured trace, in emission order.
    pub events: Vec<TraceEvent>,
    /// Frame-audit records, in transmission order.
    pub frames: Vec<FrameRecord>,
    /// Eavesdropper view of every transmission (exact sender positions
    /// and resolved unicast receivers), 1:1 with the trace's `tx` events.
    pub txs: Vec<TxEvent>,
    /// Ground-truth positions sampled once per node per event slice.
    pub positions: Vec<PosSample>,
    /// End-of-run metrics (ground truth).
    pub metrics: Metrics,
    /// End-of-run counter/histogram registry.
    pub registry: RegistrySnapshot,
    /// The guardrail abort that truncated the run, if any. An aborted
    /// run is still a legal object of study — physics and accounting
    /// must hold on the prefix — but completion-shaped invariants
    /// (conservation) are skipped.
    pub aborted: Option<RunAbort>,
    /// Insider-cohort evidence, present iff the scenario's
    /// [`alert_sim::InsiderConfig`] is active.
    pub insider: Option<InsiderOutcome>,
}

/// The trace sink used for checking: buffers every event in memory.
struct VecSink(Rc<RefCell<Vec<TraceEvent>>>);

impl TraceSink for VecSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().push(event.clone());
    }
}

/// The observer used for checking: buffers every [`TxEvent`].
struct TxCollector(Rc<RefCell<Vec<TxEvent>>>);

impl Observer for TxCollector {
    fn on_transmission(&mut self, ev: &TxEvent) {
        self.0.borrow_mut().push(*ev);
    }
}

/// Runs one case fully instrumented. Generic choke point; use
/// [`run_case`] for the `ProtocolChoice` front door.
///
/// When the scenario's insider plan is active, every node's protocol is
/// wrapped in the adversary crate's [`Insider`] (the compromised set
/// chosen purely from `(cfg.insiders, nodes, seed)`, so the bench runner
/// agrees), and the shared tamper log is drained into
/// [`CaseRun::insider`] after the run.
fn drive_checked<P, F>(cfg: &ScenarioConfig, seed: u64, factory: F) -> Result<CaseRun, RunFailure>
where
    P: ProtocolNode,
    P::Msg: WireAudit,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    if !cfg.insiders.is_active() {
        return drive_world(cfg, seed, factory);
    }
    let plan = cfg.insiders;
    let chosen = plan.choose(cfg.nodes, seed);
    let compromised: Vec<u64> = chosen
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| c.then_some(i as u64))
        .collect();
    let log = tamper_log();
    let factory_log = log.clone();
    let mut factory = factory;
    let mut run = drive_world(cfg, seed, move |id: NodeId, c: &ScenarioConfig| {
        Insider::new(
            factory(id, c),
            id.0 as u64,
            plan.mode,
            chosen[id.0],
            factory_log.clone(),
            |m: &P::Msg| m.packet_id(),
        )
    })?;
    let tampered = log.lock();
    run.insider = Some(InsiderOutcome {
        compromised,
        observed: tampered.observed,
        dropped: tampered.dropped,
        modified: tampered.modified,
        tampered_packets: tampered.tampered_packets.clone(),
    });
    Ok(run)
}

/// The uninstrumented-protocol inner body of [`drive_checked`].
fn drive_world<P, F>(cfg: &ScenarioConfig, seed: u64, factory: F) -> Result<CaseRun, RunFailure>
where
    P: ProtocolNode,
    P::Msg: WireAudit,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    let mut w = World::try_new(cfg.clone(), seed, factory)?;

    let events: Rc<RefCell<Vec<TraceEvent>>> = Rc::default();
    w.set_trace_sink(Box::new(VecSink(events.clone())));

    let txs: Rc<RefCell<Vec<TxEvent>>> = Rc::default();
    w.add_observer(Box::new(TxCollector(txs.clone())));

    let frames: Rc<RefCell<Vec<FrameRecord>>> = Rc::default();
    let sink = frames.clone();
    w.set_frame_audit(Box::new(move |time, from, pseudonym, msg: &P::Msg| {
        let mut leaked = Vec::new();
        msg.visit_node_ids(&mut |id| leaked.push(id));
        sink.borrow_mut().push(FrameRecord {
            time,
            sender: from.0 as u64,
            pseudonym: pseudonym.0,
            leaked,
        });
    }));

    // Step the run in short slices, sampling every node's ground-truth
    // position between slices. The slice pitch bounds how far a node can
    // drift between a transmission and its nearest position sample,
    // which sets the tolerance of the physics oracles.
    let slice = sample_slice(cfg);
    let horizon = cfg.duration_s + 1.0; // the runtime's delivery grace
    let mut positions = Vec::new();
    let mut aborted = None;
    let sample = |w: &World<P>, out: &mut Vec<PosSample>| {
        let now = w.now();
        for i in 0..cfg.nodes {
            out.push(PosSample {
                time: now,
                node: i as u64,
                pos: w.position(NodeId(i)),
            });
        }
    };
    sample(&w, &mut positions);
    let mut t = 0.0;
    while t < horizon && aborted.is_none() {
        t = (t + slice).min(horizon);
        match w.try_run_until(t) {
            Ok(more) => {
                sample(&w, &mut positions);
                if !more {
                    break; // event queue drained early
                }
            }
            Err(a) => aborted = Some(a),
        }
    }
    if aborted.is_none() {
        // Drain the remainder (periodic ticks self-schedule past any
        // finite `t`, so the slice loop alone never sees the queue end).
        if let Err(a) = w.try_run() {
            aborted = Some(a);
        }
        sample(&w, &mut positions);
    }

    drop(w.take_trace_sink());
    drop(w.take_frame_audit());
    drop(w.take_observers());
    Ok(CaseRun {
        cfg: cfg.clone(),
        events: Rc::try_unwrap(events).expect("sink detached").into_inner(),
        frames: Rc::try_unwrap(frames).expect("audit detached").into_inner(),
        txs: Rc::try_unwrap(txs).expect("observer detached").into_inner(),
        positions,
        metrics: w.metrics().clone(),
        registry: w.registry_snapshot(),
        aborted,
        insider: None,
    })
}

/// The position-sampling pitch for a scenario: at most half a second,
/// never coarser than the mobility tick.
pub fn sample_slice(cfg: &ScenarioConfig) -> f64 {
    cfg.mobility_tick_s.min(0.5)
}

/// How far sampled geometry may legitimately disagree with the exact
/// positions the simulator used: nodes move up to `speed` m/s between a
/// sample and the event it is matched against (one slice each side, plus
/// one mobility tick of spatial-grid staleness for broadcast receiver
/// resolution), plus a small absolute pad for group-mobility wander
/// within a tick.
pub fn position_tolerance_m(cfg: &ScenarioConfig) -> f64 {
    3.0 * cfg.speed * (sample_slice(cfg) + cfg.mobility_tick_s) + 8.0
}

/// Runs one fuzz case fully instrumented under the given protocol.
pub fn run_case(
    protocol: ProtocolChoice,
    cfg: &ScenarioConfig,
    seed: u64,
) -> Result<CaseRun, RunFailure> {
    match protocol {
        ProtocolChoice::Alert(a) => drive_checked(cfg, seed, move |_, _| Alert::new(a)),
        ProtocolChoice::Gpsr => drive_checked(cfg, seed, |_, _| Gpsr::default()),
        ProtocolChoice::Alarm => drive_checked(cfg, seed, |_, _| Alarm::default()),
        ProtocolChoice::Ao2p => drive_checked(cfg, seed, |_, _| Ao2p::default()),
        ProtocolChoice::Zap { growth } => {
            drive_checked(cfg, seed, move |_, _| Zap::with_growth(growth))
        }
        ProtocolChoice::Anodr => drive_checked(cfg, seed, |_, _| Anodr::default()),
        ProtocolChoice::Prism => drive_checked(cfg, seed, |_, _| Prism::default()),
        ProtocolChoice::Mask => drive_checked(cfg, seed, |_, _| Mask::default()),
        ProtocolChoice::Mapcp => drive_checked(cfg, seed, |_, _| Mapcp::default()),
        ProtocolChoice::LeakyNodeId => drive_checked(cfg, seed, |id, _| LeakyGeo::new(id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg
    }

    #[test]
    fn run_case_collects_all_observation_channels() {
        let run = run_case(ProtocolChoice::Gpsr, &small(), 1).unwrap();
        assert!(!run.events.is_empty());
        assert!(!run.frames.is_empty());
        assert!(!run.positions.is_empty());
        assert!(run.aborted.is_none());
        // The observer and the trace agree on the number of transmissions.
        let tx_events = run
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Tx { .. }))
            .count();
        assert_eq!(run.txs.len(), tx_events);
        // Honest protocols leak nothing.
        assert!(run.frames.iter().all(|f| f.leaked.is_empty()));
    }

    #[test]
    fn instrumentation_does_not_perturb_the_run() {
        // Same (scenario, seed) with and without the checking harness
        // must produce identical ground-truth metrics: the audit hook
        // and observers draw no randomness.
        let cfg = small();
        let run = run_case(ProtocolChoice::Gpsr, &cfg, 7).unwrap();
        let plain = alert_bench::try_run_once(ProtocolChoice::Gpsr, &cfg, 7).unwrap();
        assert_eq!(run.metrics.delivery_rate(), plain.delivery_rate());
        assert_eq!(run.metrics.hops_per_packet(), plain.hops_per_packet());
    }

    #[test]
    fn log_mode_insiders_collect_evidence_without_perturbing_the_run() {
        use alert_sim::{InsiderConfig, InsiderMode};
        let mut cfg = small();
        cfg.insiders = InsiderConfig {
            fraction: 0.25,
            mode: InsiderMode::Log,
        };
        let run = run_case(ProtocolChoice::Gpsr, &cfg, 7).unwrap();
        let ins = run.insider.as_ref().expect("active plan collects evidence");
        assert!(!ins.compromised.is_empty());
        // Log-mode insiders forward faithfully: the run is event-for-event
        // the run without them.
        let mut honest = cfg.clone();
        honest.insiders = InsiderConfig::default();
        let base = run_case(ProtocolChoice::Gpsr, &honest, 7).unwrap();
        assert!(base.insider.is_none());
        assert_eq!(run.metrics.delivery_rate(), base.metrics.delivery_rate());
        assert_eq!(run.events.len(), base.events.len());
    }

    #[test]
    fn leaky_plant_is_visible_in_frame_records() {
        let run = run_case(ProtocolChoice::LeakyNodeId, &small(), 1).unwrap();
        assert!(
            run.frames.iter().any(|f| !f.leaked.is_empty()),
            "planted protocol produced no leaked frames"
        );
    }
}

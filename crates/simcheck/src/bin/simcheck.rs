//! `simcheck` — deterministic scenario fuzzing with invariant oracles
//! and failing-case shrinking for the whole simulator stack.
//!
//! ```text
//! simcheck --cases 200 --seed 0
//! simcheck --cases 200 --seed 0 --artifact-dir out/simcheck
//! simcheck --list-invariants
//! ```
//!
//! Enumerates `--cases` fuzzed `(protocol, scenario, seed)` cases from
//! `--seed`, runs each fully instrumented, and checks every invariant
//! oracle (see `--list-invariants`). A violated case is shrunk along its
//! config axes and reported with a one-line `simrun` replay command;
//! with `--artifact-dir` the exact scenario JSON and replay line are
//! also written as files (the CI artifact).
//!
//! The report on stdout is a pure function of
//! `(--cases, --seed, --plant)`: same flags, byte-identical bytes.
//! `--max-wall-s` opts into a wall-clock budget for bounded CI slots
//! (an early stop is reported in the summary). The hidden
//! `--plant leak` interleaves a deliberately NodeId-leaking protocol
//! every fourth case to prove the harness end to end.
//!
//! Exit codes: `0` all cases clean, `1` invariant violation (or harness
//! failure), `2` usage error.

use alert_simcheck::{Plant, SuiteOptions, INVARIANTS};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SuiteOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => opts.cases = parse(it.next(), "--cases"),
            "--seed" => opts.seed = parse(it.next(), "--seed"),
            "--shrink-runs" => opts.shrink_runs = parse(it.next(), "--shrink-runs"),
            "--max-wall-s" => {
                opts.max_wall = Some(Duration::from_secs_f64(parse(it.next(), "--max-wall-s")))
            }
            "--artifact-dir" => {
                opts.artifact_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--artifact-dir needs a path"))
                        .into(),
                )
            }
            // Hidden: planted-defect mode, used by the harness's own
            // self-test and docs/TESTING.md to demonstrate a catch.
            "--plant" => {
                opts.plant = match it.next().map(String::as_str) {
                    Some("leak") => Plant::Leak,
                    Some("none") => Plant::None,
                    _ => die("--plant needs one of: none, leak"),
                }
            }
            "--list-invariants" => {
                for (name, what) in INVARIANTS {
                    println!("{name}: {what}");
                }
                return;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.cases == 0 {
        die("--cases must be at least 1");
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match alert_simcheck::run_suite(&opts, &mut out) {
        Err(e) => fail(&format!("report I/O failed: {e}")),
        Ok(summary) if summary.violated > 0 || summary.harness_errors > 0 => {
            std::process::exit(1)
        }
        Ok(_) => {}
    }
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a numeric value")))
}

fn usage() {
    eprintln!("usage: simcheck [--cases N] [--seed N] [--shrink-runs N]");
    eprintln!("                [--max-wall-s SECS] [--artifact-dir DIR]");
    eprintln!("                [--list-invariants]");
    eprintln!();
    eprintln!("Fuzzes N deterministic scenarios across every protocol, checks");
    eprintln!("the invariant oracles, shrinks failures, and prints a simrun");
    eprintln!("replay command per finding. Exit 0 clean, 1 violation, 2 usage.");
}

/// Usage error: complain and exit 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (report I/O): complain and exit 1.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! `simcheck` — deterministic scenario fuzzing with invariant oracles
//! and failing-case shrinking for the whole simulator stack.
//!
//! ```text
//! simcheck --cases 200 --seed 0
//! simcheck --cases 2000 --seed 0 --jobs 4
//! simcheck --cases 200 --seed 0 --artifact-dir out/simcheck
//! simcheck --list-invariants
//! ```
//!
//! Enumerates `--cases` fuzzed `(protocol, scenario, seed)` cases from
//! `--seed`, runs each fully instrumented, and checks every invariant
//! oracle (see `--list-invariants`). A violated case is shrunk along its
//! config axes and reported with a one-line `simrun` replay command;
//! with `--artifact-dir` the exact scenario JSON and replay line are
//! also written as files (the CI artifact).
//!
//! The report on stdout is a pure function of
//! `(--cases, --seed, --plant)`: same flags, byte-identical bytes —
//! including under `--jobs N`, which fans cases across a leased worker
//! pool while a single committer assembles the report in case order.
//! `--max-wall-s` opts into a wall-clock budget for bounded CI slots
//! (an early stop is reported in the summary). The hidden
//! `--plant leak` interleaves a deliberately NodeId-leaking protocol
//! every fourth case to prove the harness end to end.
//!
//! `--bench-json PATH` appends one JSON line of throughput data
//! (cases, jobs, wall seconds, cases/sec) after the run — the scaling
//! datum CI and DESIGN.md cite.
//!
//! Exit codes: `0` all cases clean, `1` invariant violation (or harness
//! failure), `2` usage error (including a live lock on the artifact
//! directory).

use alert_bench::{DirLock, LockError};
use alert_simcheck::{Plant, SuiteOptions, INVARIANTS};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SuiteOptions::default();
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => opts.cases = parse(it.next(), "--cases"),
            "--seed" => opts.seed = parse(it.next(), "--seed"),
            "--jobs" => opts.jobs = parse(it.next(), "--jobs"),
            "--shrink-runs" => opts.shrink_runs = parse(it.next(), "--shrink-runs"),
            "--max-wall-s" => {
                opts.max_wall = Some(Duration::from_secs_f64(parse(it.next(), "--max-wall-s")))
            }
            "--artifact-dir" => {
                opts.artifact_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--artifact-dir needs a path"))
                        .into(),
                )
            }
            "--bench-json" => {
                bench_json = Some(
                    it.next()
                        .unwrap_or_else(|| die("--bench-json needs a path"))
                        .into(),
                )
            }
            // Hidden: planted-defect mode, used by the harness's own
            // self-test and docs/TESTING.md to demonstrate a catch.
            "--plant" => {
                opts.plant = match it.next().map(String::as_str) {
                    Some("leak") => Plant::Leak,
                    Some("insider") => Plant::Insider,
                    Some("none") => Plant::None,
                    _ => die("--plant needs one of: none, leak, insider"),
                }
            }
            "--list-invariants" => {
                for (name, what) in INVARIANTS {
                    println!("{name}: {what}");
                }
                return;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.cases == 0 {
        die("--cases must be at least 1");
    }
    if opts.jobs == 0 {
        die("--jobs must be at least 1");
    }

    // Failure artifacts are written under --artifact-dir; assert
    // single-writer ownership so two concurrent simchecks can't
    // interleave case files. Read-only runs take no lock.
    let _lock = match &opts.artifact_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail(&format!("cannot create {}: {e}", dir.display()));
            }
            match DirLock::acquire(dir) {
                Ok(lock) => Some(lock),
                Err(e @ LockError::Busy { .. }) => {
                    eprintln!(
                        "error: {e} ({}); wait for it to finish or remove the stale lock file",
                        dir.join(alert_bench::LOCK_FILE).display()
                    );
                    std::process::exit(2);
                }
                Err(e) => fail(&format!("cannot lock {}: {e}", dir.display())),
            }
        }
        None => None,
    };

    let start = std::time::Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let summary = match alert_simcheck::run_suite(&opts, &mut out) {
        Err(e) => fail(&format!("report I/O failed: {e}")),
        Ok(summary) => summary,
    };
    drop(out);

    if let Some(path) = &bench_json {
        let wall = start.elapsed().as_secs_f64();
        let line = format!(
            "{{\"schema\":\"alert-simcheck-bench/1\",\"cases\":{},\"seed\":{},\"jobs\":{},\"cases_run\":{},\"violations\":{},\"wall_s\":{:?},\"cases_per_sec\":{:?}}}\n",
            opts.cases,
            opts.seed,
            opts.jobs,
            summary.cases_run,
            summary.violated,
            wall,
            if wall > 0.0 {
                summary.cases_run as f64 / wall
            } else {
                0.0
            },
        );
        if let Err(e) = append(path, &line) {
            fail(&format!(
                "cannot append bench datum to {}: {e}",
                path.display()
            ));
        }
    }

    if summary.violated > 0 || summary.harness_errors > 0 {
        std::process::exit(1);
    }
}

fn append(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a numeric value")))
}

fn usage() {
    eprintln!("usage: simcheck [--cases N] [--seed N] [--jobs N] [--shrink-runs N]");
    eprintln!("                [--max-wall-s SECS] [--artifact-dir DIR]");
    eprintln!("                [--bench-json PATH] [--list-invariants]");
    eprintln!();
    eprintln!("Fuzzes N deterministic scenarios across every protocol, checks");
    eprintln!("the invariant oracles, shrinks failures, and prints a simrun");
    eprintln!("replay command per finding. --jobs fans cases across a leased");
    eprintln!("worker pool; the report bytes are identical at any jobs count.");
    eprintln!("Exit 0 clean, 1 violation, 2 usage.");
}

/// Usage error: complain and exit 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (report I/O): complain and exit 1.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! Property-based tests for the spatial grid: range queries must agree
//! with an O(n) brute-force scan for arbitrary point sets — including
//! points on the field boundary and (clamped) out-of-bounds points —
//! and must keep agreeing after incremental `update_position` moves.

use alert_geom::{Point, Rect, SpatialGrid};
use proptest::prelude::*;

const FIELD_W: f64 = 1000.0;
const FIELD_H: f64 = 1000.0;
const CELL: f64 = 250.0;

fn field() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(FIELD_W, FIELD_H))
}

/// Points over-covering the field: in-bounds, exactly on the boundary,
/// and well outside it (the grid clamps those into edge cells).
fn arb_point() -> impl Strategy<Value = Point> {
    prop_oneof![
        4 => (0.0..FIELD_W, 0.0..FIELD_H).prop_map(|(x, y)| Point::new(x, y)),
        1 => prop_oneof![
            Just(Point::new(0.0, 0.0)),
            Just(Point::new(FIELD_W, FIELD_H)),
            Just(Point::new(0.0, FIELD_H)),
            Just(Point::new(FIELD_W, 0.0)),
        ],
        1 => (-500.0..FIELD_W + 500.0, -500.0..FIELD_H + 500.0)
            .prop_map(|(x, y)| Point::new(x, y)),
    ]
}

/// Brute-force reference: every indexed item within `radius` of
/// `center`, by true (unclamped) distance, sorted by id.
fn brute_force(items: &[(usize, Point)], center: Point, radius: f64) -> Vec<(usize, Point)> {
    let mut hits: Vec<(usize, Point)> = items
        .iter()
        .copied()
        .filter(|(_, p)| p.distance_sq(center) <= radius * radius)
        .collect();
    hits.sort_by_key(|&(id, _)| id);
    hits
}

fn sorted_query(grid: &SpatialGrid, center: Point, radius: f64) -> Vec<(usize, Point)> {
    let mut hits = Vec::new();
    grid.for_each_in_range(center, radius, |id, p| hits.push((id, p)));
    hits.sort_by_key(|&(id, _)| id);
    hits
}

proptest! {
    /// A freshly built grid answers range queries exactly like the
    /// brute-force scan, for any mix of interior/boundary/outside points.
    #[test]
    fn range_query_matches_brute_force(
        points in prop::collection::vec(arb_point(), 0..120),
        center in arb_point(),
        radius in 0.0..600.0f64,
    ) {
        let items: Vec<(usize, Point)> = points.into_iter().enumerate().collect();
        let mut grid = SpatialGrid::new(field(), CELL);
        grid.rebuild(items.iter().copied());
        prop_assert_eq!(sorted_query(&grid, center, radius), brute_force(&items, center, radius));
    }

    /// After a round of incremental moves the incrementally maintained
    /// grid still matches brute force — and matches a grid rebuilt from
    /// scratch item-for-item in iteration order (the byte-identical
    /// trace guarantee rides on that).
    #[test]
    fn incremental_updates_preserve_query_results(
        points in prop::collection::vec(arb_point(), 1..100),
        moves in prop::collection::vec((0usize..100, arb_point()), 0..60),
        center in arb_point(),
        radius in 0.0..600.0f64,
    ) {
        let mut items: Vec<(usize, Point)> = points.into_iter().enumerate().collect();
        let mut grid = SpatialGrid::new(field(), CELL);
        grid.rebuild(items.iter().copied());

        for (target, pos) in moves {
            let id = target % items.len();
            items[id].1 = pos;
            grid.update_position(id, pos);
        }

        prop_assert_eq!(grid.len(), items.len());
        prop_assert_eq!(sorted_query(&grid, center, radius), brute_force(&items, center, radius));

        // Unsorted iteration order must equal a from-scratch rebuild's.
        let mut rebuilt = SpatialGrid::new(field(), CELL);
        rebuilt.rebuild(items.iter().copied());
        let mut a = Vec::new();
        let mut b = Vec::new();
        grid.for_each_in_range(center, radius, |id, p| a.push((id, p)));
        rebuilt.for_each_in_range(center, radius, |id, p| b.push((id, p)));
        prop_assert_eq!(a, b);
    }

    /// `nearest` agrees with the O(n) scan under the `(distance, id)`
    /// tie-break. Sparse point sets over a fine-celled grid make the
    /// ring search walk far past its first hit; the old cutoff (stop one
    /// ring after the first candidate) fails this property whenever the
    /// first hit lands near a diagonal while the true nearest hides two
    /// or more rings further out.
    #[test]
    fn nearest_matches_brute_force_on_sparse_grids(
        points in prop::collection::vec(
            (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)),
            1..8,
        ),
        target in (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)),
    ) {
        let items: Vec<(usize, Point)> = points.into_iter().enumerate().collect();
        let mut grid = SpatialGrid::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            10.0, // fine cells: nearest must often search many rings
        );
        grid.rebuild(items.iter().copied());

        let got = grid.nearest(target).map(|(id, _)| id);
        let want = items
            .iter()
            .min_by(|(ia, a), (ib, b)| {
                a.distance_sq(target)
                    .partial_cmp(&b.distance_sq(target))
                    .unwrap()
                    .then(ia.cmp(ib))
            })
            .map(|&(id, _)| id);
        prop_assert_eq!(got, want);
    }

    /// Remove un-indexes exactly the requested id and hands back the
    /// position the grid last saw for it.
    #[test]
    fn remove_is_exact(
        points in prop::collection::vec(arb_point(), 1..60),
        victim in 0usize..60,
    ) {
        let items: Vec<(usize, Point)> = points.into_iter().enumerate().collect();
        let victim = victim % items.len();
        let mut grid = SpatialGrid::new(field(), CELL);
        grid.rebuild(items.iter().copied());

        prop_assert_eq!(grid.remove(victim), Some(items[victim].1));
        prop_assert_eq!(grid.remove(victim), None);
        prop_assert_eq!(grid.len(), items.len() - 1);

        let survivors: Vec<(usize, Point)> = items
            .iter()
            .copied()
            .filter(|&(id, _)| id != victim)
            .collect();
        let hits = sorted_query(&grid, Point::new(FIELD_W / 2.0, FIELD_H / 2.0), 2000.0);
        prop_assert_eq!(hits, survivors);
    }
}

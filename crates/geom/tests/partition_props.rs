//! Property-based tests for the hierarchical zone partition invariants.

use alert_geom::{
    destination_zone, required_partitions, separate, zone_side_lengths, Axis, Point, Rect,
    SeparateOutcome,
};
use proptest::prelude::*;

const FIELD_W: f64 = 1000.0;
const FIELD_H: f64 = 1000.0;

fn field() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(FIELD_W, FIELD_H))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..FIELD_W, 0.0..FIELD_H).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![Just(Axis::Vertical), Just(Axis::Horizontal)]
}

proptest! {
    /// Z_D always contains the destination it was derived from.
    #[test]
    fn destination_zone_contains_destination(d in arb_point(), h in 0u32..12, axis in arb_axis()) {
        let zd = destination_zone(&field(), d, h, axis);
        prop_assert!(zd.contains(d));
    }

    /// The size of the destination zone is G / 2^H (Section 2.4).
    #[test]
    fn destination_zone_area_is_g_over_2_pow_h(d in arb_point(), h in 0u32..12, axis in arb_axis()) {
        let zd = destination_zone(&field(), d, h, axis);
        let expected = field().area() / 2f64.powi(h as i32);
        prop_assert!((zd.area() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// Z_D stays inside the field, and its side lengths match Eqs. (1)-(2).
    #[test]
    fn destination_zone_side_lengths(d in arb_point(), h in 0u32..12, axis in arb_axis()) {
        let zd = destination_zone(&field(), d, h, axis);
        prop_assert!(field().contains_rect(&zd));
        let (first, second) = zone_side_lengths(h, FIELD_W, FIELD_H);
        let (w, hgt) = match axis {
            Axis::Vertical => (first, second),
            Axis::Horizontal => (second, first),
        };
        prop_assert!((zd.width() - w).abs() < 1e-9, "width {} != {}", zd.width(), w);
        prop_assert!((zd.height() - hgt).abs() < 1e-9);
    }

    /// Two destinations in the same zone produce the identical zone; the
    /// partition is a (deterministic) function of position only.
    #[test]
    fn destination_zone_is_a_partition(d1 in arb_point(), d2 in arb_point(), h in 0u32..10, axis in arb_axis()) {
        let z1 = destination_zone(&field(), d1, h, axis);
        let z2 = destination_zone(&field(), d2, h, axis);
        if z1.contains(d2) && z2.contains(d1) {
            prop_assert_eq!(z1, z2);
        }
        // Zones of equal depth either coincide or do not overlap in area.
        // (Inclusive containment of a boundary point can make zones contain
        // each other's corners; centers disambiguate.)
        let disjoint_or_equal =
            z1 == z2 || !z1.intersects(&z2)
            || z1.contains(z2.center()) == z2.contains(z1.center());
        prop_assert!(disjoint_or_equal);
    }

    /// `separate` never puts the holder in the TD zone, always keeps the
    /// Z_D centre in the TD zone, and performs at least one split.
    #[test]
    fn separate_invariants(me in arb_point(), d in arb_point(), h in 1u32..10, axis in arb_axis()) {
        let zd = destination_zone(&field(), d, h, axis);
        match separate(&field(), me, &zd, axis, h) {
            SeparateOutcome::Separated(s) => {
                prop_assert!(!zd.contains(me));
                prop_assert!(s.splits >= 1 && s.splits <= h.max(1));
                prop_assert!(s.td_zone.contains(zd.center()));
                prop_assert!(s.my_zone.contains(me));
                prop_assert!(!s.td_zone.contains(me) || !s.my_zone.contains(zd.center()));
                // The two halves tile their parent: equal areas.
                prop_assert!((s.td_zone.area() - s.my_zone.area()).abs() < 1e-6);
            }
            SeparateOutcome::InDestinationZone => {
                // Termination claim: the holder really is in (or co-located
                // with) the destination zone at the working resolution.
                let my_zone = destination_zone(&field(), me, h, axis);
                prop_assert!(
                    zd.contains(me) || my_zone.intersects(&zd) || my_zone == zd,
                    "holder {me} reported in-zone but its zone {my_zone} is far from {zd}"
                );
            }
        }
    }

    /// The TD zone from a separation shrinks (weakly) as the pair gets
    /// closer in the hierarchy: it is never larger than half the field.
    #[test]
    fn separate_td_zone_bounded(me in arb_point(), d in arb_point(), h in 1u32..10, axis in arb_axis()) {
        let zd = destination_zone(&field(), d, h, axis);
        if let SeparateOutcome::Separated(s) = separate(&field(), me, &zd, axis, h) {
            prop_assert!(s.td_zone.area() <= field().area() / 2.0 + 1e-9);
        }
    }

    /// H = log2(rho G / k) is monotone decreasing in k.
    #[test]
    fn required_partitions_monotone_in_k(k1 in 1.0f64..64.0, k2 in 1.0f64..64.0) {
        let density = 200.0 / 1_000_000.0;
        let (h1, h2) = (
            required_partitions(density, 1_000_000.0, k1),
            required_partitions(density, 1_000_000.0, k2),
        );
        if k1 <= k2 {
            prop_assert!(h1 >= h2);
        } else {
            prop_assert!(h1 <= h2);
        }
    }
}

//! 2-D points and vectors on the simulated network field.
//!
//! The field is a Euclidean plane measured in metres, matching the paper's
//! 1,000 m x 1,000 m evaluation area. All coordinates are `f64`; the
//! simulator never needs sub-millimetre precision, but `f64` keeps the
//! mobility integration numerically stable over long runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or position vector) on the network field, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting coordinate in metres.
    pub x: f64,
    /// Northing coordinate in metres.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] in comparisons: it avoids the
    /// square root on the hot neighbor-selection path.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this position vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the unit vector pointing from `self` towards `to`.
    ///
    /// Returns the zero vector when the points coincide, so callers never
    /// divide by zero when a node sits exactly on its waypoint.
    #[inline]
    pub fn direction_to(&self, to: Point) -> Point {
        let d = *self - to;
        let len = d.norm();
        if len == 0.0 {
            Point::ORIGIN
        } else {
            Point::new((to.x - self.x) / len, (to.y - self.y) / len)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `to` at `t = 1`.
    #[inline]
    pub fn lerp(&self, to: Point, t: f64) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// Moves `dist` metres from `self` towards `to`, never overshooting.
    #[inline]
    pub fn advance_towards(&self, to: Point, dist: f64) -> Point {
        let total = self.distance(to);
        if total <= dist || total == 0.0 {
            to
        } else {
            self.lerp(to, dist / total)
        }
    }

    /// Angle of the vector from `self` to `to`, in radians in `(-pi, pi]`.
    #[inline]
    pub fn bearing_to(&self, to: Point) -> f64 {
        (to.y - self.y).atan2(to.x - self.x)
    }

    /// True when every coordinate is finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(12.5, -7.0);
        let b = Point::new(-3.0, 44.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn advance_towards_does_not_overshoot() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.advance_towards(b, 4.0), Point::new(4.0, 0.0));
        assert_eq!(a.advance_towards(b, 15.0), b);
    }

    #[test]
    fn advance_towards_handles_coincident_points() {
        let a = Point::new(5.0, 5.0);
        assert_eq!(a.advance_towards(a, 3.0), a);
    }

    #[test]
    fn direction_to_is_unit_length() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        let d = a.direction_to(b);
        assert!((d.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_to_self_is_zero() {
        let a = Point::new(1.0, 2.0);
        assert_eq!(a.direction_to(a), Point::ORIGIN);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(-1.0, -1.0);
        let b = Point::new(3.0, 7.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 3.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a + b, Point::new(4.0, -2.0));
        assert_eq!(a - b, Point::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -2.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn bearing_to_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((o.bearing_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        let quarter = std::f64::consts::FRAC_PI_2;
        assert!((o.bearing_to(Point::new(0.0, 1.0)) - quarter).abs() < 1e-12);
    }
}

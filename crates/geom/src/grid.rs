//! A uniform spatial hash grid for radio-range neighbor queries.
//!
//! The simulator asks, for every transmission, "which nodes are within
//! 250 m of the sender?". A linear scan over `N` nodes per transmission
//! makes the whole simulation `O(N^2)`; bucketing positions into cells of
//! the query radius reduces each query to the 3x3 cell neighborhood. This
//! is the standard cell-list technique from particle simulation.
//!
//! On top of the fine cells sits a coarse occupancy level: cells are
//! grouped into [`BLOCK`]`x`[`BLOCK`] blocks, each tracking how many
//! items its cells hold. Queries consult the block counters to hop over
//! empty regions a block at a time, which matters once the field is
//! scaled up for large node counts and most cells are empty.

use crate::point::Point;
use crate::rect::Rect;

/// Side length of a coarse block, in cells. A block's counter is the sum
/// of the item counts of its `BLOCK * BLOCK` cells.
const BLOCK: usize = 8;

/// A rebuildable spatial index over indexed points.
///
/// Items are identified by their `usize` id (the simulator's node id).
/// Between full rebuilds, [`SpatialGrid::update_position`] moves single
/// items incrementally, so a mobility step costs one cell transfer per
/// node that actually crossed a cell boundary instead of a full
/// clear+reinsert. Both paths keep the structure allocation-free in
/// steady state because cell vectors retain their capacity.
///
/// Each cell keeps its items sorted by id, which makes iteration order —
/// and therefore every downstream consumer of query results — a pure
/// function of the item set, not of insertion history. Incremental
/// updates and full rebuilds are thus observably identical, which the
/// simulator's byte-identical-trace guarantee depends on. The coarse
/// block level only skips cells that hold nothing, so it cannot change
/// which items a query visits or in which order.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(usize, Point)>>,
    /// Coarse level: item count per `BLOCK x BLOCK` block of cells.
    blocks: Vec<u32>,
    bcols: usize,
    /// id → index of the cell currently holding that id
    /// (`usize::MAX` = not indexed). Grows to the highest id seen.
    locate: Vec<usize>,
    len: usize,
}

/// Sentinel in `locate` for ids that are not currently indexed.
const ABSENT: usize = usize::MAX;

impl SpatialGrid {
    /// Creates a grid covering `bounds` with cells of side `cell_size`
    /// (use the radio range for O(1)-neighborhood range queries).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or `bounds` is
    /// degenerate.
    pub fn new(bounds: Rect, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive area"
        );
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let bcols = cols.div_ceil(BLOCK);
        let brows = rows.div_ceil(BLOCK);
        SpatialGrid {
            bounds,
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            blocks: vec![0; bcols * brows],
            bcols,
            locate: Vec::new(),
            len: 0,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered area.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        // Clamp so positions on (or marginally past) the boundary index the
        // edge cells instead of panicking.
        let cx =
            (((p.x - self.bounds.min.x) / self.cell) as isize).clamp(0, self.cols as isize - 1);
        let cy =
            (((p.y - self.bounds.min.y) / self.cell) as isize).clamp(0, self.rows as isize - 1);
        (cx as usize, cy as usize)
    }

    /// The coarse block holding flat cell index `cell`.
    fn block_of(&self, cell: usize) -> usize {
        let cy = cell / self.cols;
        let cx = cell % self.cols;
        (cy / BLOCK) * self.bcols + cx / BLOCK
    }

    /// Removes every item, keeping cell capacity.
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            c.clear();
        }
        self.blocks.fill(0);
        self.locate.fill(ABSENT);
        self.len = 0;
    }

    /// Indexes item `id` at `pos`. The id must not already be indexed
    /// (use [`SpatialGrid::update_position`] to move an existing item).
    pub fn insert(&mut self, id: usize, pos: Point) {
        debug_assert!(
            self.locate.get(id).copied().unwrap_or(ABSENT) == ABSENT,
            "id {id} inserted twice"
        );
        let (cx, cy) = self.cell_of(pos);
        let cell = cy * self.cols + cx;
        let block = self.block_of(cell);
        Self::place(&mut self.cells[cell], id, pos);
        self.blocks[block] += 1;
        if self.locate.len() <= id {
            self.locate.resize(id + 1, ABSENT);
        }
        self.locate[id] = cell;
        self.len += 1;
    }

    /// Inserts `(id, pos)` into a cell vector, keeping it sorted by id.
    fn place(cell: &mut Vec<(usize, Point)>, id: usize, pos: Point) {
        let at = cell.partition_point(|&(other, _)| other < id);
        cell.insert(at, (id, pos));
    }

    /// Removes item `id`; returns its last indexed position, or `None` if
    /// the id was not indexed.
    pub fn remove(&mut self, id: usize) -> Option<Point> {
        let cell = *self.locate.get(id)?;
        if cell == ABSENT {
            return None;
        }
        let block = self.block_of(cell);
        let v = &mut self.cells[cell];
        let at = v.partition_point(|&(other, _)| other < id);
        debug_assert!(at < v.len() && v[at].0 == id, "locate out of sync");
        let (_, pos) = v.remove(at);
        self.blocks[block] -= 1;
        self.locate[id] = ABSENT;
        self.len -= 1;
        Some(pos)
    }

    /// Moves item `id` to `pos` incrementally: a same-cell move overwrites
    /// the stored position in place, a cell crossing transfers the item
    /// between the two cells. Indexes the id if it was absent. Equivalent
    /// to (but much cheaper than) a full [`SpatialGrid::rebuild`] with the
    /// updated position.
    pub fn update_position(&mut self, id: usize, pos: Point) {
        let (cx, cy) = self.cell_of(pos);
        let new_cell = cy * self.cols + cx;
        let old_cell = self.locate.get(id).copied().unwrap_or(ABSENT);
        if old_cell == new_cell {
            let v = &mut self.cells[old_cell];
            let at = v.partition_point(|&(other, _)| other < id);
            debug_assert!(at < v.len() && v[at].0 == id, "locate out of sync");
            v[at].1 = pos;
            return;
        }
        if old_cell != ABSENT {
            let old_block = self.block_of(old_cell);
            let v = &mut self.cells[old_cell];
            let at = v.partition_point(|&(other, _)| other < id);
            debug_assert!(at < v.len() && v[at].0 == id, "locate out of sync");
            v.remove(at);
            self.blocks[old_block] -= 1;
            self.len -= 1;
        }
        let new_block = self.block_of(new_cell);
        Self::place(&mut self.cells[new_cell], id, pos);
        self.blocks[new_block] += 1;
        if self.locate.len() <= id {
            self.locate.resize(id + 1, ABSENT);
        }
        self.locate[id] = new_cell;
        self.len += 1;
    }

    /// Rebuilds the grid from an iterator of `(id, position)` pairs.
    pub fn rebuild<I: IntoIterator<Item = (usize, Point)>>(&mut self, items: I) {
        self.clear();
        for (id, p) in items {
            self.insert(id, p);
        }
    }

    /// Visits the cells of row `cy` with `cx` in `[x0, x1]`, hopping over
    /// empty coarse blocks, in increasing-`cx` order. The hop only skips
    /// cells that hold nothing, so the visit order of items is untouched.
    fn scan_row<F: FnMut(&[(usize, Point)])>(&self, cy: usize, x0: usize, x1: usize, f: &mut F) {
        let brow = (cy / BLOCK) * self.bcols;
        let mut cx = x0;
        while cx <= x1 {
            if self.blocks[brow + cx / BLOCK] == 0 {
                // Nothing anywhere in this block: jump past it.
                cx = (cx / BLOCK + 1) * BLOCK;
                continue;
            }
            f(&self.cells[cy * self.cols + cx]);
            cx += 1;
        }
    }

    /// Calls `f(id, position)` for every item within `radius` of `center`
    /// (inclusive), including an item exactly at `center`.
    pub fn for_each_in_range<F: FnMut(usize, Point)>(&self, center: Point, radius: f64, mut f: F) {
        let r2 = radius * radius;
        let span = (radius / self.cell).ceil() as isize;
        let (ccx, ccy) = self.cell_of(center);
        let (ccx, ccy) = (ccx as isize, ccy as isize);
        let x0 = (ccx - span).max(0) as usize;
        let x1 = ((ccx + span).min(self.cols as isize - 1)) as usize;
        for cy in (ccy - span).max(0)..=(ccy + span).min(self.rows as isize - 1) {
            self.scan_row(cy as usize, x0, x1, &mut |cell| {
                for &(id, p) in cell {
                    if p.distance_sq(center) <= r2 {
                        f(id, p);
                    }
                }
            });
        }
    }

    /// Collects the ids of all items within `radius` of `center`.
    pub fn query_range(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_range(center, radius, |id, _| out.push(id));
        out
    }

    /// Collects the ids of all items inside `rect` (boundaries inclusive).
    pub fn query_rect(&self, rect: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        let (minx, miny) = self.cell_of(rect.min);
        let (maxx, maxy) = self.cell_of(rect.max);
        for cy in miny..=maxy {
            self.scan_row(cy, minx, maxx, &mut |cell| {
                for &(id, p) in cell {
                    if rect.contains(p) {
                        out.push(id);
                    }
                }
            });
        }
        out
    }

    /// Returns the id and position of the indexed item closest to `target`,
    /// or `None` when the grid is empty. Ties break towards the lower id so
    /// results are deterministic across runs.
    pub fn nearest(&self, target: Point) -> Option<(usize, Point)> {
        if self.len == 0 {
            return None;
        }
        // Expanding ring search over cells at Chebyshev distance `ring`
        // from the target's cell. A cell on ring `r` can hold a point as
        // close as `(r - 1) * cell` of the target (which may sit on its
        // own cell's edge), so after finishing ring `r` every unexplored
        // cell is at least `r * cell` away: the search may only stop once
        // `ring * cell > sqrt(best_d2)`. Stopping any earlier — say one
        // ring after the first hit — can miss a closer point sitting two
        // rings further out when the first hit was near a diagonal.
        let (tcx, tcy) = self.cell_of(target);
        let (tcx, tcy) = (tcx as isize, tcy as isize);
        let max_ring = self.cols.max(self.rows) as isize;
        let mut best: Option<(usize, Point, f64)> = None;
        for ring in 0..=max_ring {
            self.scan_ring(target, tcx, tcy, ring, &mut best);
            if let Some((_, _, bd)) = best {
                if ring as f64 * self.cell > bd.sqrt() {
                    break;
                }
            }
        }
        best.map(|(id, p, _)| (id, p))
    }

    /// Scans the perimeter cells of the given ring, folding every item
    /// into `best` by `(distance, id)`.
    fn scan_ring(
        &self,
        target: Point,
        tcx: isize,
        tcy: isize,
        ring: isize,
        best: &mut Option<(usize, Point, f64)>,
    ) {
        let mut fold = |cell: &[(usize, Point)]| {
            for &(id, p) in cell {
                let d = p.distance_sq(target);
                let better = match *best {
                    None => true,
                    Some((bid, _, bd)) => d < bd || (d == bd && id < bid),
                };
                if better {
                    *best = Some((id, p, d));
                }
            }
        };
        // Top and bottom rows of the ring (full horizontal extent).
        let x0 = (tcx - ring).max(0) as usize;
        let x1 = ((tcx + ring).min(self.cols as isize - 1)) as usize;
        let rows_in_grid = tcx + ring >= 0 && tcx - ring < self.cols as isize;
        for cy in [tcy - ring, tcy + ring] {
            if rows_in_grid && (0..self.rows as isize).contains(&cy) {
                self.scan_row(cy as usize, x0, x1, &mut fold);
            }
            if ring == 0 {
                break; // the two rows coincide
            }
        }
        // Left and right columns, excluding the corners already visited.
        for cx in [tcx - ring, tcx + ring] {
            if ring == 0 || !(0..self.cols as isize).contains(&cx) {
                continue;
            }
            let y1 = (tcy + ring - 1).min(self.rows as isize - 1);
            let mut cy = (tcy - ring + 1).max(0);
            while cy <= y1 {
                // Hop over vertically empty block spans.
                let bidx = (cy as usize / BLOCK) * self.bcols + cx as usize / BLOCK;
                if self.blocks[bidx] == 0 {
                    cy = (cy / BLOCK as isize + 1) * BLOCK as isize;
                    continue;
                }
                fold(&self.cells[cy as usize * self.cols + cx as usize]);
                cy += 1;
            }
        }
    }

    /// The sum of the coarse per-block counters; equals
    /// [`SpatialGrid::len`] whenever the two levels are consistent
    /// (exercised by the grid's tests).
    #[doc(hidden)]
    pub fn coarse_len(&self) -> usize {
        self.blocks.iter().map(|&c| c as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_with(points: &[(usize, Point)]) -> SpatialGrid {
        let mut g = SpatialGrid::new(Rect::with_size(1000.0, 1000.0), 250.0);
        g.rebuild(points.iter().copied());
        g
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<(usize, Point)> = (0..500)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                )
            })
            .collect();
        let g = grid_with(&pts);
        for _ in 0..50 {
            let c = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let r = rng.gen_range(10.0..400.0);
            let mut got = g.query_range(c, r);
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .filter(|(_, p)| p.distance(c) <= r)
                .map(|(i, _)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn rect_query_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(43);
        let pts: Vec<(usize, Point)> = (0..300)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                )
            })
            .collect();
        let g = grid_with(&pts);
        let zone = Rect::new(Point::new(125.0, 250.0), Point::new(375.0, 500.0));
        let mut got = g.query_rect(&zone);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(_, p)| zone.contains(*p))
            .map(|(i, _)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(44);
        let pts: Vec<(usize, Point)> = (0..200)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                )
            })
            .collect();
        let g = grid_with(&pts);
        for _ in 0..100 {
            let t = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let got = g.nearest(t).unwrap();
            let want = pts
                .iter()
                .min_by(|(ia, a), (ib, b)| {
                    a.distance_sq(t)
                        .partial_cmp(&b.distance_sq(t))
                        .unwrap()
                        .then(ia.cmp(ib))
                })
                .unwrap();
            assert_eq!(got.0, want.0, "target {t}");
        }
    }

    /// Regression for the old ring cutoff, which stopped one ring after
    /// the first hit. With the target on its cell's top edge, a hit in
    /// the far corner of the ring-1 diagonal cell sits ~2.15 cell-widths
    /// away, while the true nearest waits on ring 3 — a ring the old
    /// bound never scanned.
    #[test]
    fn nearest_is_not_fooled_by_a_diagonal_first_hit() {
        let target = Point::new(0.5, 9.5); // top edge of cell (0,0)

        let mut g = SpatialGrid::new(Rect::with_size(100.0, 100.0), 10.0);
        g.insert(0, Point::new(19.5, 19.5)); // ring 1, cell (1,1), d ≈ 21.47
        g.insert(1, Point::new(0.5, 30.5)); // ring 3, cell (0,3), d = 21 — nearest
        assert_eq!(g.nearest(target).unwrap().0, 1);

        // Same trap one ring out: decoy on ring 2, winner on ring 4 —
        // beyond even a "first hit + 2" heuristic.
        let mut g = SpatialGrid::new(Rect::with_size(100.0, 100.0), 10.0);
        g.insert(0, Point::new(29.5, 29.5)); // ring 2, cell (2,2), d ≈ 35.23
        g.insert(1, Point::new(0.5, 40.5)); // ring 4, cell (0,4), d = 31
        assert_eq!(g.nearest(target).unwrap().0, 1);
    }

    #[test]
    fn nearest_on_empty_grid_is_none() {
        let g = SpatialGrid::new(Rect::with_size(100.0, 100.0), 10.0);
        assert!(g.nearest(Point::new(5.0, 5.0)).is_none());
    }

    #[test]
    fn positions_outside_bounds_are_clamped_not_lost() {
        let mut g = SpatialGrid::new(Rect::with_size(100.0, 100.0), 10.0);
        g.insert(7, Point::new(150.0, -20.0)); // strayed node
        assert_eq!(g.len(), 1);
        assert_eq!(g.nearest(Point::new(99.0, 1.0)).unwrap().0, 7);
    }

    #[test]
    fn incremental_updates_match_a_full_rebuild() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut pts: Vec<(usize, Point)> = (0..400)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                )
            })
            .collect();
        let mut incremental = grid_with(&pts);
        for _ in 0..5 {
            for (id, p) in &mut pts {
                // Mix of tiny same-cell jitters and long jumps.
                let step: f64 = if rng.gen_bool(0.8) { 5.0 } else { 400.0 };
                p.x = (p.x + rng.gen_range(-step..step)).clamp(0.0, 1000.0);
                p.y = (p.y + rng.gen_range(-step..step)).clamp(0.0, 1000.0);
                incremental.update_position(*id, *p);
            }
            let rebuilt = grid_with(&pts);
            // Not just the same sets — the same *iteration order*, which is
            // what downstream trace determinism observes.
            for _ in 0..10 {
                let c = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                let r = rng.gen_range(50.0..400.0);
                let mut a = Vec::new();
                let mut b = Vec::new();
                incremental.for_each_in_range(c, r, |id, p| a.push((id, p)));
                rebuilt.for_each_in_range(c, r, |id, p| b.push((id, p)));
                assert_eq!(a, b);
            }
            assert_eq!(incremental.coarse_len(), incremental.len());
        }
    }

    #[test]
    fn update_position_indexes_absent_ids() {
        let mut g = SpatialGrid::new(Rect::with_size(100.0, 100.0), 10.0);
        g.update_position(3, Point::new(5.0, 5.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.query_range(Point::new(5.0, 5.0), 1.0), vec![3]);
    }

    #[test]
    fn remove_unindexes_and_reports_the_position() {
        let mut g = grid_with(&[(0, Point::new(1.0, 1.0)), (5, Point::new(90.0, 90.0))]);
        assert_eq!(g.remove(5), Some(Point::new(90.0, 90.0)));
        assert_eq!(g.remove(5), None);
        assert_eq!(g.remove(99), None);
        assert_eq!(g.len(), 1);
        assert!(g.query_range(Point::new(90.0, 90.0), 5.0).is_empty());
    }

    #[test]
    fn clear_retains_nothing() {
        let mut g = grid_with(&[(0, Point::new(1.0, 1.0)), (1, Point::new(2.0, 2.0))]);
        assert_eq!(g.len(), 2);
        g.clear();
        assert!(g.is_empty());
        assert!(g.query_range(Point::new(1.0, 1.0), 50.0).is_empty());
        assert_eq!(g.coarse_len(), 0);
    }

    /// The coarse counters stay in lockstep with the fine cells across a
    /// sparse, large field — the regime the block level exists for.
    #[test]
    fn coarse_level_tracks_a_sparse_large_field() {
        let mut rng = StdRng::seed_from_u64(46);
        // 40x40 cells (5x5 blocks), only 25 items: most blocks empty.
        let side = 10_000.0;
        let mut g = SpatialGrid::new(Rect::with_size(side, side), 250.0);
        let mut pts: Vec<(usize, Point)> = (0..25)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                )
            })
            .collect();
        g.rebuild(pts.iter().copied());
        for round in 0..20 {
            for (id, p) in &mut pts {
                p.x = rng.gen_range(0.0..side);
                p.y = rng.gen_range(0.0..side);
                g.update_position(*id, *p);
            }
            assert_eq!(g.coarse_len(), g.len(), "round {round}");
            // Range queries that must hop across many empty blocks.
            let c = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let r = rng.gen_range(500.0..6000.0);
            let mut got = g.query_range(c, r);
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .filter(|(_, p)| p.distance(c) <= r)
                .map(|(i, _)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "round {round}");
            // Nearest across mostly empty space.
            let t = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let got = g.nearest(t).unwrap().0;
            let want = pts
                .iter()
                .min_by(|(ia, a), (ib, b)| {
                    a.distance_sq(t)
                        .partial_cmp(&b.distance_sq(t))
                        .unwrap()
                        .then(ia.cmp(ib))
                })
                .unwrap()
                .0;
            assert_eq!(got, want, "round {round}");
        }
    }
}

//! Axis-aligned rectangles ("zones" in the paper's terminology).
//!
//! ALERT identifies a zone by its *zone position*: the upper-left and
//! bottom-right coordinates (Section 2.4). We store the min and max corners
//! instead, which is equivalent and avoids carrying the y-axis orientation
//! through every computation.

use crate::point::Point;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle on the network field.
///
/// Invariant: `min.x <= max.x && min.y <= max.y`. Constructors normalize
/// their inputs so the invariant always holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from any two opposite corners.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle anchored at the origin with the given side lengths.
    #[inline]
    pub fn with_size(width: f64, height: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(width, height))
    }

    /// Side length along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Side length along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres (the paper's `G` for the whole field).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// True when `p` lies inside the rectangle (boundaries inclusive).
    ///
    /// Inclusive boundaries keep a node that sits exactly on a partition
    /// line in *some* zone rather than in none.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self` (boundaries inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// True when the two rectangles share any area (not merely an edge).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// Splits the rectangle into two equal halves with a vertical line
    /// (i.e., partitions the x extent).
    #[inline]
    pub fn split_vertical(&self) -> (Rect, Rect) {
        let mid = (self.min.x + self.max.x) * 0.5;
        (
            Rect::new(self.min, Point::new(mid, self.max.y)),
            Rect::new(Point::new(mid, self.min.y), self.max),
        )
    }

    /// Splits the rectangle into two equal halves with a horizontal line
    /// (i.e., partitions the y extent).
    #[inline]
    pub fn split_horizontal(&self) -> (Rect, Rect) {
        let mid = (self.min.y + self.max.y) * 0.5;
        (
            Rect::new(self.min, Point::new(self.max.x, mid)),
            Rect::new(Point::new(self.min.x, mid), self.max),
        )
    }

    /// Clamps a point into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Draws a point uniformly at random inside the rectangle.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        // `gen_range` panics on an empty range; degenerate (zero-extent)
        // rectangles still produce their single point.
        let x = if self.width() > 0.0 {
            rng.gen_range(self.min.x..self.max.x)
        } else {
            self.min.x
        };
        let y = if self.height() > 0.0 {
            rng.gen_range(self.min.y..self.max.y)
        } else {
            self.min.y
        };
        Point::new(x, y)
    }

    /// Distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.clamp(p).distance(p)
    }

    /// The four corners, counter-clockwise from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Distance from `p` to the farthest corner (the broadcast-coverage
    /// radius a transmitter at `p` needs to reach the whole rectangle).
    pub fn max_corner_distance(&self, p: Point) -> f64 {
        self.corners()
            .into_iter()
            .map(|c| p.distance(c))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_km() -> Rect {
        Rect::with_size(1000.0, 1000.0)
    }

    #[test]
    fn constructor_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, -1.0), Point::new(-2.0, 4.0));
        assert_eq!(r.min, Point::new(-2.0, -1.0));
        assert_eq!(r.max, Point::new(5.0, 4.0));
    }

    #[test]
    fn dimensions_and_area() {
        let r = unit_km();
        assert_eq!(r.width(), 1000.0);
        assert_eq!(r.height(), 1000.0);
        assert_eq!(r.area(), 1_000_000.0);
        assert_eq!(r.center(), Point::new(500.0, 500.0));
    }

    #[test]
    fn contains_boundary_points() {
        let r = unit_km();
        assert!(r.contains(Point::ORIGIN));
        assert!(r.contains(Point::new(1000.0, 1000.0)));
        assert!(r.contains(Point::new(500.0, 0.0)));
        assert!(!r.contains(Point::new(-0.001, 500.0)));
        assert!(!r.contains(Point::new(500.0, 1000.001)));
    }

    #[test]
    fn vertical_split_halves_width() {
        let (lo, hi) = unit_km().split_vertical();
        assert_eq!(lo.max.x, 500.0);
        assert_eq!(hi.min.x, 500.0);
        assert_eq!(lo.area() + hi.area(), 1_000_000.0);
        assert_eq!(lo.height(), 1000.0);
    }

    #[test]
    fn horizontal_split_halves_height() {
        let (lo, hi) = unit_km().split_horizontal();
        assert_eq!(lo.max.y, 500.0);
        assert_eq!(hi.min.y, 500.0);
        assert_eq!(lo.width(), 1000.0);
    }

    #[test]
    fn split_halves_tile_the_parent() {
        let r = unit_km();
        let (lo, hi) = r.split_vertical();
        assert!(r.contains_rect(&lo));
        assert!(r.contains_rect(&hi));
        assert!(!lo.intersects(&hi)); // halves share an edge, not area
    }

    #[test]
    fn random_points_stay_inside() {
        let r = Rect::new(Point::new(10.0, 20.0), Point::new(30.0, 25.0));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(r.contains(r.random_point(&mut rng)));
        }
    }

    #[test]
    fn random_point_in_degenerate_rect() {
        let p = Point::new(4.0, 9.0);
        let r = Rect::new(p, p);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(r.random_point(&mut rng), p);
    }

    #[test]
    fn distance_to_point_zero_inside() {
        let r = unit_km();
        assert_eq!(r.distance_to_point(Point::new(400.0, 400.0)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(-3.0, 0.0)), 3.0);
        assert!((r.distance_to_point(Point::new(1003.0, 1004.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn corners_are_ccw_and_contained() {
        let r = Rect::new(Point::new(1.0, 2.0), Point::new(5.0, 8.0));
        let c = r.corners();
        assert_eq!(c[0], Point::new(1.0, 2.0));
        assert_eq!(c[1], Point::new(5.0, 2.0));
        assert_eq!(c[2], Point::new(5.0, 8.0));
        assert_eq!(c[3], Point::new(1.0, 8.0));
        for p in c {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn max_corner_distance_from_center_is_half_diagonal() {
        let r = Rect::with_size(6.0, 8.0);
        let d = r.max_corner_distance(r.center());
        assert!((d - 5.0).abs() < 1e-12);
        // From a corner it is the full diagonal.
        assert!((r.max_corner_distance(Point::ORIGIN) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn intersects_requires_shared_area() {
        let a = Rect::with_size(10.0, 10.0);
        let b = Rect::new(Point::new(10.0, 0.0), Point::new(20.0, 10.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        assert!(!a.intersects(&b)); // edge-adjacent only
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
    }
}

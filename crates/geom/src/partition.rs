//! Hierarchical zone partitioning (paper Sections 2.3 and 2.4).
//!
//! ALERT consecutively splits the smallest zone in an alternating
//! horizontal / vertical manner. Two computations are built on top of it:
//!
//! * [`destination_zone`] — the source computes the position of `Z_D`, the
//!   `H`-th partitioned zone around the destination, by recursively
//!   descending from the whole field and keeping the half that contains the
//!   destination (Section 2.4).
//! * [`separate`] — each data holder (source or random forwarder) splits its
//!   current zone until it is separated from `Z_D`, then picks a temporary
//!   destination in the half where `Z_D` resides (Section 2.3).

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Direction of a partition line.
///
/// The paper encodes this as a single bit in the packet header (Fig. 4,
/// item 4), flipped by each random forwarder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// A vertical line: splits the x extent (the zone's width).
    Vertical,
    /// A horizontal line: splits the y extent (the zone's height).
    Horizontal,
}

impl Axis {
    /// The alternating-partition rule: each split flips the axis.
    #[inline]
    pub fn flip(self) -> Axis {
        match self {
            Axis::Vertical => Axis::Horizontal,
            Axis::Horizontal => Axis::Vertical,
        }
    }

    /// Packet-header encoding (Fig. 4): vertical = 0, horizontal = 1.
    #[inline]
    pub fn to_bit(self) -> u8 {
        match self {
            Axis::Vertical => 0,
            Axis::Horizontal => 1,
        }
    }

    /// Decodes the packet-header bit; any non-zero value is horizontal.
    #[inline]
    pub fn from_bit(bit: u8) -> Axis {
        if bit == 0 {
            Axis::Vertical
        } else {
            Axis::Horizontal
        }
    }

    /// Splits `zone` along this axis into its two equal halves.
    #[inline]
    pub fn split(self, zone: &Rect) -> (Rect, Rect) {
        match self {
            Axis::Vertical => zone.split_vertical(),
            Axis::Horizontal => zone.split_horizontal(),
        }
    }
}

/// Number of partitions `H` needed so the destination zone holds about `k`
/// nodes: `H = log2(rho * G / k)` (Section 2.4), clamped at zero and rounded
/// to the nearest integer.
///
/// `density` is nodes per square metre, `area` is the field area `G` in
/// square metres, and `k` is the destination anonymity parameter.
pub fn required_partitions(density: f64, area: f64, k: f64) -> u32 {
    assert!(
        density > 0.0 && area > 0.0 && k > 0.0,
        "parameters must be positive"
    );
    let h = (density * area / k).log2();
    if h <= 0.0 {
        0
    } else {
        h.round() as u32
    }
}

/// Side lengths of the `h`-th partitioned zone of a field with side lengths
/// `(l_first, l_second)`, where `l_first` is the side split by the *first*
/// partition (paper Eqs. (1)–(2)).
///
/// The first axis receives `ceil(h/2)` splits and the other `floor(h/2)`.
pub fn zone_side_lengths(h: u32, l_first: f64, l_second: f64) -> (f64, f64) {
    let first_splits = h.div_ceil(2);
    let second_splits = h / 2;
    (
        l_first / f64::from(1u32 << first_splits.min(52)),
        l_second / f64::from(1u32 << second_splits.min(52)),
    )
}

/// Computes the zone position of `Z_D`: the `h_total`-th hierarchical
/// partition of `field` containing `dest`, splitting along `first_axis`
/// first and alternating thereafter (Section 2.4).
///
/// # Panics
/// Panics when `dest` lies outside `field`; the location service never
/// reports positions outside the configured network area.
pub fn destination_zone(field: &Rect, dest: Point, h_total: u32, first_axis: Axis) -> Rect {
    assert!(
        field.contains(dest),
        "destination {dest} outside network field {field}"
    );
    let mut zone = *field;
    let mut axis = first_axis;
    for _ in 0..h_total {
        let (lo, hi) = axis.split(&zone);
        // Inclusive boundaries put a destination exactly on the split line
        // into the low half deterministically.
        zone = if lo.contains(dest) { lo } else { hi };
        axis = axis.flip();
    }
    zone
}

/// Result of a data holder separating itself from the destination zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Separation {
    /// The half containing `Z_D`; the temporary destination is drawn
    /// uniformly from this zone.
    pub td_zone: Rect,
    /// The half containing the data holder itself.
    pub my_zone: Rect,
    /// How many splits this holder performed (`>= 1`).
    pub splits: u32,
    /// The axis the *next* random forwarder should split first
    /// (the flip of the last axis used, per the alternating rule).
    pub next_axis: Axis,
}

/// Outcome of [`separate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeparateOutcome {
    /// The holder separated itself from `Z_D` after some splits.
    Separated(Separation),
    /// The holder already resides inside `Z_D`: time to broadcast to the
    /// `k` nodes of the destination zone (Section 2.3 termination rule).
    InDestinationZone,
}

/// Executes the per-hop hierarchical zone partition of Section 2.3.
///
/// Starting from `start_zone` (the whole field for the source; the zone a
/// random forwarder was routed into for later hops), the holder at `me`
/// alternately splits the zone starting along `axis` until it and `Z_D`
/// fall into different halves. Separation is decided by the *centre* of
/// `Z_D`, which keeps the algorithm well-defined even when the holder's
/// partition pattern is not aligned with the grid that produced `Z_D`
/// (the paper explicitly allows different partition patterns per packet,
/// Fig. 1).
///
/// `max_splits` bounds the loop (use the packet's remaining `H - h`
/// budget); if the bound is reached without separation the holder is, for
/// routing purposes, co-located with `Z_D` and should proceed to the
/// destination-zone broadcast, so `InDestinationZone` is returned.
pub fn separate(
    start_zone: &Rect,
    me: Point,
    zd: &Rect,
    axis: Axis,
    max_splits: u32,
) -> SeparateOutcome {
    if zd.contains(me) {
        return SeparateOutcome::InDestinationZone;
    }
    // A holder pushed outside its nominal zone by GPSR detours restarts
    // from a zone that actually contains both it and Z_D: splitting a zone
    // that excludes either endpoint cannot separate the pair.
    let target = zd.center();
    let mut zone = *start_zone;
    if !zone.contains(me) {
        zone = grow_to_contain(&zone, me);
    }
    if !zone.contains(target) {
        zone = grow_to_contain(&zone, target);
    }
    let mut axis = axis;
    for split_no in 1..=max_splits.max(1) {
        let (lo, hi) = axis.split(&zone);
        let me_low = lo.contains(me);
        let target_low = lo.contains(target);
        axis = axis.flip();
        match (me_low, target_low) {
            (true, true) => zone = lo,
            (false, false) => zone = hi,
            (me_in_low, _) => {
                let (my_zone, td_zone) = if me_in_low { (lo, hi) } else { (hi, lo) };
                return SeparateOutcome::Separated(Separation {
                    td_zone,
                    my_zone,
                    splits: split_no,
                    next_axis: axis,
                });
            }
        }
        // Once the working zone is no bigger than Z_D further splitting
        // cannot separate the pair meaningfully.
        if zone.area() <= zd.area() {
            break;
        }
    }
    SeparateOutcome::InDestinationZone
}

/// Smallest power-of-two enlargement of `zone` (about its own origin) that
/// contains `p`. Used to recover when GPSR carried a packet outside the
/// nominal working zone.
fn grow_to_contain(zone: &Rect, p: Point) -> Rect {
    let mut z = *zone;
    for _ in 0..64 {
        if z.contains(p) {
            return z;
        }
        let w = z.width().max(f64::EPSILON);
        let h = z.height().max(f64::EPSILON);
        // Double away from the point's side to approach it.
        let min = Point::new(
            if p.x < z.min.x { z.min.x - w } else { z.min.x },
            if p.y < z.min.y { z.min.y - h } else { z.min.y },
        );
        let max = Point::new(
            if p.x > z.max.x { z.max.x + w } else { z.max.x },
            if p.y > z.max.y { z.max.y + h } else { z.max.y },
        );
        z = Rect::new(min, max);
    }
    Rect::new(
        Point::new(z.min.x.min(p.x), z.min.y.min(p.y)),
        Point::new(z.max.x.max(p.x), z.max.y.max(p.y)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km_field() -> Rect {
        Rect::with_size(1000.0, 1000.0)
    }

    /// The worked example at the end of Section 2.4: a field of size G = 8
    /// with corners (0,0) and (4,2), H = 3, destination at (0.5, 0.8),
    /// vertical-first partitioning, yields Z_D = (0,0)..(1,1) with area 1.
    #[test]
    fn worked_example_section_2_4() {
        let field = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        let zd = destination_zone(&field, Point::new(0.5, 0.8), 3, Axis::Vertical);
        assert_eq!(zd, Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert_eq!(zd.area(), field.area() / 2f64.powi(3));
    }

    #[test]
    fn required_partitions_matches_formula() {
        // rho * G = 200 nodes, k = 6.25 -> H = log2(32) = 5.
        let density = 200.0 / 1_000_000.0;
        assert_eq!(required_partitions(density, 1_000_000.0, 6.25), 5);
        // k equal to the population -> no partitioning needed.
        assert_eq!(required_partitions(density, 1_000_000.0, 200.0), 0);
        // k larger than the population clamps at zero.
        assert_eq!(required_partitions(density, 1_000_000.0, 400.0), 0);
    }

    #[test]
    fn zone_side_lengths_match_eqs_1_and_2() {
        // Paper Eqs. (3)-(4): three partitions halve the first side twice
        // (ceil(3/2) = 2) and the second side once.
        let (first, second) = zone_side_lengths(3, 4.0, 2.0);
        assert_eq!(first, 1.0);
        assert_eq!(second, 1.0);
        let (a, b) = zone_side_lengths(5, 1000.0, 1000.0);
        assert_eq!(a, 125.0); // 1000 / 2^3
        assert_eq!(b, 250.0); // 1000 / 2^2
        assert_eq!(zone_side_lengths(0, 7.0, 9.0), (7.0, 9.0));
    }

    #[test]
    fn destination_zone_always_contains_destination() {
        let field = km_field();
        let dest = Point::new(733.0, 12.5);
        for h in 0..10 {
            for axis in [Axis::Vertical, Axis::Horizontal] {
                let zd = destination_zone(&field, dest, h, axis);
                assert!(zd.contains(dest), "h={h} axis={axis:?}");
                assert!((zd.area() - field.area() / 2f64.powi(h as i32)).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside network field")]
    fn destination_zone_rejects_outside_destination() {
        destination_zone(&km_field(), Point::new(2000.0, 0.0), 5, Axis::Vertical);
    }

    #[test]
    fn separate_splits_until_apart() {
        let field = km_field();
        let dest = Point::new(900.0, 900.0);
        let zd = destination_zone(&field, dest, 5, Axis::Vertical);
        let me = Point::new(100.0, 100.0);
        match separate(&field, me, &zd, Axis::Vertical, 5) {
            SeparateOutcome::Separated(s) => {
                assert_eq!(s.splits, 1, "far-apart pair separates on first split");
                assert!(s.td_zone.contains(zd.center()));
                assert!(s.my_zone.contains(me));
                assert!(!s.td_zone.contains(me));
                assert_eq!(s.next_axis, Axis::Horizontal);
            }
            other => panic!("expected separation, got {other:?}"),
        }
    }

    #[test]
    fn separate_reports_in_destination_zone() {
        let field = km_field();
        let dest = Point::new(900.0, 900.0);
        let zd = destination_zone(&field, dest, 5, Axis::Vertical);
        let me = zd.center();
        assert_eq!(
            separate(&field, me, &zd, Axis::Vertical, 5),
            SeparateOutcome::InDestinationZone
        );
    }

    #[test]
    fn separate_needs_more_splits_for_close_pairs() {
        let field = km_field();
        // Both in the north-east quadrant but in different 1/32 zones.
        let dest = Point::new(980.0, 980.0);
        let zd = destination_zone(&field, dest, 5, Axis::Vertical);
        let me = Point::new(550.0, 550.0);
        match separate(&field, me, &zd, Axis::Vertical, 5) {
            SeparateOutcome::Separated(s) => {
                assert!(
                    s.splits >= 2,
                    "close pair needs several splits, got {}",
                    s.splits
                );
                assert!(s.td_zone.contains(zd.center()));
            }
            other => panic!("expected separation, got {other:?}"),
        }
    }

    #[test]
    fn separate_alternates_axes() {
        let field = km_field();
        // Same x-half as the destination, different y-half: a vertical-first
        // partition cannot separate them, the horizontal follow-up does.
        let dest = Point::new(900.0, 900.0);
        let zd = destination_zone(&field, dest, 5, Axis::Vertical);
        let me = Point::new(880.0, 100.0);
        match separate(&field, me, &zd, Axis::Vertical, 5) {
            SeparateOutcome::Separated(s) => {
                assert_eq!(s.splits, 2);
                assert_eq!(s.next_axis, Axis::Vertical);
            }
            other => panic!("expected separation, got {other:?}"),
        }
    }

    #[test]
    fn separate_recovers_when_holder_left_its_zone() {
        let field = km_field();
        let dest = Point::new(900.0, 900.0);
        let zd = destination_zone(&field, dest, 5, Axis::Vertical);
        // The nominal working zone excludes the holder entirely.
        let stale_zone = Rect::new(Point::new(0.0, 0.0), Point::new(250.0, 250.0));
        let me = Point::new(600.0, 100.0);
        match separate(&stale_zone, me, &zd, Axis::Horizontal, 5) {
            SeparateOutcome::Separated(s) => {
                assert!(s.my_zone.contains(me));
                assert!(s.td_zone.contains(zd.center()));
            }
            other => panic!("expected separation, got {other:?}"),
        }
    }

    #[test]
    fn axis_bit_roundtrip() {
        for axis in [Axis::Vertical, Axis::Horizontal] {
            assert_eq!(Axis::from_bit(axis.to_bit()), axis);
            assert_eq!(axis.flip().flip(), axis);
            assert_ne!(axis.flip(), axis);
        }
    }
}

//! # alert-geom
//!
//! Planar geometry for the ALERT reproduction: points, zones (axis-aligned
//! rectangles), the paper's hierarchical zone partition (Sections 2.3–2.4),
//! and a spatial hash grid used by the simulator for radio-range queries.
//!
//! Everything in this crate is deterministic and allocation-light; it forms
//! the innermost layer of the workspace (no dependency on the simulator or
//! the protocols).
//!
//! ## Quick example
//!
//! ```
//! use alert_geom::{Axis, Point, Rect, destination_zone, required_partitions};
//!
//! // 1 km x 1 km field with 200 nodes, k = 6.25 target zone population.
//! let field = Rect::with_size(1000.0, 1000.0);
//! let h = required_partitions(200.0 / field.area(), field.area(), 6.25);
//! assert_eq!(h, 5);
//! let zd = destination_zone(&field, Point::new(900.0, 880.0), h, Axis::Vertical);
//! assert!(zd.contains(Point::new(900.0, 880.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod partition;
mod point;
mod rect;

pub use grid::SpatialGrid;
pub use partition::{
    destination_zone, required_partitions, separate, zone_side_lengths, Axis, SeparateOutcome,
    Separation,
};
pub use point::Point;
pub use rect::Rect;

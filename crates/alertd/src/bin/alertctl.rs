//! `alertctl` — client for a running `alertd`.
//!
//! ```text
//! alertctl --dir state/ submit --protocol alert --nodes 100 --trace --wait
//! alertctl --dir state/ status <job>
//! alertctl --dir state/ result <job> [--artifact metrics.json]
//! alertctl --dir state/ query <job> filter --kind drop [--format csv]
//! alertctl --dir state/ query <job> follow --packet 3
//! alertctl --dir state/ query <job> windows --every 5 [--format csv]
//! alertctl --dir state/ cancel <job>
//! alertctl --dir state/ rollback <job>
//! alertctl --dir state/ health
//! alertctl --dir state/ drain
//! ```
//!
//! The endpoint is resolved from `<dir>/alertd.endpoint`, so clients
//! only ever name the daemon directory. Exit codes: 0 success, 1
//! failure, 2 usage error or a typed `busy` / `shutdown` rejection —
//! the retryable admission outcomes.

use alertd::{parse_fp_hex, ErrorKind, JobSpec, QueryRequest, Request, Response};
use std::io::{BufRead as _, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("alertctl: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: alertctl --dir DIR <verb>\n  \
         submit [--protocol P] [--nodes N] [--pairs N] [--duration S] [--seed N]\n         \
         [--trace] [--timeseries-every S] [--max-events N] [--max-sim-s S]\n         \
         [--max-instant-events N] [--force] [--wait]\n  \
         status   JOB\n  \
         result   JOB [--artifact NAME]\n  \
         query    JOB filter|follow|windows [--node N] [--after S] [--before S]\n           \
         [--kind K] [--reason R] [--packet N] [--every S] [--format F]\n  \
         cancel   JOB\n  \
         rollback JOB\n  \
         health\n  \
         drain"
    );
    ExitCode::from(2)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--dir" {
            dir = Some(PathBuf::from(
                it.next().ok_or("--dir needs a value")?,
            ));
        } else {
            rest.push(a);
            rest.extend(it);
            break;
        }
    }
    let Some(dir) = dir else {
        return Ok(usage());
    };
    let Some(verb) = rest.first().cloned() else {
        return Ok(usage());
    };
    let rest = &rest[1..];

    match verb.as_str() {
        "submit" => cmd_submit(&dir, rest),
        "status" => {
            let job = job_arg(rest)?;
            Ok(print_response(&exchange(&dir, &Request::Status { job }, None)?))
        }
        "result" => {
            let job = job_arg(rest)?;
            let artifact = flag_value(rest, "--artifact")?.unwrap_or_else(|| "metrics.json".into());
            let resp = exchange(&dir, &Request::Result { job, artifact }, None)?;
            Ok(print_payload(&resp))
        }
        "query" => cmd_query(&dir, rest),
        "cancel" => {
            let job = job_arg(rest)?;
            Ok(print_response(&exchange(&dir, &Request::Cancel { job }, None)?))
        }
        "rollback" => {
            let job = job_arg(rest)?;
            Ok(print_response(&exchange(&dir, &Request::Rollback { job }, None)?))
        }
        "health" => Ok(print_response(&exchange(&dir, &Request::Health, None)?)),
        // Drain blocks server-side until every job settles: no client
        // read timeout.
        "drain" => Ok(print_response(&exchange(
            &dir,
            &Request::Drain,
            Some(None),
        )?)),
        _ => Ok(usage()),
    }
}

fn job_arg(rest: &[String]) -> Result<u64, String> {
    let hex = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing JOB id (16 hex digits)")?;
    parse_fp_hex(hex).ok_or_else(|| format!("'{hex}' is not a 16-hex-digit job id"))
}

fn flag_value(rest: &[String], name: &str) -> Result<Option<String>, String> {
    for (i, a) in rest.iter().enumerate() {
        if a == name {
            return rest
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{name} needs a value"));
        }
    }
    Ok(None)
}

fn parsed_flag<T: std::str::FromStr>(rest: &[String], name: &str) -> Result<Option<T>, String> {
    match flag_value(rest, name)? {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: cannot parse '{v}'")),
        None => Ok(None),
    }
}

fn cmd_submit(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let mut spec = JobSpec::default();
    if let Some(p) = flag_value(rest, "--protocol")? {
        spec.protocol = p;
    }
    if let Some(n) = parsed_flag(rest, "--nodes")? {
        spec.nodes = n;
    }
    if let Some(n) = parsed_flag(rest, "--pairs")? {
        spec.pairs = n;
    }
    if let Some(d) = parsed_flag(rest, "--duration")? {
        spec.duration_s = d;
    }
    if let Some(s) = parsed_flag(rest, "--seed")? {
        spec.seed = s;
    }
    spec.trace = rest.iter().any(|a| a == "--trace");
    spec.every_s = parsed_flag(rest, "--timeseries-every")?;
    spec.max_events = parsed_flag(rest, "--max-events")?;
    spec.max_sim_s = parsed_flag(rest, "--max-sim-s")?;
    spec.max_instant = parsed_flag(rest, "--max-instant-events")?;
    let force = rest.iter().any(|a| a == "--force");
    let wait = rest.iter().any(|a| a == "--wait");

    let fp = spec.fingerprint();
    let resp = exchange(dir, &Request::Submit { spec, force }, None)?;
    if let Response::Err { .. } = resp {
        return Ok(print_response(&resp));
    }
    if !wait {
        return Ok(print_response(&resp));
    }
    // --wait: poll status until the job settles, then print the final
    // status line. Terminal failure states exit 1.
    loop {
        let resp = exchange(dir, &Request::Status { job: fp }, None)?;
        match resp.str_field("state") {
            Some("pending") | Some("running") => {
                std::thread::sleep(Duration::from_millis(200));
            }
            Some("done") => return Ok(print_response(&resp)),
            _ => {
                println!("{}", resp.to_jsonl());
                return Ok(ExitCode::from(1));
            }
        }
    }
}

fn cmd_query(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let job = job_arg(rest)?;
    let verb = rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .cloned()
        .ok_or("query needs a verb: filter|follow|windows")?;
    let query = QueryRequest {
        verb,
        node: parsed_flag(rest, "--node")?,
        after: parsed_flag(rest, "--after")?,
        before: parsed_flag(rest, "--before")?,
        kind: flag_value(rest, "--kind")?,
        reason: flag_value(rest, "--reason")?,
        packet: parsed_flag(rest, "--packet")?,
        every_s: parsed_flag(rest, "--every")?,
        format: flag_value(rest, "--format")?.unwrap_or_default(),
    };
    let resp = exchange(dir, &Request::Query { job, query }, None)?;
    Ok(print_payload(&resp))
}

/// Resolves `<dir>/alertd.endpoint`, sends one request, reads one
/// response. `timeout`: `None` = default 30 s; `Some(None)` = unbounded
/// (drain).
fn exchange(
    dir: &Path,
    req: &Request,
    timeout: Option<Option<Duration>>,
) -> Result<Response, String> {
    let endpoint_path = dir.join("alertd.endpoint");
    let text = std::fs::read_to_string(&endpoint_path).map_err(|e| {
        format!(
            "no daemon endpoint at {} ({e}) — is alertd serving this directory?",
            endpoint_path.display()
        )
    })?;
    let line = text.trim();
    let stream: Box<dyn ReadWrite> = if let Some(addr) = line.strip_prefix("tcp ") {
        Box::new(TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?)
    } else if let Some(path) = line.strip_prefix("unix ") {
        connect_unix(path)?
    } else {
        return Err(format!("unrecognized endpoint '{line}'"));
    };
    let timeout = timeout.unwrap_or(Some(Duration::from_secs(30)));
    stream.set_read_timeout(timeout)?;

    let mut writer = stream.try_clone_box()?;
    let mut out = req.to_jsonl();
    out.push('\n');
    writer
        .write_all(out.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("daemon closed the connection".to_owned());
    }
    Response::parse_line(&resp).ok_or_else(|| format!("bad response line: {resp}"))
}

/// Prints the raw response line; the exit code encodes the outcome.
fn print_response(resp: &Response) -> ExitCode {
    println!("{}", resp.to_jsonl());
    match resp {
        Response::Ok(_) => ExitCode::SUCCESS,
        Response::Err { kind, message } => {
            eprintln!("alertctl: {}: {message}", kind.as_str());
            exit_for(*kind)
        }
    }
}

/// Prints the `payload` field verbatim (artifact bytes, query output)
/// instead of the response envelope.
fn print_payload(resp: &Response) -> ExitCode {
    match resp {
        Response::Ok(_) => {
            print!("{}", resp.str_field("payload").unwrap_or_default());
            ExitCode::SUCCESS
        }
        Response::Err { kind, message } => {
            eprintln!("alertctl: {}: {message}", kind.as_str());
            exit_for(*kind)
        }
    }
}

fn exit_for(kind: ErrorKind) -> ExitCode {
    ExitCode::from(u8::try_from(kind.exit_code()).unwrap_or(1))
}

// ---------------------------------------------------------------------
// Minimal stream abstraction so TCP and Unix sockets share one path
// ---------------------------------------------------------------------

trait ReadWrite: Read + Send {
    fn set_read_timeout(&self, d: Option<Duration>) -> Result<(), String>;
    fn try_clone_box(&self) -> Result<Box<dyn Write + Send>, String>;
}

impl ReadWrite for TcpStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> Result<(), String> {
        TcpStream::set_read_timeout(self, d).map_err(|e| e.to_string())
    }
    fn try_clone_box(&self) -> Result<Box<dyn Write + Send>, String> {
        Ok(Box::new(self.try_clone().map_err(|e| e.to_string())?))
    }
}

#[cfg(unix)]
impl ReadWrite for std::os::unix::net::UnixStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> Result<(), String> {
        std::os::unix::net::UnixStream::set_read_timeout(self, d).map_err(|e| e.to_string())
    }
    fn try_clone_box(&self) -> Result<Box<dyn Write + Send>, String> {
        Ok(Box::new(self.try_clone().map_err(|e| e.to_string())?))
    }
}

#[cfg(unix)]
fn connect_unix(path: &str) -> Result<Box<dyn ReadWrite>, String> {
    Ok(Box::new(
        std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("connect {path}: {e}"))?,
    ))
}

#[cfg(not(unix))]
fn connect_unix(path: &str) -> Result<Box<dyn ReadWrite>, String> {
    Err(format!(
        "unix socket endpoint {path} unsupported on this platform"
    ))
}

//! `alertd` — the crash-only sim-as-a-service daemon.
//!
//! ```text
//! alertd serve --dir state/                   # blocks until drained
//! alertd serve --dir state/ --tcp 127.0.0.1:7007 --jobs 4
//! alertd serve --dir state/ --socket state/alertd.sock
//! alertd bench --out BENCH.json --levels 1,2,4
//! ```
//!
//! Exit codes follow the repo convention: 0 clean (drained), 1 runtime
//! failure, 2 usage error or directory busy (another live daemon).

use alertd::{serve, BindAddr, JobSpec, Request, Response, ServeError, ServerConfig};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("alertd: unknown command '{other}'");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         alertd serve --dir DIR [--tcp HOST:PORT | --socket PATH] [--jobs N]\n              \
         [--queue N] [--idle-timeout-s S] [--max-attempts N]\n              \
         [--cap-max-events N] [--cap-max-sim-s S] [--cap-max-instant-events N]\n  \
         alertd bench --out PATH [--levels 1,2,4] [--jobs-per-level N]\n              \
         [--nodes N] [--duration S] [--dir DIR]"
    );
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("alertd: {name} needs a value");
            }
            v
        };
        match flag.as_str() {
            "--dir" => dir = val("--dir").map(PathBuf::from),
            "--tcp" => match val("--tcp") {
                Some(v) => config.bind = BindAddr::Tcp(v),
                None => return ExitCode::from(2),
            },
            "--socket" => match val("--socket") {
                Some(v) => config.bind = BindAddr::Unix(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--jobs" => match val("--jobs").and_then(|v| v.parse().ok()) {
                Some(v) => config.jobs = v,
                None => return ExitCode::from(2),
            },
            "--queue" => match val("--queue").and_then(|v| v.parse().ok()) {
                Some(v) => config.queue_cap = v,
                None => return ExitCode::from(2),
            },
            "--idle-timeout-s" => match val("--idle-timeout-s").and_then(|v| v.parse::<f64>().ok())
            {
                Some(v) if v > 0.0 => config.idle_timeout = Duration::from_secs_f64(v),
                _ => return ExitCode::from(2),
            },
            "--max-attempts" => match val("--max-attempts").and_then(|v| v.parse().ok()) {
                Some(v) => config.max_attempts = v,
                None => return ExitCode::from(2),
            },
            "--cap-max-events" => match val("--cap-max-events").and_then(|v| v.parse().ok()) {
                Some(v) => config.cap.max_events = Some(v),
                None => return ExitCode::from(2),
            },
            "--cap-max-sim-s" => match val("--cap-max-sim-s").and_then(|v| v.parse().ok()) {
                Some(v) => config.cap.max_sim_seconds = Some(v),
                None => return ExitCode::from(2),
            },
            "--cap-max-instant-events" => {
                match val("--cap-max-instant-events").and_then(|v| v.parse().ok()) {
                    Some(v) => config.cap.max_events_per_instant = Some(v),
                    None => return ExitCode::from(2),
                }
            }
            other => {
                eprintln!("alertd: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("alertd: serve requires --dir");
        return ExitCode::from(2);
    };
    config.dir = dir;
    match serve(config) {
        Ok(_) => ExitCode::SUCCESS,
        Err(ServeError::Busy { pid }) => {
            match pid {
                Some(pid) => eprintln!("alertd: directory busy: live daemon pid {pid}"),
                None => eprintln!("alertd: directory busy: another live daemon owns it"),
            }
            ExitCode::from(2)
        }
        Err(ServeError::Io(e)) => {
            eprintln!("alertd: {e}");
            ExitCode::from(1)
        }
    }
}

// ---------------------------------------------------------------------
// bench: submission-to-result latency through the daemon path
// ---------------------------------------------------------------------

struct BenchPoint {
    jobs: usize,
    submitted: usize,
    latency_p50_s: f64,
    latency_p95_s: f64,
    jobs_per_s: f64,
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut levels = vec![1usize, 2, 4];
    let mut jobs_per_level = 8usize;
    let mut nodes = 30usize;
    let mut duration_s = 5.0f64;
    let mut base_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(v) = it.next() else {
            eprintln!("alertd: {flag} needs a value");
            return ExitCode::from(2);
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(v)),
            "--levels" => {
                match v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(l) if !l.is_empty() && l.iter().all(|&j| j > 0) => levels = l,
                    _ => {
                        eprintln!("alertd: --levels wants e.g. 1,2,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs-per-level" => match v.parse() {
                Ok(n) if n > 0 => jobs_per_level = n,
                _ => return ExitCode::from(2),
            },
            "--nodes" => match v.parse() {
                Ok(n) if n > 0 => nodes = n,
                _ => return ExitCode::from(2),
            },
            "--duration" => match v.parse() {
                Ok(d) if d > 0.0 => duration_s = d,
                _ => return ExitCode::from(2),
            },
            "--dir" => base_dir = Some(PathBuf::from(v)),
            other => {
                eprintln!("alertd: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("alertd: bench requires --out");
        return ExitCode::from(2);
    };
    let base_dir = base_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("alertd-bench-{}", std::process::id()))
    });

    let mut points = Vec::new();
    for &level in &levels {
        match bench_level(&base_dir, level, jobs_per_level, nodes, duration_s) {
            Ok(p) => {
                println!(
                    "[bench] jobs={level}: p50 {:.3}s p95 {:.3}s, {:.2} jobs/s",
                    p.latency_p50_s, p.latency_p95_s, p.jobs_per_s
                );
                points.push(p);
            }
            Err(e) => {
                eprintln!("alertd: bench level {level}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base_dir);

    let doc = render_bench_json(jobs_per_level, nodes, duration_s, &points);
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("alertd: writing {}: {e}", out.display());
        return ExitCode::from(1);
    }
    println!("[bench] wrote {}", out.display());
    ExitCode::SUCCESS
}

/// One daemon lifetime at a fixed worker count: submit the whole batch,
/// poll each job to `done`, drain. Latency is submission-ack to
/// observed-done per job.
fn bench_level(
    base_dir: &std::path::Path,
    level: usize,
    jobs: usize,
    nodes: usize,
    duration_s: f64,
) -> Result<BenchPoint, String> {
    let dir = base_dir.join(format!("level-{level}"));
    let config = ServerConfig {
        dir: dir.clone(),
        jobs: level,
        queue_cap: jobs + 8,
        ..ServerConfig::default()
    };
    let server = std::thread::spawn(move || serve(config));
    let endpoint = dir.join("alertd.endpoint");
    for _ in 0..400 {
        if endpoint.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let text = std::fs::read_to_string(&endpoint).map_err(|e| format!("no endpoint: {e}"))?;
    let addr = text
        .trim()
        .strip_prefix("tcp ")
        .ok_or("endpoint is not tcp")?
        .to_owned();
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut roundtrip = |req: &Request| -> Result<Response, String> {
        let mut line = req.to_jsonl();
        line.push('\n');
        writer.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut resp = String::new();
        reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        Response::parse_line(&resp).ok_or_else(|| format!("bad response: {resp}"))
    };

    let started = Instant::now();
    let mut submitted_at = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let spec = JobSpec {
            nodes,
            duration_s,
            seed: 1000 + i as u64,
            ..JobSpec::default()
        };
        let t0 = Instant::now();
        let resp = roundtrip(&Request::Submit {
            spec: spec.clone(),
            force: false,
        })?;
        if resp.str_field("state").is_none() {
            return Err(format!("submit refused: {resp:?}"));
        }
        submitted_at.push((spec.fingerprint(), t0));
    }

    let mut latencies = vec![None::<f64>; jobs];
    let deadline = Instant::now() + Duration::from_secs(600);
    while latencies.iter().any(Option::is_none) {
        if Instant::now() > deadline {
            return Err("bench jobs did not settle within 600s".to_owned());
        }
        for (i, (fp, t0)) in submitted_at.iter().enumerate() {
            if latencies[i].is_some() {
                continue;
            }
            let resp = roundtrip(&Request::Status { job: *fp })?;
            match resp.str_field("state") {
                Some("done") => latencies[i] = Some(t0.elapsed().as_secs_f64()),
                Some("failed") | Some("quarantined") | Some("cancelled") => {
                    return Err(format!("bench job {fp:016x} ended {resp:?}"));
                }
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let total_s = started.elapsed().as_secs_f64();
    roundtrip(&Request::Drain)?;
    server
        .join()
        .map_err(|_| "server thread panicked".to_owned())?
        .map_err(|e| e.to_string())?;

    let mut sorted: Vec<f64> = latencies.into_iter().flatten().collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(BenchPoint {
        jobs: level,
        submitted: jobs,
        latency_p50_s: percentile(&sorted, 0.50),
        latency_p95_s: percentile(&sorted, 0.95),
        jobs_per_s: jobs as f64 / total_s.max(1e-9),
    })
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn render_bench_json(jobs: usize, nodes: usize, duration_s: f64, points: &[BenchPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"schema\":\"alert-bench-perf/1\",\"kind\":\"alertd-daemon\",");
    let _ = write!(
        s,
        "\"jobs_per_level\":{jobs},\"nodes\":{nodes},\"duration_s\":{duration_s:?},\
         \"daemon_points\":["
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"jobs\":{},\"submitted\":{},\"latency_p50_s\":{:.6},\
             \"latency_p95_s\":{:.6},\"jobs_per_s\":{:.6}}}",
            p.jobs, p.submitted, p.latency_p50_s, p.latency_p95_s, p.jobs_per_s
        );
    }
    s.push_str("]}\n");
    s
}

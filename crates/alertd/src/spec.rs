//! Job specifications: what a client submits, how it is fingerprinted,
//! and how it executes into deterministic result artifacts.
//!
//! A [`JobSpec`] is the daemon's unit of work — one `(protocol,
//! scenario, seed)` simulation plus its observability requests. Its
//! [`fingerprint`](JobSpec::fingerprint) is the job's identity
//! everywhere: the journal, the wire protocol (as 16 hex digits), the
//! staging directory, and the versioned result directory. Two submits
//! of the same spec are the same job, which is what makes recovery
//! dedupe ("exactly-once-effective") possible at all.
//!
//! [`run_job`] is the single execution choke point: it drives
//! [`alert_bench::run_instrumented`] and reduces the run to a
//! [`Artifacts`] map of file name → contents. Artifacts are pure
//! functions of the spec — wall-clock numbers are deliberately excluded
//! from `metrics.json` — so a crashed-and-retried job reproduces its
//! bytes exactly, and the store can recognize a re-promotion of
//! identical content (see [`crate::store`]).

use alert_bench::{fingerprint_with, parse_flat_object, push_str_escaped, Val};
use alert_bench::{run_instrumented, ProtocolChoice, RunOptions};
use alert_core::AlertConfig;
use alert_sim::{JsonlSink, RunBudget, ScenarioConfig, SharedBuf};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Result artifacts of one job: file name → file contents, committed
/// together in one atomic directory promotion.
pub type Artifacts = BTreeMap<String, String>;

/// The protocol names a job may request, in `simrun` spelling.
pub const PROTOCOLS: [&str; 9] = [
    "alert", "gpsr", "alarm", "ao2p", "zap", "anodr", "prism", "mask", "mapcp",
];

/// One submitted simulation job. Optional limits use `0` as "unset" in
/// their on-disk/wire form — zero is never a valid budget, so the
/// encoding cannot alias a real limit.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Protocol name (`simrun` spelling, see [`PROTOCOLS`]).
    pub protocol: String,
    /// Node count of the scenario.
    pub nodes: usize,
    /// S–D pair count.
    pub pairs: usize,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Run seed.
    pub seed: u64,
    /// Deterministic event budget (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Deterministic simulated-time budget, seconds.
    pub max_sim_s: Option<f64>,
    /// Livelock watchdog: max events per simulated instant.
    pub max_instant: Option<u64>,
    /// Store the structured JSONL event trace as `trace.jsonl`.
    pub trace: bool,
    /// Sample the metrics registry every this many simulated seconds
    /// into `timeseries.jsonl` (`None` = no sampling).
    pub every_s: Option<f64>,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            protocol: "gpsr".to_owned(),
            nodes: 40,
            pairs: 2,
            duration_s: 10.0,
            seed: 42,
            max_events: None,
            max_sim_s: None,
            max_instant: None,
            trace: false,
            every_s: None,
        }
    }
}

impl JobSpec {
    /// The job's stable identity: FNV-1a over every spec field (via the
    /// journal fingerprint helper, so the manifest schema version is
    /// mixed in too). Everywhere the daemon names a job — journal, wire,
    /// staging, results — it is by this value.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_with(&[
            b"alertd-job/1",
            self.protocol.as_bytes(),
            &(self.nodes as u64).to_le_bytes(),
            &(self.pairs as u64).to_le_bytes(),
            &self.duration_s.to_bits().to_le_bytes(),
            &self.seed.to_le_bytes(),
            &self.max_events.unwrap_or(0).to_le_bytes(),
            &self.max_sim_s.unwrap_or(0.0).to_bits().to_le_bytes(),
            &self.max_instant.unwrap_or(0).to_le_bytes(),
            &[u8::from(self.trace)],
            &self.every_s.unwrap_or(0.0).to_bits().to_le_bytes(),
        ])
    }

    /// The fingerprint as the 16-hex-digit job id used on the wire and
    /// in directory names.
    pub fn fp_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Checks the spec before admission: known protocol, sane geometry,
    /// usable optional limits.
    pub fn validate(&self) -> Result<(), String> {
        if !PROTOCOLS.contains(&self.protocol.as_str()) {
            return Err(format!(
                "unknown protocol '{}' ({})",
                self.protocol,
                PROTOCOLS.join("|")
            ));
        }
        if self.nodes == 0 {
            return Err("nodes must be >= 1".to_owned());
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err("duration_s must be positive and finite".to_owned());
        }
        if let Some(e) = self.every_s {
            if !e.is_finite() || e <= 0.0 {
                return Err("every_s must be positive and finite".to_owned());
            }
        }
        self.budget().validate().map_err(|e| e.to_string())
    }

    /// The run budget the spec asked for (before the daemon cap is
    /// applied via [`RunBudget::tightened`]).
    pub fn budget(&self) -> RunBudget {
        RunBudget {
            max_events: self.max_events,
            max_sim_seconds: self.max_sim_s,
            max_wall_seconds: None,
            max_events_per_instant: self.max_instant,
        }
    }

    /// Appends the spec's fields (no braces, no leading comma) in the
    /// stable order shared by the journal `submit` record and the wire
    /// `submit` request.
    pub fn push_fields(&self, out: &mut String) {
        out.push_str("\"protocol\":");
        push_str_escaped(out, &self.protocol);
        let _ = write!(
            out,
            ",\"nodes\":{},\"pairs\":{},\"duration_s\":{:?},\"seed\":{},\
             \"max_events\":{},\"max_sim_s\":{:?},\"max_instant\":{},\
             \"trace\":{},\"every_s\":{:?}",
            self.nodes,
            self.pairs,
            self.duration_s,
            self.seed,
            self.max_events.unwrap_or(0),
            self.max_sim_s.unwrap_or(0.0),
            self.max_instant.unwrap_or(0),
            u8::from(self.trace),
            self.every_s.unwrap_or(0.0),
        );
    }

    /// Rebuilds a spec from parsed flat-object fields, ignoring keys it
    /// does not own (the surrounding record's discriminator, `fp`,
    /// `force`, ...). `None` when a required field is missing or
    /// mistyped.
    pub fn from_fields(fields: &[(String, Val)]) -> Option<JobSpec> {
        let mut spec = JobSpec::default();
        let mut seen = 0u32;
        for (key, val) in fields {
            match (key.as_str(), val) {
                ("protocol", Val::Str(s)) => {
                    spec.protocol = s.clone();
                    seen |= 1;
                }
                ("nodes", Val::Num(n)) => {
                    spec.nodes = n.parse().ok()?;
                    seen |= 2;
                }
                ("pairs", Val::Num(n)) => {
                    spec.pairs = n.parse().ok()?;
                    seen |= 4;
                }
                ("duration_s", Val::Num(n)) => {
                    spec.duration_s = n.parse().ok()?;
                    seen |= 8;
                }
                ("seed", Val::Num(n)) => {
                    spec.seed = n.parse().ok()?;
                    seen |= 16;
                }
                ("max_events", Val::Num(n)) => {
                    spec.max_events = none_if_zero(n.parse().ok()?);
                }
                ("max_sim_s", Val::Num(n)) => {
                    spec.max_sim_s = none_if_zero_f(n.parse().ok()?);
                }
                ("max_instant", Val::Num(n)) => {
                    spec.max_instant = none_if_zero(n.parse().ok()?);
                }
                ("trace", Val::Num(n)) => {
                    spec.trace = n.parse::<u8>().ok()? != 0;
                }
                ("every_s", Val::Num(n)) => {
                    spec.every_s = none_if_zero_f(n.parse().ok()?);
                }
                _ => {}
            }
        }
        (seen == 31).then_some(spec)
    }

    /// The protocol choice this spec runs. `None` for an unknown name
    /// (already rejected by [`JobSpec::validate`] at admission; a
    /// journal replayed from a newer build may still carry one).
    pub fn protocol_choice(&self) -> Option<ProtocolChoice> {
        Some(match self.protocol.as_str() {
            "alert" => ProtocolChoice::Alert(AlertConfig::default()),
            "gpsr" => ProtocolChoice::Gpsr,
            "alarm" => ProtocolChoice::Alarm,
            "ao2p" => ProtocolChoice::Ao2p,
            "zap" => ProtocolChoice::Zap { growth: 1.0 },
            "anodr" => ProtocolChoice::Anodr,
            "prism" => ProtocolChoice::Prism,
            "mask" => ProtocolChoice::Mask,
            "mapcp" => ProtocolChoice::Mapcp,
            _ => return None,
        })
    }

    /// The scenario this spec describes: the paper's default scenario
    /// with the spec's geometry and (cap-tightened) budget applied.
    pub fn scenario(&self, cap: &RunBudget) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(self.nodes)
            .with_duration(self.duration_s);
        cfg.traffic.pairs = self.pairs;
        cfg.budget = self.budget().tightened(cap);
        cfg
    }
}

fn none_if_zero(v: u64) -> Option<u64> {
    (v != 0).then_some(v)
}

fn none_if_zero_f(v: f64) -> Option<f64> {
    (v != 0.0).then_some(v)
}

/// Parses a 16-hex-digit job id back into its fingerprint.
pub fn parse_fp_hex(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
}

/// Executes one job under the daemon's budget cap and reduces it to its
/// artifact map. Every artifact is a deterministic function of the spec:
/// wall-clock quantities never appear (they live in the journal, which
/// is provenance, not result).
pub fn run_job(spec: &JobSpec, cap: &RunBudget) -> Result<Artifacts, String> {
    let choice = spec
        .protocol_choice()
        .ok_or_else(|| format!("unknown protocol '{}'", spec.protocol))?;
    let scenario = spec.scenario(cap);
    scenario.validate().map_err(|e| e.to_string())?;
    let trace_buf = SharedBuf::default();
    let opts = RunOptions {
        trace: spec
            .trace
            .then(|| Box::new(JsonlSink::new(trace_buf.clone())) as _),
        profile: false,
        metrics_every: spec.every_s,
        postmortem: None,
    };
    let out = run_instrumented(choice, &scenario, spec.seed, opts).map_err(|e| e.to_string())?;

    let mut artifacts = Artifacts::new();
    artifacts.insert(
        "metrics.json".to_owned(),
        render_metrics_json(spec, &out.metrics, &out.profile, &out.registry),
    );
    if spec.trace {
        artifacts.insert("trace.jsonl".to_owned(), trace_buf.contents());
    }
    if spec.every_s.is_some() {
        let series = out.timeseries.as_ref().ok_or("timeseries not collected")?;
        artifacts.insert("timeseries.jsonl".to_owned(), series.to_jsonl());
    }
    Ok(artifacts)
}

/// The `metrics.json` artifact: the run summary as one hand-formatted
/// JSON object with stable key order and shortest-round-trip floats —
/// byte-identical for identical specs, with no wall-clock field.
fn render_metrics_json(
    spec: &JobSpec,
    m: &alert_sim::Metrics,
    profile: &alert_sim::RunProfile,
    registry: &alert_sim::RegistrySnapshot,
) -> String {
    let delivered = m.packets.iter().filter(|p| p.delivered_at.is_some()).count();
    let latency_ms = match m.mean_latency() {
        Some(l) if l.is_finite() => format!("{:?}", l * 1000.0),
        _ => "null".to_owned(),
    };
    let drops: Vec<String> = m.drops.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    let mut s = String::from("{\"schema\":\"alertd-result/1\",");
    s.push_str("\"job\":");
    push_str_escaped(&mut s, &spec.fp_hex());
    s.push(',');
    spec.push_fields(&mut s);
    let _ = write!(
        s,
        ",\"app_packets\":{},\"delivered\":{},\"delivery_rate\":{:?},\
         \"mean_latency_ms\":{latency_ms},\"hops_per_packet\":{:?},\
         \"events_dispatched\":{},\"fel_high_water\":{},\
         \"run_aborts\":{},\"drops\":{{{}}}}}",
        m.packets.len(),
        delivered,
        m.delivery_rate(),
        m.hops_per_packet(),
        profile.events_dispatched,
        profile.fel_high_water,
        registry.counters.get("run.aborts").copied().unwrap_or(0),
        drops.join(","),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_fields_round_trip() {
        let spec = JobSpec {
            protocol: "alert".to_owned(),
            nodes: 77,
            pairs: 3,
            duration_s: 12.5,
            seed: 9,
            max_events: Some(10_000),
            max_sim_s: None,
            max_instant: Some(64),
            trace: true,
            every_s: Some(2.5),
        };
        let mut line = String::from("{");
        spec.push_fields(&mut line);
        line.push('}');
        let fields = parse_flat_object(&line).expect("parses");
        assert_eq!(JobSpec::from_fields(&fields), Some(spec));
    }

    #[test]
    fn missing_required_field_is_rejected() {
        let mut line = String::from("{");
        JobSpec::default().push_fields(&mut line);
        line.push('}');
        let line = line.replace("\"seed\":42,", "");
        let fields = parse_flat_object(&line).expect("parses");
        assert_eq!(JobSpec::from_fields(&fields), None);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_field() {
        let base = JobSpec::default();
        let variants = [
            JobSpec {
                protocol: "alert".to_owned(),
                ..base.clone()
            },
            JobSpec {
                nodes: 41,
                ..base.clone()
            },
            JobSpec {
                seed: 43,
                ..base.clone()
            },
            JobSpec {
                trace: true,
                ..base.clone()
            },
            JobSpec {
                max_events: Some(1),
                ..base.clone()
            },
            JobSpec {
                every_s: Some(5.0),
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{v:?}");
        }
        assert_eq!(base.fingerprint(), JobSpec::default().fingerprint());
    }

    #[test]
    fn fp_hex_round_trips() {
        let spec = JobSpec::default();
        assert_eq!(parse_fp_hex(&spec.fp_hex()), Some(spec.fingerprint()));
        assert_eq!(parse_fp_hex("xyz"), None);
        assert_eq!(parse_fp_hex("123"), None);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let bad = [
            JobSpec {
                protocol: "ospf".to_owned(),
                ..JobSpec::default()
            },
            JobSpec {
                nodes: 0,
                ..JobSpec::default()
            },
            JobSpec {
                duration_s: -1.0,
                ..JobSpec::default()
            },
            JobSpec {
                every_s: Some(0.0),
                ..JobSpec::default()
            },
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "{spec:?}");
        }
        assert!(JobSpec::default().validate().is_ok());
    }

    #[test]
    fn run_job_is_deterministic_and_capped() {
        let spec = JobSpec {
            nodes: 30,
            duration_s: 5.0,
            trace: true,
            every_s: Some(2.0),
            ..JobSpec::default()
        };
        let a = run_job(&spec, &RunBudget::default()).expect("runs");
        let b = run_job(&spec, &RunBudget::default()).expect("runs");
        assert_eq!(a, b, "artifacts are pure functions of the spec");
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            ["metrics.json", "timeseries.jsonl", "trace.jsonl"]
        );
        assert!(a["metrics.json"].starts_with("{\"schema\":\"alertd-result/1\""));
        // A tight daemon cap turns the run into a budget abort.
        let cap = RunBudget {
            max_events: Some(10),
            ..RunBudget::default()
        };
        let err = run_job(&spec, &cap).expect_err("capped");
        assert!(err.contains("event budget"), "{err}");
    }
}

//! Supervision of the daemon's dispatcher: restart on panic with
//! capped exponential backoff.
//!
//! The execution pool already isolates *worker* panics per attempt
//! ([`alert_bench::run_pool`] catches them and retries the unit). The
//! supervisor guards the layer above: if the dispatcher thread itself
//! dies — a panic in commit, promotion, or the pool driver — the daemon
//! must not silently stop executing jobs while still accepting them.
//! [`supervise`] restarts the body, tells the server which panic
//! happened (so it can quarantine a job that kills the dispatcher
//! twice), and backs off exponentially so a deterministic crash loop
//! cannot spin a core.

use std::panic::{self, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

/// Restart policy for a supervised loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorOptions {
    /// Delay after the first panic; doubles per consecutive panic.
    pub backoff_base: Duration,
    /// Ceiling on the delay.
    pub backoff_cap: Duration,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// The delay before restart number `restart` (1-based): capped
/// exponential, `base * 2^(restart-1)` up to `cap`.
pub fn backoff_delay(opts: &SupervisorOptions, restart: u32) -> Duration {
    let shift = restart.saturating_sub(1).min(20);
    opts.backoff_base
        .saturating_mul(1u32 << shift)
        .min(opts.backoff_cap)
}

/// Runs `body` until it returns `true` (clean exit), restarting it
/// after every panic. Each panic calls `on_panic` with the panic
/// message before the backoff sleep. Returns the number of restarts.
///
/// The body is deliberately `FnMut`: state that must survive a restart
/// (the server's shared `Arc`) lives in its captures, which is exactly
/// the crash-only discipline — anything the dispatcher cannot
/// reconstruct from shared state or the journal, it must not rely on.
pub fn supervise(
    opts: &SupervisorOptions,
    mut body: impl FnMut() -> bool,
    mut on_panic: impl FnMut(&str),
) -> u32 {
    let mut restarts = 0u32;
    loop {
        match panic::catch_unwind(AssertUnwindSafe(&mut body)) {
            Ok(true) => return restarts,
            Ok(false) => continue,
            Err(payload) => {
                restarts += 1;
                on_panic(&panic_message(payload.as_ref()));
                thread::sleep(backoff_delay(opts, restarts));
            }
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let opts = SupervisorOptions {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(65),
        };
        assert_eq!(backoff_delay(&opts, 1), Duration::from_millis(10));
        assert_eq!(backoff_delay(&opts, 2), Duration::from_millis(20));
        assert_eq!(backoff_delay(&opts, 3), Duration::from_millis(40));
        assert_eq!(backoff_delay(&opts, 4), Duration::from_millis(65));
        assert_eq!(backoff_delay(&opts, 31), Duration::from_millis(65));
    }

    #[test]
    fn panicking_body_is_restarted_until_clean_exit() {
        let opts = SupervisorOptions {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        let mut calls = 0;
        let mut panics = Vec::new();
        let restarts = supervise(
            &opts,
            || {
                calls += 1;
                match calls {
                    1 => panic!("first crash"),
                    2 => false, // one voluntary re-loop, not a panic
                    3 => panic!("second crash"),
                    _ => true,
                }
            },
            |msg| panics.push(msg.to_owned()),
        );
        assert_eq!(restarts, 2);
        assert_eq!(calls, 4);
        assert_eq!(panics, ["first crash", "second crash"]);
    }
}

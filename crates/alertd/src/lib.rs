//! # alertd
//!
//! The sim-as-a-service control plane: a long-lived, **crash-only**
//! daemon that accepts simulation jobs over a newline-delimited JSON
//! protocol (TCP or Unix socket), executes them through the
//! fault-tolerant pool machinery of `alert-bench`, and publishes result
//! artifacts by atomic rename into a versioned `results/` directory.
//!
//! Crash-only means the recovery path *is* the startup path (see
//! DESIGN.md § 14 and `docs/OPERATIONS.md`):
//!
//! * every submission is appended to a durable fsync'd job journal
//!   **before** it is acknowledged ([`journal`]);
//! * artifacts are staged per fingerprint and promoted by `rename`, so
//!   readers never observe a half-written result ([`store`]);
//! * a `kill -9` at any instant loses at most in-flight leases — on
//!   restart the daemon replays the journal, sweeps orphaned staging
//!   entries, adopts results that were promoted but not yet journaled,
//!   and re-runs the rest (exactly-once-*effective* by fingerprint
//!   dedupe);
//! * admission control bounds the queue with typed `busy` / `shutdown`
//!   rejections instead of unbounded memory growth ([`server`]);
//! * a supervisor restarts a panicked dispatcher with capped backoff
//!   and quarantines any job that kills it twice ([`supervisor`]).
//!
//! The wire protocol ([`protocol`]) reuses the flat-object JSONL codec
//! of `alert_bench::orchestrate`, so the daemon adds no JSON library
//! dependency and every message is diffable by eye.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod protocol;
pub mod server;
pub mod spec;
pub mod store;
pub mod supervisor;

pub use journal::{JobJournal, JobRecord, JobState, ReplayedJob};
pub use protocol::{ErrorKind, QueryRequest, Request, Response};
pub use server::{serve, BindAddr, ServeError, ServerConfig, ServerStats};
pub use spec::{parse_fp_hex, run_job, Artifacts, JobSpec};
pub use store::ResultStore;
pub use supervisor::{backoff_delay, supervise, SupervisorOptions};

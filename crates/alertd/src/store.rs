//! The versioned result store: staged writes, atomic promotion by
//! `rename`, and `CURRENT` cutover with rollback.
//!
//! Layout under the daemon directory:
//!
//! ```text
//! results/
//!   .stage/<fp>-v<N>/        in-progress staging (dead after a crash)
//!   <fp>/v1/ v2/ ...         immutable promoted versions
//!   <fp>/CURRENT             "vN\n", written atomically
//! ```
//!
//! The `rename` of a staged directory into `results/<fp>/v<N>` is the
//! commit point: readers either see no `v<N>` or a complete one, never
//! a half-written result. Everything in `.stage/` is therefore garbage
//! by definition at startup and is swept unconditionally.
//!
//! Promotion is **content-compared**: if the newest existing version
//! already holds byte-identical artifacts, promotion just points
//! `CURRENT` at it instead of minting a duplicate. Because artifacts
//! are pure functions of the spec (see [`crate::spec::run_job`]), this
//! is what makes crash-and-re-run converge on the same bytes — the
//! "effective" half of exactly-once-effective.

use crate::spec::Artifacts;
use alert_bench::write_atomic;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Name of the staging area inside `results/`.
const STAGE_DIR: &str = ".stage";

/// The versioned artifact store rooted at `<dir>/results/`.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store under the daemon directory.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        let root = dir.join("results");
        fs::create_dir_all(root.join(STAGE_DIR))?;
        Ok(ResultStore { root })
    }

    fn job_dir(&self, fp: u64) -> PathBuf {
        self.root.join(format!("{fp:016x}"))
    }

    /// Path of one artifact inside a specific version.
    pub fn version_path(&self, fp: u64, version: u32) -> PathBuf {
        self.job_dir(fp).join(format!("v{version}"))
    }

    /// Removes everything in `.stage/`. A staged directory only exists
    /// between "worker finished" and "rename committed", so after a
    /// restart every entry is an orphan of a dead process. Returns how
    /// many entries were swept.
    pub fn sweep_stage(&self) -> io::Result<usize> {
        let mut swept = 0;
        for entry in fs::read_dir(self.root.join(STAGE_DIR))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                fs::remove_dir_all(entry.path())?;
            } else {
                fs::remove_file(entry.path())?;
            }
            swept += 1;
        }
        Ok(swept)
    }

    /// Version numbers promoted for `fp`, ascending. Empty when the job
    /// has never completed.
    pub fn versions(&self, fp: u64) -> Vec<u32> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(self.job_dir(fp)) else {
            return out;
        };
        for entry in entries.flatten() {
            if let Some(v) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix('v'))
                .and_then(|n| n.parse::<u32>().ok())
            {
                out.push(v);
            }
        }
        out.sort_unstable();
        out
    }

    /// The version `CURRENT` points at, if it exists and is a real
    /// promoted directory.
    pub fn current_version(&self, fp: u64) -> Option<u32> {
        let text = fs::read_to_string(self.job_dir(fp).join("CURRENT")).ok()?;
        let v = text.trim().strip_prefix('v')?.parse::<u32>().ok()?;
        self.version_path(fp, v).is_dir().then_some(v)
    }

    /// Promotes `artifacts` as the job's current result and returns the
    /// version `CURRENT` now points at.
    ///
    /// If the newest existing version is byte-identical, no new version
    /// is minted — `CURRENT` is (re)pointed at it. Otherwise the files
    /// are staged with per-file fsync, renamed into place in one shot,
    /// and only then does `CURRENT` cut over.
    pub fn promote(&self, fp: u64, artifacts: &Artifacts) -> io::Result<u32> {
        let versions = self.versions(fp);
        if let Some(&latest) = versions.last() {
            if self.read_version(fp, latest).as_ref() == Some(artifacts) {
                self.set_current(fp, latest)?;
                return Ok(latest);
            }
        }
        let next = versions.last().copied().unwrap_or(0) + 1;
        let stage = self
            .root
            .join(STAGE_DIR)
            .join(format!("{fp:016x}-v{next}"));
        if stage.exists() {
            fs::remove_dir_all(&stage)?;
        }
        fs::create_dir_all(&stage)?;
        for (name, contents) in artifacts {
            let mut f = fs::File::create(stage.join(name))?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        let dest = self.version_path(fp, next);
        fs::create_dir_all(self.job_dir(fp))?;
        fs::rename(&stage, &dest)?; // the commit point
        fsync_dir(&self.job_dir(fp));
        self.set_current(fp, next)?;
        Ok(next)
    }

    /// Points `CURRENT` at the previous existing version and returns
    /// it. Fails when there is no current version or nothing older to
    /// fall back to.
    pub fn rollback(&self, fp: u64) -> io::Result<u32> {
        let cur = self
            .current_version(fp)
            .ok_or_else(|| other("no current version to roll back from"))?;
        let prev = self
            .versions(fp)
            .into_iter()
            .filter(|&v| v < cur)
            .next_back()
            .ok_or_else(|| other("no older version to roll back to"))?;
        self.set_current(fp, prev)?;
        Ok(prev)
    }

    /// Repairs a job whose promotion renamed but whose `CURRENT` (or
    /// journal `done`) never landed: if version directories exist,
    /// points `CURRENT` at the newest and returns it. `None` when the
    /// job has no promoted versions at all.
    pub fn adopt(&self, fp: u64) -> io::Result<Option<u32>> {
        match self.versions(fp).last().copied() {
            Some(latest) => {
                self.set_current(fp, latest)?;
                Ok(Some(latest))
            }
            None => Ok(None),
        }
    }

    /// Reads one artifact of the *current* version.
    pub fn read_current_artifact(&self, fp: u64, name: &str) -> Option<String> {
        let v = self.current_version(fp)?;
        fs::read_to_string(self.version_path(fp, v).join(name)).ok()
    }

    /// Artifact names of the current version, sorted.
    pub fn current_artifact_names(&self, fp: u64) -> Vec<String> {
        let Some(v) = self.current_version(fp) else {
            return Vec::new();
        };
        let Ok(entries) = fs::read_dir(self.version_path(fp, v)) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .collect();
        names.sort();
        names
    }

    fn read_version(&self, fp: u64, version: u32) -> Option<Artifacts> {
        let dir = self.version_path(fp, version);
        let mut artifacts = Artifacts::new();
        for entry in fs::read_dir(dir).ok()?.flatten() {
            let name = entry.file_name().to_str()?.to_owned();
            let mut contents = String::new();
            fs::File::open(entry.path())
                .ok()?
                .read_to_string(&mut contents)
                .ok()?;
            artifacts.insert(name, contents);
        }
        Some(artifacts)
    }

    fn set_current(&self, fp: u64, version: u32) -> io::Result<()> {
        write_atomic(
            &self.job_dir(fp).join("CURRENT"),
            &format!("v{version}\n"),
        )
    }
}

fn other(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Other, msg)
}

/// Best-effort directory fsync so the committing `rename` is durable.
/// Ignored on platforms where directories cannot be opened for sync.
fn fsync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alertd_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn arts(body: &str) -> Artifacts {
        let mut a = Artifacts::new();
        a.insert("metrics.json".to_owned(), body.to_owned());
        a.insert("trace.jsonl".to_owned(), format!("{body}-trace"));
        a
    }

    #[test]
    fn promote_dedupes_identical_content_and_versions_changes() {
        let dir = scratch("promote");
        let store = ResultStore::open(&dir).unwrap();
        let fp = 0xabcd;
        assert_eq!(store.promote(fp, &arts("one")).unwrap(), 1);
        // Identical re-promotion (a crashed-and-re-run job): same version.
        assert_eq!(store.promote(fp, &arts("one")).unwrap(), 1);
        assert_eq!(store.versions(fp), [1]);
        // Different content (a --force re-run): a new version.
        assert_eq!(store.promote(fp, &arts("two")).unwrap(), 2);
        assert_eq!(store.versions(fp), [1, 2]);
        assert_eq!(store.current_version(fp), Some(2));
        assert_eq!(
            store.read_current_artifact(fp, "metrics.json").as_deref(),
            Some("two")
        );
        assert_eq!(
            store.current_artifact_names(fp),
            ["metrics.json", "trace.jsonl"]
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn rollback_walks_back_and_refuses_at_the_floor() {
        let dir = scratch("rollback");
        let store = ResultStore::open(&dir).unwrap();
        let fp = 7;
        store.promote(fp, &arts("one")).unwrap();
        store.promote(fp, &arts("two")).unwrap();
        assert_eq!(store.rollback(fp).unwrap(), 1);
        assert_eq!(
            store.read_current_artifact(fp, "metrics.json").as_deref(),
            Some("one")
        );
        assert!(store.rollback(fp).is_err(), "nothing older than v1");
        assert!(store.rollback(99).is_err(), "unknown job");
        // Promoting "one" again dedupes against v2? No — against the
        // *newest* version (v2 = "two"), so it mints v3. CURRENT moves.
        assert_eq!(store.promote(fp, &arts("one")).unwrap(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stage_is_swept_and_adoption_repairs_current() {
        let dir = scratch("sweep");
        let store = ResultStore::open(&dir).unwrap();
        let fp = 0xfeed;
        // Simulate a crash between rename and CURRENT: a promoted v1
        // with no CURRENT, plus a dead staging dir.
        store.promote(fp, &arts("one")).unwrap();
        fs::remove_file(store.job_dir(fp).join("CURRENT")).unwrap();
        let dead = dir.join("results").join(STAGE_DIR).join("00deadbeef-v9");
        fs::create_dir_all(&dead).unwrap();
        fs::write(dead.join("metrics.json"), "half").unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.sweep_stage().unwrap(), 1);
        assert_eq!(store.current_version(fp), None);
        assert_eq!(store.adopt(fp).unwrap(), Some(1));
        assert_eq!(store.current_version(fp), Some(1));
        assert_eq!(store.adopt(0x1234).unwrap(), None, "nothing to adopt");
        let _ = fs::remove_dir_all(dir);
    }
}

//! The durable job journal: every admission decision and terminal
//! outcome, fsync'd before it is acknowledged.
//!
//! The journal is the daemon's only source of truth across crashes. It
//! is append-only flat JSONL (`alertd-jobs/1`), written and parsed with
//! the same hand-rolled codec as the repro manifest, with a `"rec"`
//! discriminator per line:
//!
//! ```json
//! {"rec":"submit","fp":"00ab…","force":0,"protocol":"gpsr","nodes":60,…}
//! {"rec":"lease","fp":"00ab…","worker":0,"attempt":1}
//! {"rec":"done","fp":"00ab…","version":1}
//! {"rec":"failed","fp":"00ab…","error":"run aborted: …"}
//! {"rec":"cancelled","fp":"00ab…"}
//! {"rec":"quarantined","fp":"00ab…","error":"killed the dispatcher twice"}
//! {"rec":"rollback","fp":"00ab…","version":1}
//! ```
//!
//! Recovery is a fold over the lines in order ([`JobJournal::replay`]):
//! the last record wins, a `submit` with no later terminal record is
//! pending work, and a `lease` with no later terminal record marks an
//! orphan the dead process never finished (reported, then simply
//! re-run). The torn trailing line a `kill -9` can leave is skipped and
//! healed with a newline on re-open, exactly like the repro manifest —
//! at worst one acknowledgment is lost, and the client's retry dedupes
//! by fingerprint.

use crate::spec::JobSpec;
use alert_bench::{parse_flat_object, push_str_escaped, Val};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File name of the job journal inside the daemon directory.
pub const JOURNAL_FILE: &str = "alertd-jobs.jsonl";

/// One journal line, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRecord {
    /// A job was admitted (fsync'd before the ack). `force` re-runs an
    /// already-completed fingerprint into a new result version.
    Submit {
        /// Job fingerprint.
        fp: u64,
        /// Whether this submission forces a re-run.
        force: bool,
        /// The submitted spec.
        spec: JobSpec,
    },
    /// A worker claimed the job (attempt `attempt`).
    Lease {
        /// Job fingerprint.
        fp: u64,
        /// Claiming worker id.
        worker: usize,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The job's artifacts were promoted as `results/<fp>/v<version>`.
    Done {
        /// Job fingerprint.
        fp: u64,
        /// Promoted result version.
        version: u32,
    },
    /// Every attempt failed; the error is terminal.
    Failed {
        /// Job fingerprint.
        fp: u64,
        /// Last failure message.
        error: String,
    },
    /// The client cancelled the job before it ran.
    Cancelled {
        /// Job fingerprint.
        fp: u64,
    },
    /// The job killed the dispatcher twice and is barred from running.
    Quarantined {
        /// Job fingerprint.
        fp: u64,
        /// Why it was quarantined.
        error: String,
    },
    /// `CURRENT` was switched back to an older result version.
    Rollback {
        /// Job fingerprint.
        fp: u64,
        /// Version `CURRENT` now points at.
        version: u32,
    },
}

impl JobRecord {
    /// The fingerprint the record is about.
    pub fn fp(&self) -> u64 {
        match self {
            JobRecord::Submit { fp, .. }
            | JobRecord::Lease { fp, .. }
            | JobRecord::Done { fp, .. }
            | JobRecord::Failed { fp, .. }
            | JobRecord::Cancelled { fp }
            | JobRecord::Quarantined { fp, .. }
            | JobRecord::Rollback { fp, .. } => *fp,
        }
    }

    /// Encodes the record as one JSONL line (no trailing newline),
    /// stable key order.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"rec\":");
        let (rec, fp) = match self {
            JobRecord::Submit { fp, .. } => ("submit", fp),
            JobRecord::Lease { fp, .. } => ("lease", fp),
            JobRecord::Done { fp, .. } => ("done", fp),
            JobRecord::Failed { fp, .. } => ("failed", fp),
            JobRecord::Cancelled { fp } => ("cancelled", fp),
            JobRecord::Quarantined { fp, .. } => ("quarantined", fp),
            JobRecord::Rollback { fp, .. } => ("rollback", fp),
        };
        let _ = write!(s, "\"{rec}\",\"fp\":\"{fp:016x}\"");
        match self {
            JobRecord::Submit { force, spec, .. } => {
                let _ = write!(s, ",\"force\":{},", u8::from(*force));
                spec.push_fields(&mut s);
            }
            JobRecord::Lease {
                worker, attempt, ..
            } => {
                let _ = write!(s, ",\"worker\":{worker},\"attempt\":{attempt}");
            }
            JobRecord::Done { version, .. } | JobRecord::Rollback { version, .. } => {
                let _ = write!(s, ",\"version\":{version}");
            }
            JobRecord::Failed { error, .. } | JobRecord::Quarantined { error, .. } => {
                s.push_str(",\"error\":");
                push_str_escaped(&mut s, error);
            }
            JobRecord::Cancelled { .. } => {}
        }
        s.push('}');
        s
    }

    /// Decodes one journal line; `None` on malformation (torn tail) or
    /// an unknown record kind (written by a newer build — skipped, not
    /// fatal).
    pub fn parse_line(line: &str) -> Option<JobRecord> {
        let fields = parse_flat_object(line)?;
        let mut rec = None;
        let mut fp = None;
        let mut force = false;
        let mut worker = None;
        let mut attempt = None;
        let mut version = None;
        let mut error = None;
        for (key, val) in &fields {
            match (key.as_str(), val) {
                ("rec", Val::Str(s)) => rec = Some(s.clone()),
                ("fp", Val::Str(s)) => fp = crate::spec::parse_fp_hex(s),
                ("force", Val::Num(n)) => force = n.parse::<u8>().ok()? != 0,
                ("worker", Val::Num(n)) => worker = n.parse::<usize>().ok(),
                ("attempt", Val::Num(n)) => attempt = n.parse::<u32>().ok(),
                ("version", Val::Num(n)) => version = n.parse::<u32>().ok(),
                ("error", Val::Str(s)) => error = Some(s.clone()),
                _ => {}
            }
        }
        let fp = fp?;
        Some(match rec?.as_str() {
            "submit" => JobRecord::Submit {
                fp,
                force,
                spec: JobSpec::from_fields(&fields)?,
            },
            "lease" => JobRecord::Lease {
                fp,
                worker: worker?,
                attempt: attempt?,
            },
            "done" => JobRecord::Done {
                fp,
                version: version?,
            },
            "failed" => JobRecord::Failed { fp, error: error? },
            "cancelled" => JobRecord::Cancelled { fp },
            "quarantined" => JobRecord::Quarantined { fp, error: error? },
            "rollback" => JobRecord::Rollback {
                fp,
                version: version?,
            },
            _ => return None,
        })
    }
}

/// A job's state as reconstructed by replay (and maintained live by the
/// server, which journals the same transitions it applies in memory).
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Submitted (or orphaned mid-run) and awaiting execution.
    Pending,
    /// Claimed by a worker in this process. Never survives a replay:
    /// a crashed run's leases fold back to [`JobState::Pending`].
    Running,
    /// Artifacts promoted; `CURRENT` points at `version`.
    Done {
        /// Result version `CURRENT` points at.
        version: u32,
    },
    /// Attempts exhausted.
    Failed {
        /// Last failure message.
        error: String,
    },
    /// Cancelled before it ran.
    Cancelled,
    /// Barred from running after repeatedly killing the dispatcher.
    Quarantined {
        /// Why it was quarantined.
        error: String,
    },
}

impl JobState {
    /// Stable wire token for status responses.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Quarantined { .. } => "quarantined",
        }
    }

    /// True for states that need no further work.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Pending | JobState::Running)
    }
}

/// One job after replay: its last submitted spec and folded state.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJob {
    /// The job's (latest) spec.
    pub spec: JobSpec,
    /// Folded state; leases with no terminal record leave the job
    /// [`JobState::Pending`].
    pub state: JobState,
    /// Whether the latest submission was a force re-run.
    pub force: bool,
    /// True when the job has a lease record newer than any terminal
    /// record — the dead process was executing it when it died.
    pub orphaned: bool,
}

/// The append-only job journal. Every append is fsync'd before it
/// returns — the caller may acknowledge a client only after.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    records: usize,
}

impl JobJournal {
    /// Opens (or implicitly creates) the journal in `dir`, healing an
    /// unterminated tail so the next append starts on a fresh line.
    /// Returns the journal and the replayed job table.
    pub fn open(dir: &Path) -> io::Result<(JobJournal, BTreeMap<u64, ReplayedJob>)> {
        let path = dir.join(JOURNAL_FILE);
        let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
        let mut records = 0usize;
        match fs::read_to_string(&path) {
            Ok(text) => {
                if !text.is_empty() && !text.ends_with('\n') {
                    let mut f = fs::OpenOptions::new().append(true).open(&path)?;
                    f.write_all(b"\n")?;
                    f.sync_all()?;
                }
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let Some(rec) = JobRecord::parse_line(line) else {
                        continue; // torn tail or a newer build's record
                    };
                    records += 1;
                    Self::fold(&mut jobs, rec);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok((JobJournal { path, records }, jobs))
    }

    /// Applies one record to the replay table. Shared by replay and (in
    /// spirit) the live server, so recovery cannot disagree with the
    /// process it recovers.
    fn fold(jobs: &mut BTreeMap<u64, ReplayedJob>, rec: JobRecord) {
        match rec {
            JobRecord::Submit { fp, force, spec } => {
                jobs.insert(
                    fp,
                    ReplayedJob {
                        spec,
                        state: JobState::Pending,
                        force,
                        orphaned: false,
                    },
                );
            }
            JobRecord::Lease { fp, .. } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    if !job.state.is_terminal() {
                        job.orphaned = true;
                    }
                }
            }
            JobRecord::Done { fp, version } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    job.state = JobState::Done { version };
                    job.orphaned = false;
                }
            }
            JobRecord::Failed { fp, error } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    job.state = JobState::Failed { error };
                    job.orphaned = false;
                }
            }
            JobRecord::Cancelled { fp } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    job.state = JobState::Cancelled;
                    job.orphaned = false;
                }
            }
            JobRecord::Quarantined { fp, error } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    job.state = JobState::Quarantined { error };
                    job.orphaned = false;
                }
            }
            JobRecord::Rollback { fp, version } => {
                if let Some(job) = jobs.get_mut(&fp) {
                    if matches!(job.state, JobState::Done { .. }) {
                        job.state = JobState::Done { version };
                    }
                }
            }
        }
    }

    /// Appends one record and fsyncs before returning. Only after this
    /// returns may the transition it records be acknowledged or acted
    /// on — journal-before-ack is the crash-only invariant.
    pub fn append(&mut self, rec: &JobRecord) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = rec.to_jsonl();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended plus records replayed at open.
    pub fn records(&self) -> usize {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alertd_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn submit(spec: &JobSpec) -> JobRecord {
        JobRecord::Submit {
            fp: spec.fingerprint(),
            force: false,
            spec: spec.clone(),
        }
    }

    #[test]
    fn every_record_kind_round_trips() {
        let spec = JobSpec::default();
        let fp = spec.fingerprint();
        let records = [
            submit(&spec),
            JobRecord::Lease {
                fp,
                worker: 1,
                attempt: 2,
            },
            JobRecord::Done { fp, version: 3 },
            JobRecord::Failed {
                fp,
                error: "run aborted: \"weird\"\nmessage".to_owned(),
            },
            JobRecord::Cancelled { fp },
            JobRecord::Quarantined {
                fp,
                error: "killed the dispatcher twice".to_owned(),
            },
            JobRecord::Rollback { fp, version: 1 },
        ];
        for rec in records {
            assert_eq!(JobRecord::parse_line(&rec.to_jsonl()), Some(rec.clone()));
        }
        assert_eq!(JobRecord::parse_line("{\"rec\":\"submit\"}"), None);
        assert_eq!(JobRecord::parse_line("not json"), None);
    }

    #[test]
    fn replay_folds_lifecycles() {
        let dir = scratch_dir("fold");
        let a = JobSpec::default();
        let b = JobSpec {
            seed: 7,
            ..JobSpec::default()
        };
        let c = JobSpec {
            seed: 8,
            ..JobSpec::default()
        };
        let (mut j, jobs) = JobJournal::open(&dir).unwrap();
        assert!(jobs.is_empty());
        // a: submitted, leased, done. b: submitted, leased, never
        // finished (orphan). c: submitted, untouched (pending).
        j.append(&submit(&a)).unwrap();
        j.append(&JobRecord::Lease {
            fp: a.fingerprint(),
            worker: 0,
            attempt: 1,
        })
        .unwrap();
        j.append(&JobRecord::Done {
            fp: a.fingerprint(),
            version: 1,
        })
        .unwrap();
        j.append(&submit(&b)).unwrap();
        j.append(&JobRecord::Lease {
            fp: b.fingerprint(),
            worker: 1,
            attempt: 1,
        })
        .unwrap();
        j.append(&submit(&c)).unwrap();

        let (j2, jobs) = JobJournal::open(&dir).unwrap();
        assert_eq!(j2.records(), 6);
        assert_eq!(
            jobs[&a.fingerprint()].state,
            JobState::Done { version: 1 }
        );
        assert!(!jobs[&a.fingerprint()].orphaned);
        assert_eq!(jobs[&b.fingerprint()].state, JobState::Pending);
        assert!(jobs[&b.fingerprint()].orphaned, "lease with no terminal");
        assert_eq!(jobs[&c.fingerprint()].state, JobState::Pending);
        assert!(!jobs[&c.fingerprint()].orphaned);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_skipped_and_healed() {
        let dir = scratch_dir("torn");
        let spec = JobSpec::default();
        let (mut j, _) = JobJournal::open(&dir).unwrap();
        j.append(&submit(&spec)).unwrap();
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(b"{\"rec\":\"done\",\"fp\":\"00").unwrap();
        drop(f);

        let (mut j2, jobs) = JobJournal::open(&dir).unwrap();
        assert_eq!(jobs[&spec.fingerprint()].state, JobState::Pending);
        // Healed: the next append lands on its own line.
        j2.append(&JobRecord::Done {
            fp: spec.fingerprint(),
            version: 1,
        })
        .unwrap();
        let (_, jobs) = JobJournal::open(&dir).unwrap();
        assert_eq!(
            jobs[&spec.fingerprint()].state,
            JobState::Done { version: 1 }
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn resubmit_and_rollback_transition_correctly() {
        let dir = scratch_dir("resubmit");
        let spec = JobSpec::default();
        let fp = spec.fingerprint();
        let (mut j, _) = JobJournal::open(&dir).unwrap();
        j.append(&submit(&spec)).unwrap();
        j.append(&JobRecord::Done { fp, version: 1 }).unwrap();
        // Force re-run: pending again, then done as v2, then rolled back.
        j.append(&JobRecord::Submit {
            fp,
            force: true,
            spec: spec.clone(),
        })
        .unwrap();
        let (_, jobs) = JobJournal::open(&dir).unwrap();
        assert_eq!(jobs[&fp].state, JobState::Pending);
        assert!(jobs[&fp].force);

        j.append(&JobRecord::Done { fp, version: 2 }).unwrap();
        j.append(&JobRecord::Rollback { fp, version: 1 }).unwrap();
        let (_, jobs) = JobJournal::open(&dir).unwrap();
        assert_eq!(jobs[&fp].state, JobState::Done { version: 1 });
        let _ = fs::remove_dir_all(dir);
    }
}

//! The daemon itself: recovery-as-startup, admission control, the
//! supervised dispatcher, and thread-per-connection protocol serving.
//!
//! [`serve`] owns the whole lifecycle:
//!
//! 1. **Recover.** Acquire the directory lock (a second live daemon
//!    exits with a `busy` diagnostic), replay the job journal, sweep
//!    dead staging entries, adopt results that were promoted but never
//!    journaled, and re-queue everything still pending — including
//!    leases orphaned by a `kill -9`.
//! 2. **Listen.** Bind TCP (default, ephemeral port) or a Unix socket,
//!    and advertise the endpoint in `<dir>/alertd.endpoint` so
//!    `alertctl` needs only `--dir`.
//! 3. **Execute.** A supervised dispatcher drains admitted jobs in
//!    batches through [`alert_bench::run_pool`] — leases, retries and
//!    panic isolation included — and commits each outcome by atomic
//!    store promotion plus a journal record, in that order.
//! 4. **Drain.** `alertctl drain` stops admission, waits for every job
//!    to reach a terminal state, flushes the health timeseries, removes
//!    the endpoint, and [`serve`] returns cleanly.
//!
//! There is deliberately no other shutdown path: anything short of a
//! drain is a crash, and crashes are handled by step 1.

use crate::journal::{JobJournal, JobRecord, JobState, ReplayedJob};
use crate::protocol::{ErrorKind, QueryRequest, Request, Response};
use crate::spec::{run_job, JobSpec};
use crate::store::ResultStore;
use crate::supervisor::{supervise, SupervisorOptions};
use alert_bench::{run_pool, write_atomic, DirLock, LockError, PoolOptions, WorkUnit};
use alert_bench::UnitOutcome;
use alert_sim::{
    filter_events, follow_packet, parse_trace, render_events_csv, render_events_jsonl,
    render_windows_csv, render_windows_json, window_aggregates, EventFilter, MetricsTimeseries,
    RegistrySnapshot, RunBudget,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// `host:port`; port `0` picks an ephemeral port.
    Tcp(String),
    /// Filesystem socket path (Unix only).
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The daemon directory: journal, results, lock, endpoint file.
    pub dir: PathBuf,
    /// Listen address.
    pub bind: BindAddr,
    /// Worker threads in the execution pool.
    pub jobs: usize,
    /// Admission bound: maximum non-terminal jobs before `busy`.
    pub queue_cap: usize,
    /// Per-connection read timeout; an idle client is disconnected.
    pub idle_timeout: Duration,
    /// Execution attempts per job before it commits as failed.
    pub max_attempts: u32,
    /// Budget cap applied to every job (tightened per-field against the
    /// job's own budget) so one submission cannot wedge a worker.
    pub cap: RunBudget,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            dir: PathBuf::from("alertd-state"),
            bind: BindAddr::Tcp("127.0.0.1:0".to_owned()),
            jobs: 2,
            queue_cap: 64,
            idle_timeout: Duration::from_secs(30),
            max_attempts: 2,
            cap: RunBudget::default(),
        }
    }
}

/// Why [`serve`] refused to start or died.
#[derive(Debug)]
pub enum ServeError {
    /// Another live daemon holds the directory.
    Busy {
        /// Its PID, when the lock file was readable.
        pid: Option<u32>,
    },
    /// Filesystem or socket error.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { pid: Some(pid) } => {
                write!(f, "directory is owned by a live alertd (pid {pid})")
            }
            ServeError::Busy { pid: None } => write!(f, "directory is owned by a live alertd"),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// What a completed (drained) daemon run amounted to.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Jobs that reached `done` during this process lifetime.
    pub completed: usize,
    /// Jobs that reached `failed`.
    pub failed: usize,
    /// Dispatcher restarts forced by panics.
    pub worker_restarts: u32,
    /// Protocol requests served.
    pub requests: u64,
}

/// Accumulated execution-pool health counters across batches.
#[derive(Debug, Clone, Copy, Default)]
struct PoolCounters {
    leases: u64,
    lease_expired: u64,
    retries: u64,
    duplicates: u64,
    completed: u64,
    failed: u64,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    pending: VecDeque<u64>,
    in_flight: Vec<u64>,
    crash_counts: BTreeMap<u64, u32>,
    journal: JobJournal,
    draining: bool,
    shutdown: bool,
    worker_restarts: u32,
    requests: u64,
    pool: PoolCounters,
    series: MetricsTimeseries,
}

struct Shared {
    inner: Mutex<Inner>,
    cond: Condvar,
    store: ResultStore,
    config: ServerConfig,
    started: Instant,
}

impl Shared {
    fn outstanding(inner: &Inner) -> usize {
        inner
            .jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .count()
    }
}

/// Runs the daemon until it is drained. Blocking; returns the run's
/// stats on a clean drain, [`ServeError::Busy`] when another live
/// daemon owns the directory.
pub fn serve(config: ServerConfig) -> Result<ServerStats, ServeError> {
    std::fs::create_dir_all(&config.dir)?;
    let _lock = match DirLock::acquire(&config.dir) {
        Ok(lock) => lock,
        Err(LockError::Busy { pid }) => return Err(ServeError::Busy { pid }),
        Err(LockError::Io(e)) => return Err(ServeError::Io(e)),
    };

    // --- Recovery: replay, sweep, adopt, re-queue. -------------------
    // A crashed daemon leaves its endpoint advertisement behind; it is
    // stale by definition once we hold the lock.
    let _ = std::fs::remove_file(config.dir.join("alertd.endpoint"));
    let (journal, replayed) = JobJournal::open(&config.dir)?;
    let store = ResultStore::open(&config.dir)?;
    let swept = store.sweep_stage()?;
    if swept > 0 {
        println!("[alertd] swept {swept} dead staging entr{}", plural_y(swept));
    }
    let mut inner = Inner {
        jobs: BTreeMap::new(),
        pending: VecDeque::new(),
        in_flight: Vec::new(),
        crash_counts: BTreeMap::new(),
        journal,
        draining: false,
        shutdown: false,
        worker_restarts: 0,
        requests: 0,
        pool: PoolCounters::default(),
        series: MetricsTimeseries::new(1.0),
    };
    let mut orphans = 0usize;
    let mut adopted = 0usize;
    for (fp, job) in replayed {
        let state = recover_job(fp, &job, &store, &mut inner, &mut orphans, &mut adopted)?;
        inner.jobs.insert(
            fp,
            JobEntry {
                spec: job.spec,
                state,
            },
        );
    }
    if orphans > 0 {
        println!("[alertd] re-queued {orphans} lease(s) orphaned by a dead process");
    }
    if adopted > 0 {
        println!("[alertd] adopted {adopted} promoted-but-unjournaled result(s)");
    }

    // --- Listen and advertise the endpoint. --------------------------
    let listener = Listener::bind(&config.bind)?;
    let endpoint = config.dir.join("alertd.endpoint");
    write_atomic(&endpoint, &format!("{}\n", listener.advertisement()))?;
    println!("[alertd] listening: {}", listener.advertisement());

    let shared = Arc::new(Shared {
        inner: Mutex::new(inner),
        cond: Condvar::new(),
        store,
        config: config.clone(),
        started: Instant::now(),
    });

    // --- Supervised dispatcher. --------------------------------------
    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let opts = SupervisorOptions::default();
            let restarts = {
                let body_shared = Arc::clone(&shared);
                let panic_shared = Arc::clone(&shared);
                supervise(
                    &opts,
                    move || dispatch_once(&body_shared),
                    move |msg| on_dispatcher_panic(&panic_shared, msg),
                )
            };
            shared.inner.lock().unwrap().worker_restarts = restarts;
        })
    };

    // --- Accept loop. ------------------------------------------------
    listener.set_nonblocking(true)?;
    loop {
        if shared.inner.lock().unwrap().shutdown {
            break;
        }
        match listener.accept() {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                println!("[alertd] accept error: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
    dispatcher.join().ok();

    // --- Flush and retire. -------------------------------------------
    let inner = shared.inner.lock().unwrap();
    if !inner.series.samples.is_empty() {
        let _ = write_atomic(
            &config.dir.join("daemon-timeseries.jsonl"),
            &inner.series.to_jsonl(),
        );
    }
    let _ = std::fs::remove_file(&endpoint);
    let stats = ServerStats {
        completed: inner.pool.completed as usize,
        failed: inner.pool.failed as usize,
        worker_restarts: inner.worker_restarts,
        requests: inner.requests,
    };
    println!(
        "[alertd] drained: {} completed, {} failed, {} request(s)",
        stats.completed, stats.failed, stats.requests
    );
    Ok(stats)
}

/// Folds one replayed job into its startup state, counting orphans and
/// adoptions.
fn recover_job(
    fp: u64,
    job: &ReplayedJob,
    store: &ResultStore,
    inner: &mut Inner,
    orphans: &mut usize,
    adopted: &mut usize,
) -> io::Result<JobState> {
    match &job.state {
        JobState::Pending => {
            if job.orphaned {
                *orphans += 1;
            }
            // Promotion happened but the `done` record (or CURRENT)
            // never landed: adopt instead of re-running. A force re-run
            // must actually run, so it is never adopted.
            if !job.force {
                if let Some(version) = store.adopt(fp)? {
                    inner.journal.append(&JobRecord::Done { fp, version })?;
                    *adopted += 1;
                    return Ok(JobState::Done { version });
                }
            }
            inner.pending.push_back(fp);
            Ok(JobState::Pending)
        }
        JobState::Done { version } => {
            // CURRENT may have been lost between rename and cutover.
            if store.current_version(fp).is_none() {
                store.adopt(fp)?;
            }
            Ok(JobState::Done { version: *version })
        }
        other => Ok(other.clone()),
    }
}

/// One dispatcher iteration: wait for admitted work (or drain), run the
/// whole batch through the pool, commit outcomes. Returns `true` when
/// the daemon is drained and the dispatcher should exit.
fn dispatch_once(shared: &Shared) -> bool {
    let batch: Vec<WorkUnit<JobSpec>> = {
        let mut inner = shared.inner.lock().unwrap();
        loop {
            if !inner.pending.is_empty() {
                break;
            }
            if inner.draining {
                return true; // nothing pending, nothing will be: drained
            }
            inner = shared.cond.wait(inner).unwrap();
        }
        let fps: Vec<u64> = inner.pending.drain(..).collect();
        inner.in_flight = fps.clone();
        fps.iter()
            .map(|&fp| WorkUnit {
                label: format!("{fp:016x}"),
                fingerprint: fp,
                input: inner.jobs[&fp].spec.clone(),
            })
            .collect()
    };

    let opts = PoolOptions {
        jobs: shared.config.jobs,
        max_attempts: shared.config.max_attempts,
        ..PoolOptions::default()
    };
    let cap = shared.config.cap;
    let stats = run_pool(
        &batch,
        &opts,
        |_worker, unit| run_job(&unit.input, &cap),
        |unit, worker, attempt, _t| {
            // Journal the lease before the attempt runs: a crash now
            // replays as an orphaned lease, which is what it is.
            let mut inner = shared.inner.lock().unwrap();
            let _ = inner.journal.append(&JobRecord::Lease {
                fp: unit.fingerprint,
                worker,
                attempt,
            });
            if let Some(job) = inner.jobs.get_mut(&unit.fingerprint) {
                job.state = JobState::Running;
            }
        },
        |unit, outcome| commit_outcome(shared, unit.fingerprint, outcome),
    );

    let mut inner = shared.inner.lock().unwrap();
    inner.pool.leases += stats.leases;
    inner.pool.lease_expired += stats.lease_expired;
    inner.pool.retries += stats.retries;
    inner.pool.duplicates += stats.duplicates;
    inner.in_flight.clear();
    shared.cond.notify_all();
    false
}

/// Commits one pool outcome: store promotion first (idempotent by
/// content), then the journal record, then the in-memory state. All
/// errors fold into a `failed` state instead of panicking — the
/// supervisor is for bugs, not for `io::Error`.
fn commit_outcome(shared: &Shared, fp: u64, outcome: UnitOutcome<crate::spec::Artifacts>) {
    let mut inner = shared.inner.lock().unwrap();
    let state = match outcome {
        UnitOutcome::Completed(artifacts) => match shared.store.promote(fp, &artifacts) {
            Ok(version) => {
                inner.pool.completed += 1;
                let _ = inner.journal.append(&JobRecord::Done { fp, version });
                JobState::Done { version }
            }
            Err(e) => {
                inner.pool.failed += 1;
                let error = format!("result promotion failed: {e}");
                let _ = inner.journal.append(&JobRecord::Failed {
                    fp,
                    error: error.clone(),
                });
                JobState::Failed { error }
            }
        },
        UnitOutcome::Failed { error, attempts } => {
            inner.pool.failed += 1;
            let error = format!("{error} (after {attempts} attempt(s))");
            let _ = inner.journal.append(&JobRecord::Failed {
                fp,
                error: error.clone(),
            });
            JobState::Failed { error }
        }
    };
    if let Some(job) = inner.jobs.get_mut(&fp) {
        job.state = state;
    }
    inner.crash_counts.remove(&fp);
    inner.in_flight.retain(|&f| f != fp);
    shared.cond.notify_all();
}

/// Supervisor callback: blame the panic on whatever was in flight.
/// First offence re-queues the job; a second kills-the-dispatcher
/// offence quarantines it.
fn on_dispatcher_panic(shared: &Shared, msg: &str) {
    let mut inner = shared.inner.lock().unwrap();
    inner.worker_restarts += 1;
    let blamed: Vec<u64> = std::mem::take(&mut inner.in_flight);
    for fp in blamed {
        let strikes = inner.crash_counts.entry(fp).or_insert(0);
        *strikes += 1;
        let state = if *strikes >= 2 {
            let error = format!("quarantined: killed the dispatcher twice (last: {msg})");
            let _ = inner.journal.append(&JobRecord::Quarantined {
                fp,
                error: error.clone(),
            });
            JobState::Quarantined { error }
        } else {
            inner.pending.push_back(fp);
            JobState::Pending
        };
        if let Some(job) = inner.jobs.get_mut(&fp) {
            job.state = state;
        }
    }
    println!("[alertd] dispatcher panicked ({msg}); restarting");
    shared.cond.notify_all();
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

fn handle_connection(stream: Stream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,          // EOF
            Ok(_) => {}
            Err(_) => return,         // idle timeout or broken pipe
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse_line(&line) {
            Some(req) => handle_request(shared, req),
            None => Response::error(ErrorKind::BadRequest, "unparseable request line"),
        };
        let mut out = response.to_jsonl();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    shared.inner.lock().unwrap().requests += 1;
    match req {
        Request::Submit { spec, force } => handle_submit(shared, spec, force),
        Request::Status { job } => handle_status(shared, job),
        Request::Result { job, artifact } => handle_result(shared, job, &artifact),
        Request::Cancel { job } => handle_cancel(shared, job),
        Request::Query { job, query } => handle_query(shared, job, &query),
        Request::Health => handle_health(shared),
        Request::Drain => handle_drain(shared),
        Request::Rollback { job } => handle_rollback(shared, job),
    }
}

fn handle_submit(shared: &Shared, spec: JobSpec, force: bool) -> Response {
    if let Err(e) = spec.validate() {
        return Response::error(ErrorKind::BadRequest, e);
    }
    let fp = spec.fingerprint();
    let mut inner = shared.inner.lock().unwrap();
    if inner.draining {
        return Response::error(ErrorKind::Shutdown, "daemon is draining");
    }
    // Idempotence by fingerprint: an equivalent submission returns the
    // job's existing trajectory instead of a duplicate run.
    if let Some(job) = inner.jobs.get(&fp) {
        match &job.state {
            JobState::Done { version } if !force => {
                return Response::ok()
                    .with_str("job", format!("{fp:016x}"))
                    .with_str("state", "done")
                    .with_num("version", version)
                    .with_num("cached", 1);
            }
            JobState::Pending | JobState::Running => {
                return Response::ok()
                    .with_str("job", format!("{fp:016x}"))
                    .with_str("state", job.state.as_str())
                    .with_num("cached", 1);
            }
            JobState::Quarantined { error } if !force => {
                return Response::error(ErrorKind::Failed, error.clone());
            }
            _ => {} // failed / cancelled / forced: admit a re-run
        }
    }
    if Shared::outstanding(&inner) >= shared.config.queue_cap {
        return Response::error(
            ErrorKind::Busy,
            format!("queue full ({} outstanding)", shared.config.queue_cap),
        );
    }
    // Journal before ack: once the client sees this response, the job
    // survives any crash.
    let rec = JobRecord::Submit {
        fp,
        force,
        spec: spec.clone(),
    };
    if let Err(e) = inner.journal.append(&rec) {
        return Response::error(ErrorKind::Failed, format!("journal append failed: {e}"));
    }
    inner.jobs.insert(
        fp,
        JobEntry {
            spec,
            state: JobState::Pending,
        },
    );
    inner.pending.push_back(fp);
    shared.cond.notify_all();
    Response::ok()
        .with_str("job", format!("{fp:016x}"))
        .with_str("state", "pending")
        .with_num("cached", 0)
}

fn handle_status(shared: &Shared, fp: u64) -> Response {
    let inner = shared.inner.lock().unwrap();
    let Some(job) = inner.jobs.get(&fp) else {
        return Response::error(ErrorKind::NotFound, format!("no job {fp:016x}"));
    };
    let mut resp = Response::ok()
        .with_str("job", format!("{fp:016x}"))
        .with_str("state", job.state.as_str());
    match &job.state {
        JobState::Done { version } => resp = resp.with_num("version", version),
        JobState::Failed { error } | JobState::Quarantined { error } => {
            resp = resp.with_str("error", error.clone());
        }
        _ => {}
    }
    resp
}

fn handle_result(shared: &Shared, fp: u64, artifact: &str) -> Response {
    {
        let inner = shared.inner.lock().unwrap();
        match inner.jobs.get(&fp) {
            None => return Response::error(ErrorKind::NotFound, format!("no job {fp:016x}")),
            Some(job) if !matches!(job.state, JobState::Done { .. }) => {
                return Response::error(
                    ErrorKind::NotFound,
                    format!("job {fp:016x} is {}, not done", job.state.as_str()),
                );
            }
            Some(_) => {}
        }
    }
    match shared.store.read_current_artifact(fp, artifact) {
        Some(body) => {
            let version = shared.store.current_version(fp).unwrap_or(0);
            Response::ok()
                .with_num("version", version)
                .with_str("artifact", artifact)
                .with_str("payload", body)
        }
        None => Response::error(
            ErrorKind::NotFound,
            format!(
                "no artifact '{artifact}' (have: {})",
                shared.store.current_artifact_names(fp).join(", ")
            ),
        ),
    }
}

fn handle_cancel(shared: &Shared, fp: u64) -> Response {
    let mut inner = shared.inner.lock().unwrap();
    let Some(job) = inner.jobs.get(&fp) else {
        return Response::error(ErrorKind::NotFound, format!("no job {fp:016x}"));
    };
    match &job.state {
        JobState::Pending if inner.pending.contains(&fp) => {
            if let Err(e) = inner.journal.append(&JobRecord::Cancelled { fp }) {
                return Response::error(ErrorKind::Failed, format!("journal append failed: {e}"));
            }
            inner.pending.retain(|&f| f != fp);
            inner.jobs.get_mut(&fp).unwrap().state = JobState::Cancelled;
            shared.cond.notify_all();
            Response::ok()
                .with_str("job", format!("{fp:016x}"))
                .with_str("state", "cancelled")
        }
        state => Response::error(
            ErrorKind::Failed,
            format!("cannot cancel a {} job", state.as_str()),
        ),
    }
}

fn handle_query(shared: &Shared, fp: u64, query: &QueryRequest) -> Response {
    let Some(text) = shared.store.read_current_artifact(fp, "trace.jsonl") else {
        return Response::error(
            ErrorKind::NotFound,
            format!("job {fp:016x} has no stored trace (submit with trace enabled)"),
        );
    };
    let events = match parse_trace(&text) {
        Ok(ev) => ev,
        Err(e) => return Response::error(ErrorKind::Failed, format!("stored trace: {e}")),
    };
    let filter = EventFilter {
        node: query.node,
        t_min: query.after,
        t_max: query.before,
        kind: query.kind.clone(),
        drop_reason: query.reason.clone(),
        packet: query.packet,
    };
    let (payload, matched) = match query.verb.as_str() {
        "filter" => {
            let selected = filter_events(&events, &filter);
            let body = if query.format == "csv" {
                render_events_csv(&selected)
            } else {
                render_events_jsonl(&selected)
            };
            (body, selected.len())
        }
        "follow" => {
            let Some(packet) = query.packet else {
                return Response::error(ErrorKind::BadRequest, "follow requires a packet id");
            };
            let selected = follow_packet(&events, packet);
            let body = if query.format == "csv" {
                render_events_csv(&selected)
            } else {
                render_events_jsonl(&selected)
            };
            (body, selected.len())
        }
        "windows" => {
            let Some(every) = query.every_s else {
                return Response::error(ErrorKind::BadRequest, "windows requires an interval");
            };
            if !every.is_finite() || every <= 0.0 {
                return Response::error(ErrorKind::BadRequest, "interval must be positive");
            }
            let selected: Vec<_> = filter_events(&events, &filter)
                .into_iter()
                .cloned()
                .collect();
            let windows = window_aggregates(&selected, every);
            let body = if query.format == "csv" {
                render_windows_csv(&windows)
            } else {
                render_windows_json(every, &windows)
            };
            (body, selected.len())
        }
        other => {
            return Response::error(
                ErrorKind::BadRequest,
                format!("unknown query verb '{other}' (filter|follow|windows)"),
            );
        }
    };
    Response::ok()
        .with_num("events", matched)
        .with_str("payload", payload)
}

fn handle_health(shared: &Shared) -> Response {
    let mut inner = shared.inner.lock().unwrap();
    let mut by_state: BTreeMap<&'static str, u64> = BTreeMap::new();
    for job in inner.jobs.values() {
        *by_state.entry(job.state.as_str()).or_insert(0) += 1;
    }
    let lag = Shared::outstanding(&inner) as u64;
    let uptime = shared.started.elapsed().as_secs_f64();

    // Feed the same counters into the daemon's own alert-timeseries/1
    // series, flushed as daemon-timeseries.jsonl on drain.
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (state, n) in &by_state {
        counters.insert(format!("daemon.jobs_{state}"), *n);
    }
    counters.insert("daemon.journal_lag".into(), lag);
    counters.insert("daemon.requests".into(), inner.requests);
    counters.insert("daemon.worker_restarts".into(), u64::from(inner.worker_restarts));
    counters.insert("pool.leases".into(), inner.pool.leases);
    counters.insert("pool.lease_expired".into(), inner.pool.lease_expired);
    counters.insert("pool.retries".into(), inner.pool.retries);
    counters.insert("pool.duplicates".into(), inner.pool.duplicates);
    counters.insert("pool.committed".into(), inner.pool.completed);
    counters.insert("pool.failed".into(), inner.pool.failed);
    if inner.series.samples.last().map_or(true, |s| uptime > s.t) {
        let snap = RegistrySnapshot {
            counters: counters.clone(),
            histograms: BTreeMap::new(),
        };
        inner.series.record(uptime, &snap);
    }

    let mut resp = Response::ok()
        .with_num("uptime_s", format!("{:.3}", uptime))
        .with_num("jobs", inner.jobs.len())
        .with_num("journal_records", inner.journal.records())
        .with_num("journal_lag", lag)
        .with_num("queue_cap", shared.config.queue_cap)
        .with_num("workers", shared.config.jobs)
        .with_num("draining", u8::from(inner.draining));
    for state in ["pending", "running", "done", "failed", "cancelled", "quarantined"] {
        resp = resp.with_num(
            &format!("jobs_{state}"),
            by_state.get(state).copied().unwrap_or(0),
        );
    }
    resp.with_num("worker_restarts", inner.worker_restarts)
        .with_num("requests", inner.requests)
        .with_num("pool_leases", inner.pool.leases)
        .with_num("pool_lease_expired", inner.pool.lease_expired)
        .with_num("pool_retries", inner.pool.retries)
        .with_num("pool_duplicates", inner.pool.duplicates)
        .with_num("pool_committed", inner.pool.completed)
        .with_num("pool_failed", inner.pool.failed)
}

fn handle_drain(shared: &Shared) -> Response {
    let mut inner = shared.inner.lock().unwrap();
    inner.draining = true;
    shared.cond.notify_all();
    // Admission is closed; wait for every admitted job to settle. The
    // dispatcher sees `draining` and exits once the queue is empty.
    while Shared::outstanding(&inner) > 0 {
        inner = shared.cond.wait(inner).unwrap();
    }
    let completed = inner.pool.completed;
    let failed = inner.pool.failed;
    inner.shutdown = true;
    shared.cond.notify_all();
    Response::ok()
        .with_num("drained", 1u8)
        .with_num("completed", completed)
        .with_num("failed", failed)
}

fn handle_rollback(shared: &Shared, fp: u64) -> Response {
    let mut inner = shared.inner.lock().unwrap();
    match inner.jobs.get(&fp).map(|j| &j.state) {
        None => return Response::error(ErrorKind::NotFound, format!("no job {fp:016x}")),
        Some(JobState::Done { .. }) => {}
        Some(state) => {
            return Response::error(
                ErrorKind::Failed,
                format!("cannot roll back a {} job", state.as_str()),
            );
        }
    }
    match shared.store.rollback(fp) {
        Ok(version) => {
            if let Err(e) = inner.journal.append(&JobRecord::Rollback { fp, version }) {
                return Response::error(ErrorKind::Failed, format!("journal append failed: {e}"));
            }
            inner.jobs.get_mut(&fp).unwrap().state = JobState::Done { version };
            Response::ok()
                .with_str("job", format!("{fp:016x}"))
                .with_num("version", version)
        }
        Err(e) => Response::error(ErrorKind::Failed, e.to_string()),
    }
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

// ---------------------------------------------------------------------
// Listener abstraction (TCP everywhere, Unix sockets where they exist)
// ---------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

/// One accepted connection.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Listener {
    fn bind(addr: &BindAddr) -> io::Result<Listener> {
        match addr {
            BindAddr::Tcp(hostport) => Ok(Listener::Tcp(TcpListener::bind(hostport)?)),
            #[cfg(unix)]
            BindAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(
                    std::os::unix::net::UnixListener::bind(path)?,
                    path.clone(),
                ))
            }
            #[cfg(not(unix))]
            BindAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The `alertd.endpoint` line clients resolve: `tcp HOST:PORT` or
    /// `unix PATH`.
    fn advertisement(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp {a}"),
                Err(_) => "tcp unknown".to_owned(),
            },
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix {}", path.display()),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Stream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use std::io::{BufRead as _, Write as _};
    use std::net::TcpStream;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alertd_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_spec(seed: u64) -> JobSpec {
        JobSpec {
            nodes: 20,
            pairs: 1,
            duration_s: 2.0,
            seed,
            trace: true,
            ..JobSpec::default()
        }
    }

    struct Client {
        reader: std::io::BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(dir: &std::path::Path) -> Client {
            let text = std::fs::read_to_string(dir.join("alertd.endpoint")).unwrap();
            let addr = text.trim().strip_prefix("tcp ").unwrap().to_owned();
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: std::io::BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn roundtrip(&mut self, req: &Request) -> Response {
            let mut line = req.to_jsonl();
            line.push('\n');
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.flush().unwrap();
            let mut resp = String::new();
            self.reader.read_line(&mut resp).unwrap();
            Response::parse_line(&resp).expect("valid response line")
        }
    }

    fn wait_done(client: &mut Client, fp: u64) -> Response {
        for _ in 0..600 {
            let resp = client.roundtrip(&Request::Status { job: fp });
            match resp.str_field("state") {
                Some("pending") | Some("running") => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => return resp,
            }
        }
        panic!("job {fp:016x} never settled");
    }

    /// End-to-end in one process: submit → run → result → query →
    /// idempotent resubmit → drain. Exercises the full admission /
    /// execution / promotion / protocol path without subprocesses
    /// (the kill -9 drill lives in tests/daemon_smoke.rs).
    #[test]
    fn submit_runs_to_done_and_drain_exits() {
        let dir = scratch("e2e");
        let config = ServerConfig {
            dir: dir.clone(),
            jobs: 2,
            ..ServerConfig::default()
        };
        let server = thread::spawn(move || serve(config).unwrap());
        let endpoint = dir.join("alertd.endpoint");
        for _ in 0..200 {
            if endpoint.exists() {
                break;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let mut client = Client::connect(&dir);
        let spec = quick_spec(1);
        let fp = spec.fingerprint();

        let resp = client.roundtrip(&Request::Submit {
            spec: spec.clone(),
            force: false,
        });
        assert_eq!(resp.str_field("state"), Some("pending"));
        assert_eq!(resp.num_field("cached"), Some("0"));

        let done = wait_done(&mut client, fp);
        assert_eq!(done.str_field("state"), Some("done"), "{done:?}");
        assert_eq!(done.num_field("version"), Some("1"));

        // Idempotent resubmit: served from the store, no second run.
        let resp = client.roundtrip(&Request::Submit { spec, force: false });
        assert_eq!(resp.num_field("cached"), Some("1"));

        let resp = client.roundtrip(&Request::Result {
            job: fp,
            artifact: "metrics.json".to_owned(),
        });
        let payload = resp.str_field("payload").expect("payload");
        assert!(payload.starts_with("{\"schema\":\"alertd-result/1\""));

        let resp = client.roundtrip(&Request::Query {
            job: fp,
            query: QueryRequest {
                verb: "filter".to_owned(),
                kind: Some("app_send".to_owned()),
                ..QueryRequest::default()
            },
        });
        assert!(resp.num_field("events").is_some(), "{resp:?}");

        let health = client.roundtrip(&Request::Health);
        assert_eq!(health.num_field("jobs_done"), Some("1"));

        let resp = client.roundtrip(&Request::Drain);
        assert_eq!(resp.num_field("drained"), Some("1"));
        server.join().unwrap();
        assert!(!endpoint.exists(), "endpoint removed on drain");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Admission control: with capacity 1 the second distinct job is
    /// refused `busy`; a bad spec is refused `bad_request`.
    #[test]
    fn admission_is_bounded_and_typed() {
        // `queue_cap: 0` closes admission outright, which pins the busy
        // path without racing a real job against it — in optimised
        // builds even large scenarios can finish between two in-process
        // round trips, so "fill the queue then submit" is inherently
        // timing-dependent.
        let dir = scratch("busy");
        let config = ServerConfig {
            dir: dir.clone(),
            jobs: 1,
            queue_cap: 0,
            ..ServerConfig::default()
        };
        let server = thread::spawn(move || serve(config).unwrap());
        let endpoint = dir.join("alertd.endpoint");
        for _ in 0..200 {
            if endpoint.exists() {
                break;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let mut client = Client::connect(&dir);
        let resp = client.roundtrip(&Request::Submit {
            spec: quick_spec(12),
            force: false,
        });
        match resp {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Busy),
            other => panic!("expected busy, got {other:?}"),
        }

        // Validation precedes admission: a malformed spec is refused
        // bad_request even while the queue is closed.
        let resp = client.roundtrip(&Request::Submit {
            spec: JobSpec {
                protocol: "ospf".to_owned(),
                ..JobSpec::default()
            },
            force: false,
        });
        match resp {
            Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("expected bad_request, got {other:?}"),
        }

        let resp = client.roundtrip(&Request::Drain);
        assert_eq!(resp.num_field("drained"), Some("1"));
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! The newline-delimited JSON wire protocol between `alertctl` and
//! `alertd`.
//!
//! One request line, one response line, per exchange. Both directions
//! use the flat-object codec from `alert_bench::orchestrate` — no
//! nesting, stable key order, every message greppable. Requests carry
//! an `"op"` discriminator; responses carry `"ok":1` plus payload
//! fields, or `"ok":0` with a typed `"error"` kind and a human
//! `"message"`:
//!
//! ```json
//! {"op":"submit","force":0,"protocol":"gpsr","nodes":60,…}
//! {"ok":1,"job":"00ab…","state":"pending","cached":0}
//! {"ok":0,"error":"busy","message":"queue full (64 outstanding)"}
//! ```
//!
//! Error kinds are part of the contract: `busy` and `shutdown` are
//! *admission* outcomes that map to client exit code 2 (retryable by a
//! supervisor), everything else to exit 1.

use crate::spec::{parse_fp_hex, JobSpec};
use alert_bench::{parse_flat_object, push_str_escaped, Val};
use std::fmt::Write as _;

/// Typed failure classes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission refused: the bounded queue is full. Retry later.
    Busy,
    /// Admission refused: the daemon is draining. Find another daemon.
    Shutdown,
    /// The named job / artifact / version does not exist.
    NotFound,
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The operation ran and failed (job error, rollback floor, ...).
    Failed,
}

impl ErrorKind {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::NotFound => "not_found",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Failed => "failed",
        }
    }

    /// Parses a wire token back.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "busy" => ErrorKind::Busy,
            "shutdown" => ErrorKind::Shutdown,
            "not_found" => ErrorKind::NotFound,
            "bad_request" => ErrorKind::BadRequest,
            "failed" => ErrorKind::Failed,
            _ => return None,
        })
    }

    /// The `alertctl` process exit code for this error: 2 for the
    /// admission outcomes (`busy`, `shutdown`), 1 otherwise — matching
    /// the repo-wide 0/1/2 convention.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Busy | ErrorKind::Shutdown => 2,
            _ => 1,
        }
    }
}

/// A trace query carried by [`Request::Query`]. Unset filters are
/// omitted on the wire; the server turns this into an
/// `alert_sim::EventFilter` against the job's stored `trace.jsonl`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryRequest {
    /// `"filter"`, `"follow"`, or `"windows"`.
    pub verb: String,
    /// Only events attributed to this node.
    pub node: Option<u64>,
    /// Only events at or after this simulated time.
    pub after: Option<f64>,
    /// Only events at or before this simulated time.
    pub before: Option<f64>,
    /// Only events of this kind.
    pub kind: Option<String>,
    /// Only drops with this reason.
    pub reason: Option<String>,
    /// Packet id (`follow` requires it; filters on it otherwise).
    pub packet: Option<u64>,
    /// Window width for `windows`, simulated seconds.
    pub every_s: Option<f64>,
    /// Output format: `"jsonl"` / `"csv"` (events), `"json"` / `"csv"`
    /// (windows). Empty means the verb's default.
    pub format: String,
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a job (idempotent by fingerprint; `force` re-runs).
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Re-run even if the fingerprint already completed.
        force: bool,
    },
    /// Report a job's state.
    Status {
        /// Job fingerprint.
        job: u64,
    },
    /// Fetch one artifact of the job's current result version.
    Result {
        /// Job fingerprint.
        job: u64,
        /// Artifact file name (e.g. `metrics.json`).
        artifact: String,
    },
    /// Cancel a still-pending job.
    Cancel {
        /// Job fingerprint.
        job: u64,
    },
    /// Query the job's stored trace.
    Query {
        /// Job fingerprint.
        job: u64,
        /// What to ask.
        query: QueryRequest,
    },
    /// Daemon health counters.
    Health,
    /// Stop admitting, finish everything, flush, exit 0.
    Drain,
    /// Point the job's `CURRENT` at the previous result version.
    Rollback {
        /// Job fingerprint.
        job: u64,
    },
}

impl Request {
    /// Encodes the request as one wire line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"op\":");
        match self {
            Request::Submit { spec, force } => {
                let _ = write!(s, "\"submit\",\"force\":{},", u8::from(*force));
                spec.push_fields(&mut s);
            }
            Request::Status { job } => {
                let _ = write!(s, "\"status\",\"job\":\"{job:016x}\"");
            }
            Request::Result { job, artifact } => {
                let _ = write!(s, "\"result\",\"job\":\"{job:016x}\",\"artifact\":");
                push_str_escaped(&mut s, artifact);
            }
            Request::Cancel { job } => {
                let _ = write!(s, "\"cancel\",\"job\":\"{job:016x}\"");
            }
            Request::Query { job, query } => {
                let _ = write!(s, "\"query\",\"job\":\"{job:016x}\",\"verb\":");
                push_str_escaped(&mut s, &query.verb);
                if let Some(n) = query.node {
                    let _ = write!(s, ",\"node\":{n}");
                }
                if let Some(t) = query.after {
                    let _ = write!(s, ",\"after\":{t:?}");
                }
                if let Some(t) = query.before {
                    let _ = write!(s, ",\"before\":{t:?}");
                }
                if let Some(k) = &query.kind {
                    s.push_str(",\"kind\":");
                    push_str_escaped(&mut s, k);
                }
                if let Some(r) = &query.reason {
                    s.push_str(",\"reason\":");
                    push_str_escaped(&mut s, r);
                }
                if let Some(p) = query.packet {
                    let _ = write!(s, ",\"packet\":{p}");
                }
                if let Some(e) = query.every_s {
                    let _ = write!(s, ",\"every\":{e:?}");
                }
                if !query.format.is_empty() {
                    s.push_str(",\"format\":");
                    push_str_escaped(&mut s, &query.format);
                }
            }
            Request::Health => s.push_str("\"health\""),
            Request::Drain => s.push_str("\"drain\""),
            Request::Rollback { job } => {
                let _ = write!(s, "\"rollback\",\"job\":\"{job:016x}\"");
            }
        }
        s.push('}');
        s
    }

    /// Decodes one wire line. `None` on malformation — the server
    /// answers with a `bad_request` error.
    pub fn parse_line(line: &str) -> Option<Request> {
        let fields = parse_flat_object(line)?;
        let get_str = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                Val::Str(s) if k == key => Some(s.clone()),
                _ => None,
            })
        };
        let get_num = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                Val::Num(n) if k == key => Some(n.clone()),
                _ => None,
            })
        };
        let job = || get_str("job").and_then(|s| parse_fp_hex(&s));
        Some(match get_str("op")?.as_str() {
            "submit" => Request::Submit {
                spec: JobSpec::from_fields(&fields)?,
                force: get_num("force")
                    .and_then(|n| n.parse::<u8>().ok())
                    .unwrap_or(0)
                    != 0,
            },
            "status" => Request::Status { job: job()? },
            "result" => Request::Result {
                job: job()?,
                artifact: get_str("artifact")?,
            },
            "cancel" => Request::Cancel { job: job()? },
            "query" => Request::Query {
                job: job()?,
                query: QueryRequest {
                    verb: get_str("verb")?,
                    node: get_num("node").and_then(|n| n.parse().ok()),
                    after: get_num("after").and_then(|n| n.parse().ok()),
                    before: get_num("before").and_then(|n| n.parse().ok()),
                    kind: get_str("kind"),
                    reason: get_str("reason"),
                    packet: get_num("packet").and_then(|n| n.parse().ok()),
                    every_s: get_num("every").and_then(|n| n.parse().ok()),
                    format: get_str("format").unwrap_or_default(),
                },
            },
            "health" => Request::Health,
            "drain" => Request::Drain,
            "rollback" => Request::Rollback { job: job()? },
            _ => return None,
        })
    }
}

/// One server response: success with flat payload fields, or a typed
/// error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `{"ok":1,…}` — payload fields in insertion order.
    Ok(Vec<(String, Val)>),
    /// `{"ok":0,"error":…,"message":…}`.
    Err {
        /// The typed failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// An empty success, to be extended with the `with_*` builders.
    pub fn ok() -> Response {
        Response::Ok(Vec::new())
    }

    /// A typed error response.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Err {
            kind,
            message: message.into(),
        }
    }

    /// Appends a string payload field (success responses only).
    pub fn with_str(mut self, key: &str, value: impl Into<String>) -> Response {
        if let Response::Ok(fields) = &mut self {
            fields.push((key.to_owned(), Val::Str(value.into())));
        }
        self
    }

    /// Appends a numeric payload field, pre-rendered (success only).
    pub fn with_num(mut self, key: &str, value: impl ToString) -> Response {
        if let Response::Ok(fields) = &mut self {
            fields.push((key.to_owned(), Val::Num(value.to_string())));
        }
        self
    }

    /// The payload string field `key`, if this is a success carrying it.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self {
            Response::Ok(fields) => fields.iter().find_map(|(k, v)| match v {
                Val::Str(s) if k == key => Some(s.as_str()),
                _ => None,
            }),
            Response::Err { .. } => None,
        }
    }

    /// The raw text of numeric payload field `key`, if present.
    pub fn num_field(&self, key: &str) -> Option<&str> {
        match self {
            Response::Ok(fields) => fields.iter().find_map(|(k, v)| match v {
                Val::Num(n) if k == key => Some(n.as_str()),
                _ => None,
            }),
            Response::Err { .. } => None,
        }
    }

    /// Encodes the response as one wire line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            Response::Ok(fields) => {
                let mut s = String::from("{\"ok\":1");
                for (k, v) in fields {
                    s.push(',');
                    push_str_escaped(&mut s, k);
                    s.push(':');
                    match v {
                        Val::Str(t) => push_str_escaped(&mut s, t),
                        Val::Num(n) => s.push_str(n),
                    }
                }
                s.push('}');
                s
            }
            Response::Err { kind, message } => {
                let mut s = String::from("{\"ok\":0,\"error\":");
                push_str_escaped(&mut s, kind.as_str());
                s.push_str(",\"message\":");
                push_str_escaped(&mut s, message);
                s.push('}');
                s
            }
        }
    }

    /// Decodes one wire line. `None` when the line is not a valid
    /// response object.
    pub fn parse_line(line: &str) -> Option<Response> {
        let fields = parse_flat_object(line)?;
        let ok = fields.iter().find_map(|(k, v)| match v {
            Val::Num(n) if k == "ok" => n.parse::<u8>().ok(),
            _ => None,
        })?;
        if ok != 0 {
            let payload: Vec<(String, Val)> = fields
                .into_iter()
                .filter(|(k, _)| k != "ok")
                .collect();
            return Some(Response::Ok(payload));
        }
        let mut kind = None;
        let mut message = String::new();
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("error", Val::Str(s)) => kind = ErrorKind::parse(&s),
                ("message", Val::Str(s)) => message = s,
                _ => {}
            }
        }
        Some(Response::Err {
            kind: kind?,
            message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_round_trips() {
        let job = JobSpec::default().fingerprint();
        let requests = [
            Request::Submit {
                spec: JobSpec::default(),
                force: true,
            },
            Request::Status { job },
            Request::Result {
                job,
                artifact: "metrics.json".to_owned(),
            },
            Request::Cancel { job },
            Request::Query {
                job,
                query: QueryRequest {
                    verb: "filter".to_owned(),
                    node: Some(3),
                    after: Some(1.25),
                    before: None,
                    kind: Some("drop".to_owned()),
                    reason: Some("ttl_expired".to_owned()),
                    packet: None,
                    every_s: None,
                    format: "csv".to_owned(),
                },
            },
            Request::Query {
                job,
                query: QueryRequest {
                    verb: "windows".to_owned(),
                    every_s: Some(2.0),
                    ..QueryRequest::default()
                },
            },
            Request::Health,
            Request::Drain,
            Request::Rollback { job },
        ];
        for req in requests {
            assert_eq!(Request::parse_line(&req.to_jsonl()), Some(req.clone()));
        }
        assert_eq!(Request::parse_line("{\"op\":\"reboot\"}"), None);
        assert_eq!(Request::parse_line("garbage"), None);
    }

    #[test]
    fn responses_round_trip_and_expose_fields() {
        let ok = Response::ok()
            .with_str("job", "00000000000000ff")
            .with_str("state", "done")
            .with_num("version", 2u32);
        let parsed = Response::parse_line(&ok.to_jsonl()).unwrap();
        assert_eq!(parsed, ok);
        assert_eq!(parsed.str_field("state"), Some("done"));
        assert_eq!(parsed.num_field("version"), Some("2"));
        assert_eq!(parsed.str_field("missing"), None);

        let err = Response::error(ErrorKind::Busy, "queue full (3 outstanding)");
        let parsed = Response::parse_line(&err.to_jsonl()).unwrap();
        assert_eq!(parsed, err);
        match parsed {
            Response::Err { kind, .. } => assert_eq!(kind.exit_code(), 2),
            _ => panic!("expected error"),
        }
    }

    #[test]
    fn error_kinds_are_stable_on_the_wire() {
        for kind in [
            ErrorKind::Busy,
            ErrorKind::Shutdown,
            ErrorKind::NotFound,
            ErrorKind::BadRequest,
            ErrorKind::Failed,
        ] {
            assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("teapot"), None);
        assert_eq!(ErrorKind::Shutdown.exit_code(), 2);
        assert_eq!(ErrorKind::NotFound.exit_code(), 1);
    }

    #[test]
    fn payload_strings_survive_escaping() {
        let body = "line one\nline \"two\"\t{}";
        let resp = Response::ok().with_str("payload", body);
        let parsed = Response::parse_line(&resp.to_jsonl()).unwrap();
        assert_eq!(parsed.str_field("payload"), Some(body));
    }
}

//! Crash-only guarantees of the daemon, exercised through the real
//! `alertd` / `alertctl` binaries: a `kill -9` mid-campaign followed by
//! a restart converges on byte-identical `results/`, admission refuses
//! with exit 2 when the queue is full, a second live daemon on the same
//! directory exits 2 with a pid diagnostic, and a drain exits 0 with
//! every admitted job settled.
//!
//! Under `cargo test` the binary paths come from `CARGO_BIN_EXE_*`;
//! standalone harnesses (the offline check scripts) point `ALERTD_BIN`
//! and `ALERTCTL_BIN` at prebuilt binaries instead.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn alertd_bin() -> Option<PathBuf> {
    if let Some(p) = option_env!("CARGO_BIN_EXE_alertd") {
        return Some(PathBuf::from(p));
    }
    std::env::var_os("ALERTD_BIN").map(PathBuf::from)
}

fn alertctl_bin() -> Option<PathBuf> {
    if let Some(p) = option_env!("CARGO_BIN_EXE_alertctl") {
        return Some(PathBuf::from(p));
    }
    std::env::var_os("ALERTCTL_BIN").map(PathBuf::from)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alertd_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(bin: &Path, dir: &Path, extra: &[&str]) -> Child {
    let mut args = vec![
        "serve".to_owned(),
        "--dir".to_owned(),
        dir.to_str().unwrap().to_owned(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    Command::new(bin)
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn alertd")
}

fn wait_for_endpoint(dir: &Path) {
    let endpoint = dir.join("alertd.endpoint");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !endpoint.exists() {
        assert!(Instant::now() < deadline, "daemon never advertised an endpoint");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn ctl(bin: &Path, dir: &Path, args: &[&str]) -> Output {
    Command::new(bin)
        .arg("--dir")
        .arg(dir)
        .args(args)
        .output()
        .expect("spawn alertctl")
}

fn submit_args(seed: &str) -> Vec<&str> {
    vec![
        "submit", "--nodes", "50", "--pairs", "2", "--duration", "12", "--seed", seed, "--trace",
    ]
}

/// Recursively collects `results/` as (relative path, bytes), sorted.
fn snapshot_results(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, at: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(at).expect("read_dir").flatten() {
            let path = entry.path();
            let rel = path.strip_prefix(root).unwrap().to_str().unwrap().to_owned();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    let root = dir.join("results");
    let mut out = Vec::new();
    if root.is_dir() {
        walk(&root, &root, &mut out);
        // Staging is transient by definition; never part of the
        // comparison (and must be empty after a drain anyway).
        out.retain(|(rel, _)| !rel.starts_with(".stage"));
    }
    out.sort();
    out
}

fn count_journal(dir: &Path, rec: &str) -> usize {
    let text = std::fs::read_to_string(dir.join("alertd-jobs.jsonl")).unwrap_or_default();
    let needle = format!("{{\"rec\":\"{rec}\"");
    text.lines().filter(|l| l.starts_with(&needle)).count()
}

/// The tentpole drill: run a three-job campaign uninterrupted in one
/// directory; run the same campaign in another directory but `kill -9`
/// the daemon once a lease is journaled, restart, drain — and require
/// the two `results/` trees to be byte-identical (modulo CURRENT, which
/// both must agree on anyway).
#[test]
fn kill_nine_mid_campaign_recovers_byte_identical_results() {
    let (Some(daemon), Some(ctl_bin)) = (alertd_bin(), alertctl_bin()) else {
        eprintln!("skipping: daemon binaries unavailable");
        return;
    };
    let seeds = ["101", "102", "103"];

    // --- Reference: uninterrupted run. -------------------------------
    let ref_dir = scratch_dir("ref");
    let mut d = spawn_daemon(&daemon, &ref_dir, &["--jobs", "2"]);
    wait_for_endpoint(&ref_dir);
    for seed in &seeds {
        let out = ctl(&ctl_bin, &ref_dir, &submit_args(seed));
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let out = ctl(&ctl_bin, &ref_dir, &["drain"]);
    assert!(out.status.success(), "drain: {}", String::from_utf8_lossy(&out.stderr));
    assert!(d.wait().expect("wait").success(), "clean daemon exit");
    let reference = snapshot_results(&ref_dir);
    assert!(!reference.is_empty(), "reference produced artifacts");

    // --- Crash drill: kill -9 once execution has started. ------------
    let crash_dir = scratch_dir("crash");
    let mut d = spawn_daemon(&daemon, &crash_dir, &["--jobs", "1"]);
    wait_for_endpoint(&crash_dir);
    for seed in &seeds {
        let out = ctl(&ctl_bin, &crash_dir, &submit_args(seed));
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    // Wait until the journal shows at least one lease (a job is
    // actually executing), then SIGKILL with no warning whatsoever.
    let deadline = Instant::now() + Duration::from_secs(120);
    while count_journal(&crash_dir, "lease") == 0 {
        assert!(Instant::now() < deadline, "no lease ever journaled");
        std::thread::sleep(Duration::from_millis(20));
    }
    d.kill().expect("kill -9 the daemon");
    d.wait().expect("reap");

    // The ack is durable: every submission survived the crash.
    assert_eq!(count_journal(&crash_dir, "submit"), seeds.len());

    // --- Restart: recovery is the startup path. ----------------------
    // SIGKILL left the old endpoint advertisement behind; drop it so
    // the poll below cannot race onto the dead daemon's port. (The
    // daemon also clears it on startup once it holds the lock.)
    let _ = std::fs::remove_file(crash_dir.join("alertd.endpoint"));
    let mut d = spawn_daemon(&daemon, &crash_dir, &["--jobs", "2"]);
    wait_for_endpoint(&crash_dir);
    // Idempotent resubmission while recovery re-runs: must not mint
    // duplicate work (exactly-once-effective by fingerprint).
    for seed in &seeds {
        let out = ctl(&ctl_bin, &crash_dir, &submit_args(seed));
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let out = ctl(&ctl_bin, &crash_dir, &["drain"]);
    assert!(out.status.success(), "drain after recovery");
    assert!(d.wait().expect("wait").success());

    // Byte-identical results, exactly one done per job, no extra
    // versions minted by the re-run.
    let recovered = snapshot_results(&crash_dir);
    assert_eq!(
        reference.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        recovered.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "same artifact tree shape"
    );
    for ((pa, ba), (pb, bb)) in reference.iter().zip(&recovered) {
        assert_eq!(pa, pb);
        assert_eq!(ba, bb, "artifact {pa} differs after crash recovery");
    }
    assert_eq!(count_journal(&crash_dir, "done"), seeds.len());
    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

/// Admission control and single-ownership: a full queue refuses with
/// exit 2, a second daemon on a live directory refuses with exit 2 and
/// a pid diagnostic, and a drain exits 0 with every admitted job
/// settled.
///
/// The busy path is pinned with `--queue 0` (admission closed) rather
/// than by racing real jobs against it: in optimised builds even large
/// scenarios finish faster than a client process can spawn, so a
/// "fill the queue then submit" drill is timing-dependent by
/// construction. `--queue 0` exercises the identical rejection path
/// deterministically.
#[test]
fn busy_queue_and_second_daemon_both_exit_two() {
    let (Some(daemon), Some(ctl_bin)) = (alertd_bin(), alertctl_bin()) else {
        eprintln!("skipping: daemon binaries unavailable");
        return;
    };
    let dir = scratch_dir("busy");

    // --- Phase 1: admission closed — every submit is busy, exit 2. ---
    let mut d = spawn_daemon(&daemon, &dir, &["--jobs", "1", "--queue", "0"]);
    wait_for_endpoint(&dir);
    let out = ctl(
        &ctl_bin,
        &dir,
        &["submit", "--nodes", "20", "--duration", "2", "--seed", "203"],
    );
    assert_eq!(out.status.code(), Some(2), "busy must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("busy"), "stderr names the rejection: {err}");

    // A second daemon on the same directory: exit 2, pid diagnostic.
    let second = Command::new(&daemon)
        .args(["serve", "--dir", dir.to_str().unwrap()])
        .output()
        .expect("spawn second daemon");
    assert_eq!(second.status.code(), Some(2), "second daemon must exit 2");
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(
        err.contains(&format!("pid {}", d.id())),
        "diagnostic names the live owner: {err}"
    );

    // The refused submission journaled nothing — busy precedes the ack.
    assert_eq!(count_journal(&dir, "submit"), 0);

    // Draining the closed daemon exits 0 with nothing to settle.
    let out = ctl(&ctl_bin, &dir, &["drain"]);
    assert!(out.status.success(), "drain: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"drained\":1"), "{stdout}");
    assert!(d.wait().expect("wait").success(), "drained daemon exits 0");

    // --- Phase 2: normal queue — drain settles every admitted job. ---
    let mut d = spawn_daemon(&daemon, &dir, &["--jobs", "2"]);
    wait_for_endpoint(&dir);
    for seed in ["201", "202"] {
        let out = ctl(
            &ctl_bin,
            &dir,
            &["submit", "--nodes", "40", "--pairs", "2", "--duration", "8", "--seed", seed],
        );
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let out = ctl(&ctl_bin, &dir, &["drain"]);
    assert!(out.status.success(), "drain: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"drained\":1"), "{stdout}");
    assert!(d.wait().expect("wait").success(), "drained daemon exits 0");

    // No leases lost: everything admitted reached a terminal record.
    assert_eq!(count_journal(&dir, "done"), 2);
    let _ = std::fs::remove_dir_all(dir);
}

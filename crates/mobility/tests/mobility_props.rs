//! Property-based tests of the mobility models' safety invariants.

use alert_geom::Rect;
use alert_mobility::{
    GroupMobility, GroupMobilityConfig, ManhattanConfig, ManhattanGrid, Mobility, RandomWaypoint,
    RandomWaypointConfig,
};
use proptest::prelude::*;

/// A node is "on the grid" when its y sits on a horizontal lane or its x
/// sits on a vertical lane (floating-point tolerance for the lane snap).
fn on_some_lane(m: &ManhattanGrid, i: usize) -> bool {
    let p = m.position(i);
    m.horizontal_lanes().iter().any(|&y| (p.y - y).abs() <= 1e-6)
        || m.vertical_lanes().iter().any(|&x| (p.x - x).abs() <= 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random waypoint never leaves the field, for arbitrary speeds, node
    /// counts, tick sizes, and seeds.
    #[test]
    fn rwp_stays_in_bounds(
        nodes in 1usize..60,
        speed in 0.0f64..20.0,
        dt in 0.05f64..2.0,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(800.0, 600.0);
        let mut m = RandomWaypoint::new(field, RandomWaypointConfig::fixed_speed(nodes, speed), seed);
        for _ in 0..200 {
            m.step(dt);
        }
        for i in 0..m.len() {
            prop_assert!(field.contains(m.position(i)), "node {i} escaped");
        }
    }

    /// Per-step displacement never exceeds speed x dt.
    #[test]
    fn rwp_speed_bound(
        speed in 0.1f64..15.0,
        dt in 0.1f64..1.5,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(1000.0, 1000.0);
        let mut m = RandomWaypoint::new(field, RandomWaypointConfig::fixed_speed(8, speed), seed);
        for _ in 0..50 {
            let before: Vec<_> = m.positions();
            m.step(dt);
            for (i, after) in m.positions().iter().enumerate() {
                prop_assert!(
                    before[i].distance(*after) <= speed * dt + 1e-9,
                    "node {i} teleported"
                );
            }
        }
    }

    /// Group members never stray beyond the configured group range, for
    /// arbitrary group geometry.
    #[test]
    fn group_range_respected(
        groups in 1usize..8,
        range in 50.0f64..300.0,
        speed in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(1000.0, 1000.0);
        let cfg = GroupMobilityConfig::paper(24, groups, range, speed);
        let mut m = GroupMobility::new(field, cfg, seed);
        for _ in 0..100 {
            m.step(0.5);
        }
        for i in 0..m.len() {
            let c = m.group_center(m.group_of(i));
            // Positions clamp to the field, which can only bring a member
            // *closer* to its centre than the raw offset.
            let d = m.position(i).distance(field.clamp(c));
            prop_assert!(
                d <= range + range + 1e-6,
                "node {i} at {d} m from its (clamped) centre, range {range}"
            );
        }
    }

    /// Group mobility never leaves the field either, for arbitrary group
    /// geometry, speeds, and tick sizes.
    #[test]
    fn group_stays_in_bounds(
        nodes in 1usize..48,
        groups in 1usize..6,
        range in 20.0f64..400.0,
        speed in 0.0f64..15.0,
        dt in 0.05f64..2.0,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(900.0, 700.0);
        let groups = groups.min(nodes);
        let cfg = GroupMobilityConfig::paper(nodes, groups, range, speed);
        let mut m = GroupMobility::new(field, cfg, seed);
        for _ in 0..150 {
            m.step(dt);
        }
        for i in 0..m.len() {
            prop_assert!(field.contains(m.position(i)), "node {i} escaped");
        }
    }

    /// Group membership is a stable partition: every node belongs to a
    /// valid group, membership never changes as the model steps, and
    /// every group's centre stays inside the (unclamped) plane near the
    /// field.
    #[test]
    fn group_membership_is_a_stable_partition(
        nodes in 1usize..40,
        groups in 1usize..6,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(1000.0, 1000.0);
        let groups = groups.min(nodes);
        let cfg = GroupMobilityConfig::paper(nodes, groups, 150.0, 3.0);
        let mut m = GroupMobility::new(field, cfg, seed);
        let before: Vec<usize> = (0..m.len()).map(|i| m.group_of(i)).collect();
        for g in &before {
            prop_assert!(*g < groups, "group id {g} out of range");
        }
        for _ in 0..60 {
            m.step(0.5);
        }
        let after: Vec<usize> = (0..m.len()).map(|i| m.group_of(i)).collect();
        prop_assert_eq!(before, after, "membership churned while stepping");
    }

    /// Manhattan-grid nodes never leave their streets or the field, for
    /// arbitrary grid shapes (including degenerate 1x1 grids), speeds,
    /// tick sizes, turn probabilities, and seeds.
    #[test]
    fn manhattan_stays_on_lanes_and_in_bounds(
        nodes in 1usize..48,
        h in 1usize..7,
        v in 1usize..7,
        turn_prob in 0.0f64..=1.0,
        speed in 0.0f64..25.0,
        dt in 0.05f64..2.0,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(800.0, 600.0);
        let mut cfg = ManhattanConfig::fixed_speed(nodes, h, v, speed);
        cfg.turn_prob = turn_prob;
        let mut m = ManhattanGrid::new(field, cfg, seed);
        for i in 0..m.len() {
            prop_assert!(on_some_lane(&m, i), "node {i} placed off-street");
        }
        for _ in 0..150 {
            m.step(dt);
        }
        for i in 0..m.len() {
            prop_assert!(field.contains(m.position(i)), "node {i} escaped");
            prop_assert!(on_some_lane(&m, i), "node {i} wandered off-street");
        }
    }

    /// Per-step displacement never exceeds speed x dt, even across turns
    /// and edge U-turns: a street path is at least as long as the chord.
    #[test]
    fn manhattan_speed_bound(
        speed in 0.1f64..20.0,
        dt in 0.1f64..1.5,
        classes in 1usize..4,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(1000.0, 1000.0);
        let mut cfg = ManhattanConfig::fixed_speed(10, 3, 3, speed);
        cfg.speed_classes = classes;
        let mut m = ManhattanGrid::new(field, cfg, seed);
        for _ in 0..50 {
            let before: Vec<_> = m.positions();
            m.step(dt);
            for (i, after) in m.positions().iter().enumerate() {
                prop_assert!(
                    before[i].distance(*after) <= speed * dt + 1e-9,
                    "node {i} teleported"
                );
            }
        }
    }

    /// Turn draws come from the model's own seeded stream: same seed,
    /// same trajectories, for arbitrary grid geometry and step counts.
    #[test]
    fn manhattan_determinism(
        h in 1usize..6,
        v in 1usize..6,
        steps in 1usize..60,
        seed in any::<u64>(),
    ) {
        let field = Rect::with_size(500.0, 500.0);
        let run = |s| {
            let mut m = ManhattanGrid::new(field, ManhattanConfig::fixed_speed(7, h, v, 6.0), s);
            for _ in 0..steps {
                m.step(0.4);
            }
            m.positions()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Mobility is a pure function of the seed: same seed, same orbit.
    #[test]
    fn rwp_determinism(seed in any::<u64>(), steps in 1usize..50) {
        let field = Rect::with_size(500.0, 500.0);
        let run = |s| {
            let mut m = RandomWaypoint::new(field, RandomWaypointConfig::fixed_speed(5, 3.0), s);
            for _ in 0..steps {
                m.step(0.7);
            }
            m.positions()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

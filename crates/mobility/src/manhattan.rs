//! Manhattan-grid mobility: nodes move along a lattice of horizontal and
//! vertical streets, turning at intersections with a configurable
//! probability (PAPERS.md: *Simulation Analysis of Routing Protocols using
//! Manhattan Grid Mobility Model in MANET*).
//!
//! Layout: `h_streets` horizontal lanes and `v_streets` vertical lanes,
//! evenly spaced and strictly interior to the field (lane `k` of `n` sits at
//! fraction `(k + 0.5) / n`), so field edges are never intersections. A node
//! lives on exactly one lane, travels along it at a class speed, U-turns at
//! the field edge, and at each intersection crossing draws whether to turn
//! onto the crossing street.
//!
//! Determinism contract (same as the SoA waypoint model): construction draws
//! per node in id order (orientation, lane, offset, direction, speed class —
//! exactly five draws each), and `step` visits nodes in id order, drawing
//! only at intersection crossings. Same seed ⇒ same trajectories.

use crate::{Mobility, EPS};
use alert_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hard cap on intersection crossings handled per node per `step` call.
/// A node crossing this many intersections in one mobility tick is
/// physically absurd (it would need a near-zero lane spacing); the cap
/// bounds the worst-case loop while staying deterministic.
const MAX_CROSSINGS_PER_STEP: usize = 1_000;

/// Parameters for [`ManhattanGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManhattanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of horizontal streets (≥ 1).
    pub h_streets: usize,
    /// Number of vertical streets (≥ 1).
    pub v_streets: usize,
    /// Probability of turning onto the crossing street at an intersection,
    /// in `[0, 1]`.
    pub turn_prob: f64,
    /// Top speed in m/s. Class `c` of `speed_classes` moves at
    /// `speed * (c + 1) / speed_classes`, so one class means everyone moves
    /// at `speed` (matching the other models' fixed-speed convention).
    pub speed: f64,
    /// Number of discrete speed classes (≥ 1), e.g. pedestrian / slow
    /// vehicle / fast vehicle.
    pub speed_classes: usize,
}

impl ManhattanConfig {
    /// A single-class grid: every node moves at `speed`.
    pub fn fixed_speed(nodes: usize, h_streets: usize, v_streets: usize, speed: f64) -> Self {
        ManhattanConfig {
            nodes,
            h_streets,
            v_streets,
            turn_prob: 0.5,
            speed,
            speed_classes: 1,
        }
    }
}

/// Travel axis of a node: along a horizontal or a vertical street.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Horizontal,
    Vertical,
}

/// Street-constrained mobility over a lattice of lanes.
///
/// State is struct-of-arrays like [`crate::RandomWaypoint`]: per-node axis,
/// lane index, coordinate along the lane, direction sign, and speed.
#[derive(Debug, Clone)]
pub struct ManhattanGrid {
    bounds: Rect,
    config: ManhattanConfig,
    /// y-coordinates of the horizontal lanes, ascending.
    h_lanes: Vec<f64>,
    /// x-coordinates of the vertical lanes, ascending.
    v_lanes: Vec<f64>,
    axis: Vec<Axis>,
    lane: Vec<usize>,
    /// Coordinate along the travel axis (x for horizontal, y for vertical).
    along: Vec<f64>,
    /// Direction sign: `+1.0` (toward max corner) or `-1.0`.
    dir: Vec<f64>,
    speed: Vec<f64>,
    rng: StdRng,
}

/// Evenly spaced interior lane coordinates: lane `k` of `n` at fraction
/// `(k + 0.5) / n` of the span.
fn lane_coords(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let span = hi - lo;
    (0..n)
        .map(|k| lo + span * (k as f64 + 0.5) / n as f64)
        .collect()
}

impl ManhattanGrid {
    /// Builds the grid and scatters nodes on random lanes.
    ///
    /// Panics if `h_streets`, `v_streets`, or `speed_classes` is zero (the
    /// simulator's `ScenarioConfig::validate` rejects these before
    /// construction).
    pub fn new(bounds: Rect, config: ManhattanConfig, seed: u64) -> Self {
        assert!(config.h_streets >= 1, "need at least one horizontal street");
        assert!(config.v_streets >= 1, "need at least one vertical street");
        assert!(config.speed_classes >= 1, "need at least one speed class");
        let h_lanes = lane_coords(bounds.min.y, bounds.max.y, config.h_streets);
        let v_lanes = lane_coords(bounds.min.x, bounds.max.x, config.v_streets);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.nodes;
        let mut axis = Vec::with_capacity(n);
        let mut lane = Vec::with_capacity(n);
        let mut along = Vec::with_capacity(n);
        let mut dir = Vec::with_capacity(n);
        let mut speed = Vec::with_capacity(n);
        for _ in 0..n {
            let horizontal = rng.gen_bool(0.5);
            let (a, lanes, lo, hi) = if horizontal {
                (Axis::Horizontal, config.h_streets, bounds.min.x, bounds.max.x)
            } else {
                (Axis::Vertical, config.v_streets, bounds.min.y, bounds.max.y)
            };
            axis.push(a);
            lane.push(rng.gen_range(0..lanes));
            along.push(if hi > lo { rng.gen_range(lo..hi) } else { lo });
            dir.push(if rng.gen_bool(0.5) { 1.0 } else { -1.0 });
            let class = rng.gen_range(0..config.speed_classes);
            speed.push(config.speed * (class as f64 + 1.0) / config.speed_classes as f64);
        }
        ManhattanGrid {
            bounds,
            config,
            h_lanes,
            v_lanes,
            axis,
            lane,
            along,
            dir,
            speed,
            rng,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ManhattanConfig {
        &self.config
    }

    /// y-coordinates of the horizontal lanes.
    pub fn horizontal_lanes(&self) -> &[f64] {
        &self.h_lanes
    }

    /// x-coordinates of the vertical lanes.
    pub fn vertical_lanes(&self) -> &[f64] {
        &self.v_lanes
    }

    /// Travel span and crossing-lane coordinates for a node's current axis.
    fn travel(&self, i: usize) -> (f64, f64, &[f64]) {
        match self.axis[i] {
            Axis::Horizontal => (self.bounds.min.x, self.bounds.max.x, &self.v_lanes),
            Axis::Vertical => (self.bounds.min.y, self.bounds.max.y, &self.h_lanes),
        }
    }

    /// Index of the next crossing strictly ahead of `along` in direction
    /// `dir`, or `None` when the field edge comes first.
    fn next_crossing(crossings: &[f64], along: f64, dir: f64) -> Option<usize> {
        if dir > 0.0 {
            crossings.iter().position(|&c| c > along + EPS)
        } else {
            crossings.iter().rposition(|&c| c < along - EPS)
        }
    }

    /// Advances node `i` by its per-step travel budget, drawing turn
    /// decisions at each intersection crossed.
    fn step_node(&mut self, i: usize, dt: f64) {
        let mut budget = dt * self.speed[i];
        let mut crossings = 0;
        while budget > EPS && crossings < MAX_CROSSINGS_PER_STEP {
            crossings += 1;
            let (lo, hi, cross) = self.travel(i);
            let along = self.along[i];
            let dir = self.dir[i];
            let next = Self::next_crossing(cross, along, dir);
            let target = match next {
                Some(j) => cross[j],
                None => {
                    if dir > 0.0 {
                        hi
                    } else {
                        lo
                    }
                }
            };
            let dist = (target - along).abs();
            if dist > budget {
                self.along[i] = along + dir * budget;
                return;
            }
            self.along[i] = target;
            budget -= dist;
            match next {
                None => {
                    // Field edge: U-turn, no draw.
                    self.dir[i] = -dir;
                }
                Some(j) => {
                    // Intersection: draw the turn decision.
                    if self.rng.gen_range(0.0..1.0) < self.config.turn_prob {
                        // Turn onto the crossing street. The node's old lane
                        // coordinate becomes its position along the new lane.
                        let old_lane_coord = match self.axis[i] {
                            Axis::Horizontal => self.h_lanes[self.lane[i]],
                            Axis::Vertical => self.v_lanes[self.lane[i]],
                        };
                        self.axis[i] = match self.axis[i] {
                            Axis::Horizontal => Axis::Vertical,
                            Axis::Vertical => Axis::Horizontal,
                        };
                        self.lane[i] = j;
                        self.along[i] = old_lane_coord;
                        self.dir[i] = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    }
                }
            }
        }
    }
}

impl Mobility for ManhattanGrid {
    fn len(&self) -> usize {
        self.config.nodes
    }

    fn position(&self, id: usize) -> Point {
        match self.axis[id] {
            Axis::Horizontal => Point::new(self.along[id], self.h_lanes[self.lane[id]]),
            Axis::Vertical => Point::new(self.v_lanes[self.lane[id]], self.along[id]),
        }
    }

    fn step(&mut self, dt: f64) {
        for i in 0..self.config.nodes {
            self.step_node(i, dt);
        }
    }

    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn place(&mut self, positions: &[Point]) {
        // Snap each requested position to the nearest lane point. Draws no
        // RNG, so the turn-draw stream is unchanged by placement.
        for (i, &p) in positions.iter().enumerate().take(self.config.nodes) {
            let p = self.bounds.clamp(p);
            let (hk, hy) = nearest_lane(&self.h_lanes, p.y);
            let (vj, vx) = nearest_lane(&self.v_lanes, p.x);
            if (p.y - hy).abs() <= (p.x - vx).abs() {
                self.axis[i] = Axis::Horizontal;
                self.lane[i] = hk;
                self.along[i] = p.x;
            } else {
                self.axis[i] = Axis::Vertical;
                self.lane[i] = vj;
                self.along[i] = p.y;
            }
        }
    }
}

/// Index and coordinate of the lane closest to `coord`. Lanes are ascending
/// and non-empty.
fn nearest_lane(lanes: &[f64], coord: f64) -> (usize, f64) {
    let mut best = 0;
    for (k, &c) in lanes.iter().enumerate() {
        if (coord - c).abs() < (coord - lanes[best]).abs() {
            best = k;
        }
    }
    (best, lanes[best])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: usize, h: usize, v: usize, seed: u64) -> ManhattanGrid {
        let bounds = Rect::with_size(1000.0, 800.0);
        let cfg = ManhattanConfig {
            nodes,
            h_streets: h,
            v_streets: v,
            turn_prob: 0.5,
            speed: 5.0,
            speed_classes: 3,
        };
        ManhattanGrid::new(bounds, cfg, seed)
    }

    fn on_a_lane(m: &ManhattanGrid, p: Point) -> bool {
        m.horizontal_lanes().iter().any(|&y| (p.y - y).abs() < 1e-6)
            || m.vertical_lanes().iter().any(|&x| (p.x - x).abs() < 1e-6)
    }

    #[test]
    fn nodes_start_on_lanes_and_in_bounds() {
        let m = model(40, 4, 3, 7);
        for i in 0..m.len() {
            let p = m.position(i);
            assert!(m.bounds().contains(p), "node {i} at {p:?} out of bounds");
            assert!(on_a_lane(&m, p), "node {i} at {p:?} off-lane");
        }
    }

    #[test]
    fn nodes_stay_on_lanes_while_moving() {
        let mut m = model(25, 3, 5, 11);
        for _ in 0..200 {
            m.step(0.5);
            for i in 0..m.len() {
                let p = m.position(i);
                assert!(m.bounds().contains(p));
                assert!(on_a_lane(&m, p));
            }
        }
    }

    #[test]
    fn same_seed_same_trajectories() {
        let mut a = model(30, 4, 4, 42);
        let mut b = model(30, 4, 4, 42);
        for _ in 0..100 {
            a.step(0.7);
            b.step(0.7);
        }
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn different_seed_different_trajectories() {
        let a = model(30, 4, 4, 1);
        let b = model(30, 4, 4, 2);
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn single_street_cross_is_supported() {
        // The degenerate 1×1 grid: one horizontal and one vertical street.
        let mut m = model(10, 1, 1, 5);
        for _ in 0..100 {
            m.step(1.0);
            for i in 0..m.len() {
                let p = m.position(i);
                assert!(m.bounds().contains(p));
                assert!(on_a_lane(&m, p));
            }
        }
    }

    #[test]
    fn displacement_is_bounded_by_top_speed() {
        let mut m = model(20, 4, 4, 9);
        let before = m.positions();
        let dt = 2.0;
        m.step(dt);
        for i in 0..m.len() {
            // Street travel can bend around corners, so Euclidean
            // displacement is at most the path budget.
            let d = before[i].distance(m.position(i));
            assert!(
                d <= m.config().speed * dt + 1e-6,
                "node {i} moved {d} > {}",
                m.config().speed * dt
            );
        }
    }

    #[test]
    fn turn_prob_zero_never_changes_lanes() {
        let bounds = Rect::with_size(500.0, 500.0);
        let cfg = ManhattanConfig {
            nodes: 15,
            h_streets: 3,
            v_streets: 3,
            turn_prob: 0.0,
            speed: 8.0,
            speed_classes: 1,
        };
        let mut m = ManhattanGrid::new(bounds, cfg, 3);
        let lanes_before: Vec<_> = (0..m.len()).map(|i| (m.axis[i], m.lane[i])).collect();
        for _ in 0..50 {
            m.step(1.0);
        }
        let lanes_after: Vec<_> = (0..m.len()).map(|i| (m.axis[i], m.lane[i])).collect();
        assert_eq!(lanes_before, lanes_after);
    }

    #[test]
    fn place_snaps_to_nearest_lane() {
        let mut m = model(4, 2, 2, 0);
        let targets = vec![
            Point::new(100.0, 190.0),
            Point::new(240.0, 700.0),
            Point::new(-50.0, 10_000.0),
            Point::new(500.0, 400.0),
        ];
        m.place(&targets);
        for i in 0..m.len() {
            let p = m.position(i);
            assert!(m.bounds().contains(p));
            assert!(on_a_lane(&m, p));
        }
        // Node 0 requested (100, 190): h-lane at y=200 is 10 away, v-lane at
        // x=250 is 150 away, so it snaps onto the y=200 street keeping x.
        assert_eq!(m.position(0), Point::new(100.0, 200.0));
    }
}

//! The random waypoint model (Camp, Boleng & Davies \[17\]).
//!
//! Each node repeatedly: picks a uniformly random waypoint in the field,
//! travels towards it in a straight line at a (possibly random) speed, and
//! optionally pauses on arrival before choosing the next waypoint. The
//! paper's default is 200 nodes at a fixed 2 m/s with no pause.

use crate::{random_speed, Mobility};
use alert_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`RandomWaypoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypointConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Minimum travel speed in m/s.
    pub speed_min: f64,
    /// Maximum travel speed in m/s (equal to `speed_min` for fixed speed).
    pub speed_max: f64,
    /// Pause duration at each waypoint, in seconds.
    pub pause_s: f64,
}

impl RandomWaypointConfig {
    /// The paper's default: fixed speed, no pause.
    pub fn fixed_speed(nodes: usize, speed: f64) -> Self {
        RandomWaypointConfig {
            nodes,
            speed_min: speed,
            speed_max: speed,
            pause_s: 0.0,
        }
    }
}

/// Random waypoint mobility over a rectangular field.
///
/// Node state is struct-of-arrays: the per-tick `step` sweep touches
/// every node's position, waypoint, speed, and pause budget, and the
/// simulator's position refresh streams `pos` alone — parallel flat
/// vectors keep both passes sequential in memory instead of striding
/// over interleaved records. Indexing is by node id across all four
/// vectors; RNG draws happen in node-id order exactly as they did with
/// the array-of-structs layout, so per-seed trajectories are unchanged.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    bounds: Rect,
    config: RandomWaypointConfig,
    pos: Vec<Point>,
    waypoint: Vec<Point>,
    speed: Vec<f64>,
    /// Remaining pause time per node; a node moves only when its entry
    /// is zero.
    pause_left: Vec<f64>,
    rng: StdRng,
}

impl RandomWaypoint {
    /// Creates the model with uniformly random initial positions and
    /// waypoints. Deterministic in `seed`.
    pub fn new(bounds: Rect, config: RandomWaypointConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = Vec::with_capacity(config.nodes);
        let mut waypoint = Vec::with_capacity(config.nodes);
        let mut speed = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes {
            // Draw order per node (position, waypoint, speed) matches the
            // historical layout — same seed, same initial placement.
            pos.push(bounds.random_point(&mut rng));
            waypoint.push(bounds.random_point(&mut rng));
            speed.push(random_speed(&mut rng, config.speed_min, config.speed_max));
        }
        RandomWaypoint {
            bounds,
            config,
            pos,
            waypoint,
            speed,
            pause_left: vec![0.0; config.nodes],
            rng,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &RandomWaypointConfig {
        &self.config
    }
}

impl Mobility for RandomWaypoint {
    fn len(&self) -> usize {
        self.pos.len()
    }

    fn position(&self, id: usize) -> Point {
        self.pos[id]
    }

    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn place(&mut self, positions: &[Point]) {
        // Keep each node's waypoint and speed; only the starting point moves.
        for (i, &p) in positions.iter().enumerate().take(self.pos.len()) {
            self.pos[i] = self.bounds.clamp(p);
        }
    }

    fn step(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        for i in 0..self.pos.len() {
            let mut budget = dt;
            // A node may pause, arrive, and re-depart within one tick; loop
            // until the time budget for this tick is exhausted.
            while budget > 0.0 {
                if self.pause_left[i] > 0.0 {
                    let wait = self.pause_left[i].min(budget);
                    self.pause_left[i] -= wait;
                    budget -= wait;
                    continue;
                }
                if self.speed[i] <= 0.0 {
                    break;
                }
                let to_waypoint = self.pos[i].distance(self.waypoint[i]);
                let travel = self.speed[i] * budget;
                if travel < to_waypoint {
                    self.pos[i] = self.pos[i].advance_towards(self.waypoint[i], travel);
                    budget = 0.0;
                } else {
                    // Arrive, pause, then pick the next leg.
                    self.pos[i] = self.waypoint[i];
                    budget -= if self.speed[i] > 0.0 {
                        to_waypoint / self.speed[i]
                    } else {
                        budget
                    };
                    self.pause_left[i] = self.config.pause_s;
                    self.waypoint[i] = self.bounds.random_point(&mut self.rng);
                    self.speed[i] =
                        random_speed(&mut self.rng, self.config.speed_min, self.config.speed_max);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km() -> Rect {
        Rect::with_size(1000.0, 1000.0)
    }

    #[test]
    fn nodes_stay_in_bounds() {
        let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(50, 8.0), 1);
        for _ in 0..2000 {
            m.step(0.5);
        }
        for i in 0..m.len() {
            assert!(km().contains(m.position(i)), "node {i} escaped");
        }
    }

    #[test]
    fn displacement_bounded_by_speed() {
        let speed = 2.0;
        let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(30, speed), 2);
        let before = m.positions();
        let dt = 3.0;
        m.step(dt);
        for (i, after) in m.positions().iter().enumerate() {
            let d = before[i].distance(*after);
            // Straight-line displacement can only be <= speed * dt (equality
            // when no waypoint turn happened mid-step).
            assert!(d <= speed * dt + 1e-9, "node {i} moved {d} m");
        }
    }

    #[test]
    fn fixed_speed_moves_exactly_at_speed_between_waypoints() {
        let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(1, 2.0), 3);
        // Make sure the first leg is long enough not to turn this step.
        let before = m.position(0);
        m.step(0.25);
        let moved = before.distance(m.position(0));
        assert!((moved - 0.5).abs() < 1e-9, "moved {moved}, expected 0.5");
    }

    #[test]
    fn zero_speed_is_static() {
        let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(10, 0.0), 4);
        let before = m.positions();
        for _ in 0..10 {
            m.step(1.0);
        }
        assert_eq!(m.positions(), before);
    }

    #[test]
    fn pause_delays_departure() {
        let cfg = RandomWaypointConfig {
            nodes: 1,
            speed_min: 1000.0, // reach first waypoint almost immediately
            speed_max: 1000.0,
            pause_s: 100.0,
        };
        let mut m = RandomWaypoint::new(km(), cfg, 5);
        m.step(5.0); // arrives and starts pausing within this step
        let paused_at = m.position(0);
        m.step(10.0); // still pausing (pause is 100 s)
        assert_eq!(m.position(0), paused_at);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(20, 2.0), seed);
            for _ in 0..100 {
                m.step(1.0);
            }
            m.positions()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn long_run_mixes_positions() {
        // After a long time the node should be far from where it started
        // with overwhelming probability (sanity that it doesn't stall).
        let mut m = RandomWaypoint::new(km(), RandomWaypointConfig::fixed_speed(5, 10.0), 6);
        let start = m.position(0);
        let mut max_d: f64 = 0.0;
        for _ in 0..500 {
            m.step(1.0);
            max_d = max_d.max(start.distance(m.position(0)));
        }
        assert!(max_d > 100.0, "node barely moved: {max_d} m");
    }
}

//! Reference-point group mobility (Hong, Gerla, Pei & Chiang \[18\]).
//!
//! Nodes are organized into groups. Each group has a *logical centre* that
//! itself performs random waypoint motion over the field; each member owns
//! a fixed *reference point* (an offset from the centre within the group's
//! movement range) and wanders randomly in a small disc around that
//! reference point. The paper evaluates 10 groups with a 150 m range and
//! 5 groups with a 200 m range (Section 5.1, Fig. 17).

use crate::{random_speed, Mobility};
use alert_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`GroupMobility`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupMobilityConfig {
    /// Total number of nodes, divided as evenly as possible among groups.
    pub nodes: usize,
    /// Number of groups.
    pub groups: usize,
    /// Movement range of each group: members keep within this distance of
    /// the group centre (the paper's 150 m / 200 m parameter).
    pub group_range: f64,
    /// Group-centre speed range in m/s.
    pub speed_min: f64,
    /// Group-centre speed range in m/s.
    pub speed_max: f64,
    /// Member wander radius around the reference point, as a fraction of
    /// `group_range` (the classic RPGM "random motion vector").
    pub wander_fraction: f64,
    /// Member wander speed relative to the group speed.
    pub wander_speed_fraction: f64,
}

impl GroupMobilityConfig {
    /// The paper's Fig. 17 setting: `groups` groups of `nodes` total with
    /// movement range `group_range`, centres moving at fixed `speed`.
    pub fn paper(nodes: usize, groups: usize, group_range: f64, speed: f64) -> Self {
        GroupMobilityConfig {
            nodes,
            groups,
            group_range,
            speed_min: speed,
            speed_max: speed,
            wander_fraction: 0.3,
            wander_speed_fraction: 0.5,
        }
    }
}

#[derive(Debug, Clone)]
struct GroupState {
    center: Point,
    waypoint: Point,
    speed: f64,
}

#[derive(Debug, Clone)]
struct MemberState {
    group: usize,
    /// Offset of the reference point from the group centre.
    ref_offset: Point,
    /// Current wander offset from the reference point.
    wander: Point,
    /// Wander target offset the member is drifting towards.
    wander_target: Point,
}

/// Reference-point group mobility over a rectangular field.
#[derive(Debug, Clone)]
pub struct GroupMobility {
    bounds: Rect,
    config: GroupMobilityConfig,
    groups: Vec<GroupState>,
    members: Vec<MemberState>,
    rng: StdRng,
}

impl GroupMobility {
    /// Creates the model. Group centres start uniformly at random (inset by
    /// the group range so the whole group starts in-field); members receive
    /// random reference offsets within the group range.
    pub fn new(bounds: Rect, config: GroupMobilityConfig, seed: u64) -> Self {
        assert!(config.groups > 0, "need at least one group");
        assert!(config.group_range > 0.0, "group range must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Group centres roam the whole field (member positions clamp to
        // the field boundary); insetting the centres would shrink the
        // effective deployment area and bias S-D distances downwards.
        let inner = inset(&bounds, 0.0);
        let groups: Vec<GroupState> = (0..config.groups)
            .map(|_| GroupState {
                center: inner.random_point(&mut rng),
                waypoint: inner.random_point(&mut rng),
                speed: random_speed(&mut rng, config.speed_min, config.speed_max),
            })
            .collect();
        let ref_radius = config.group_range * (1.0 - config.wander_fraction);
        let members = (0..config.nodes)
            .map(|i| {
                let group = i % config.groups;
                MemberState {
                    group,
                    ref_offset: random_in_disc(&mut rng, ref_radius),
                    wander: Point::ORIGIN,
                    wander_target: random_in_disc(
                        &mut rng,
                        config.group_range * config.wander_fraction,
                    ),
                }
            })
            .collect();
        GroupMobility {
            bounds,
            config,
            groups,
            members,
            rng,
        }
    }

    /// Index of the group node `id` belongs to.
    pub fn group_of(&self, id: usize) -> usize {
        self.members[id].group
    }

    /// Current centre of group `g`.
    pub fn group_center(&self, g: usize) -> Point {
        self.groups[g].center
    }

    /// The model's configuration.
    pub fn config(&self) -> &GroupMobilityConfig {
        &self.config
    }
}

fn inset(r: &Rect, by: f64) -> Rect {
    let by = by.max(0.0).min(r.width() / 2.0).min(r.height() / 2.0);
    Rect::new(
        Point::new(r.min.x + by, r.min.y + by),
        Point::new(r.max.x - by, r.max.y - by),
    )
}

fn random_in_disc<R: Rng + ?Sized>(rng: &mut R, radius: f64) -> Point {
    if radius <= 0.0 {
        return Point::ORIGIN;
    }
    // Rejection sampling: uniform over the disc, at most ~1.27 tries each.
    loop {
        let p = Point::new(
            rng.gen_range(-radius..radius),
            rng.gen_range(-radius..radius),
        );
        if p.norm() <= radius {
            return p;
        }
    }
}

impl Mobility for GroupMobility {
    fn len(&self) -> usize {
        self.members.len()
    }

    fn position(&self, id: usize) -> Point {
        let m = &self.members[id];
        let raw = self.groups[m.group].center + m.ref_offset + m.wander;
        self.bounds.clamp(raw)
    }

    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn place(&mut self, positions: &[Point]) {
        // A member's position is derived (centre + ref_offset + wander), so
        // placement adjusts the reference offset. The offset norm stays
        // clamped to the RPGM reference radius, so the group-range invariant
        // holds even when the requested point lies outside the group's disc;
        // placement is then honored as closely as the model allows.
        let ref_radius = self.config.group_range * (1.0 - self.config.wander_fraction);
        for (i, &p) in positions.iter().enumerate().take(self.members.len()) {
            let p = self.bounds.clamp(p);
            let center = self.groups[self.members[i].group].center;
            let mut offset = p - center;
            let norm = offset.distance(Point::ORIGIN);
            if norm > ref_radius && norm > 0.0 {
                let scale = ref_radius / norm;
                offset = Point::new(offset.x * scale, offset.y * scale);
            }
            self.members[i].ref_offset = offset;
            self.members[i].wander = Point::ORIGIN;
        }
    }

    fn step(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        let inner = inset(&self.bounds, 0.0);
        // Advance group centres (random waypoint over the inset field).
        for g in &mut self.groups {
            let travel = g.speed * dt;
            let to_wp = g.center.distance(g.waypoint);
            if travel < to_wp {
                g.center = g.center.advance_towards(g.waypoint, travel);
            } else {
                g.center = g.waypoint;
                g.waypoint = inner.random_point(&mut self.rng);
                g.speed = random_speed(&mut self.rng, self.config.speed_min, self.config.speed_max);
            }
        }
        // Advance member wander within the small disc around the reference
        // point.
        let wander_radius = self.config.group_range * self.config.wander_fraction;
        let wander_speed =
            self.config.speed_max.max(self.config.speed_min) * self.config.wander_speed_fraction;
        for m in &mut self.members {
            let travel = wander_speed * dt;
            let to_target = m.wander.distance(m.wander_target);
            if travel < to_target {
                m.wander = m.wander.advance_towards(m.wander_target, travel);
            } else {
                m.wander = m.wander_target;
                m.wander_target = random_in_disc(&mut self.rng, wander_radius);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km() -> Rect {
        Rect::with_size(1000.0, 1000.0)
    }

    #[test]
    fn members_stay_within_group_range() {
        let cfg = GroupMobilityConfig::paper(50, 10, 150.0, 2.0);
        let mut m = GroupMobility::new(km(), cfg, 1);
        for _ in 0..500 {
            m.step(1.0);
            for i in 0..m.len() {
                let c = m.group_center(m.group_of(i));
                let d = m.position(i).distance(c);
                assert!(
                    d <= cfg.group_range + 1e-6,
                    "node {i} strayed {d} m from its group centre"
                );
            }
        }
    }

    #[test]
    fn nodes_stay_in_bounds() {
        let cfg = GroupMobilityConfig::paper(40, 5, 200.0, 8.0);
        let mut m = GroupMobility::new(km(), cfg, 2);
        for _ in 0..1000 {
            m.step(0.5);
        }
        for i in 0..m.len() {
            assert!(km().contains(m.position(i)));
        }
    }

    #[test]
    fn groups_partition_the_population_evenly() {
        let cfg = GroupMobilityConfig::paper(23, 5, 150.0, 2.0);
        let m = GroupMobility::new(km(), cfg, 3);
        let mut counts = vec![0usize; 5];
        for i in 0..m.len() {
            counts[m.group_of(i)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 23);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "groups unbalanced: {counts:?}");
    }

    #[test]
    fn group_members_cluster_relative_to_strangers() {
        // Average intra-group distance must be well below the average
        // inter-group distance: the defining property of group mobility.
        let cfg = GroupMobilityConfig::paper(60, 6, 150.0, 2.0);
        let mut m = GroupMobility::new(km(), cfg, 4);
        for _ in 0..100 {
            m.step(1.0);
        }
        let (mut intra, mut intra_n, mut inter, mut inter_n) = (0.0, 0u32, 0.0, 0u32);
        for i in 0..m.len() {
            for j in (i + 1)..m.len() {
                let d = m.position(i).distance(m.position(j));
                if m.group_of(i) == m.group_of(j) {
                    intra += d;
                    intra_n += 1;
                } else {
                    inter += d;
                    inter_n += 1;
                }
            }
        }
        let (intra, inter) = (intra / intra_n as f64, inter / inter_n as f64);
        assert!(
            intra < inter * 0.8,
            "intra {intra:.1} m not clearly below inter {inter:.1} m"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GroupMobilityConfig::paper(30, 5, 200.0, 2.0);
        let run = |seed| {
            let mut m = GroupMobility::new(km(), cfg, seed);
            for _ in 0..50 {
                m.step(1.0);
            }
            m.positions()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn centers_actually_move() {
        let cfg = GroupMobilityConfig::paper(10, 2, 150.0, 5.0);
        let mut m = GroupMobility::new(km(), cfg, 7);
        let c0 = m.group_center(0);
        for _ in 0..200 {
            m.step(1.0);
        }
        assert!(m.group_center(0).distance(c0) > 10.0);
    }
}

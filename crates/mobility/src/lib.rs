//! # alert-mobility
//!
//! Node mobility models for the MANET simulator: the two models the
//! paper evaluates (Section 5.1) — the **random waypoint** model \[17\]
//! and the **reference-point group mobility** model \[18\] — plus a
//! street-constrained **Manhattan-grid** model (urban scenarios) and a
//! static model for controlled experiments.
//!
//! Models are deterministic given their construction seed: the simulator
//! steps them on a fixed tick and reads back positions, so a whole run is
//! reproducible from `(config, seed)`.

//! ## Example
//!
//! ```
//! use alert_geom::Rect;
//! use alert_mobility::{Mobility, RandomWaypoint, RandomWaypointConfig};
//!
//! let field = Rect::with_size(1000.0, 1000.0);
//! let mut model = RandomWaypoint::new(field, RandomWaypointConfig::fixed_speed(50, 2.0), 42);
//! model.step(10.0);
//! assert!(field.contains(model.position(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod group;
mod manhattan;
mod waypoint;

pub use group::{GroupMobility, GroupMobilityConfig};
pub use manhattan::{ManhattanConfig, ManhattanGrid};
pub use waypoint::{RandomWaypoint, RandomWaypointConfig};

use alert_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Position/coordinate comparison epsilon shared by the street-constrained
/// models.
pub(crate) const EPS: f64 = 1e-9;

/// A mobility model: owns every node's kinematic state and advances it in
/// discrete time steps.
pub trait Mobility {
    /// Number of nodes governed by the model.
    fn len(&self) -> usize;

    /// True when the model governs no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current position of node `id`.
    fn position(&self, id: usize) -> Point;

    /// Advances every node by `dt` seconds.
    fn step(&mut self, dt: f64);

    /// The field nodes are confined to.
    fn bounds(&self) -> Rect;

    /// Snapshot of all positions (allocates; prefer [`Mobility::position`]
    /// in hot paths).
    fn positions(&self) -> Vec<Point> {
        (0..self.len()).map(|i| self.position(i)).collect()
    }

    /// Overrides initial node positions with a placement strategy (convoy,
    /// small teams, …). Called once, right after construction, before any
    /// `step`. Positions outside the field are clamped; street-constrained
    /// models snap to the nearest legal point. Implementations must not
    /// draw from the model RNG, so placement never perturbs the movement
    /// draw stream.
    fn place(&mut self, positions: &[Point]);
}

/// Nodes that never move. Used for controlled anonymity experiments
/// (e.g. the paper's `v = 0` series in Fig. 13a) and as a base case in
/// tests.
#[derive(Debug, Clone)]
pub struct StaticField {
    bounds: Rect,
    positions: Vec<Point>,
}

impl StaticField {
    /// Places `n` nodes uniformly at random in `bounds`.
    pub fn uniform(bounds: Rect, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = (0..n).map(|_| bounds.random_point(&mut rng)).collect();
        StaticField { bounds, positions }
    }

    /// Places nodes at the given positions.
    pub fn at(bounds: Rect, positions: Vec<Point>) -> Self {
        assert!(
            positions.iter().all(|p| bounds.contains(*p)),
            "all positions must lie inside the field"
        );
        StaticField { bounds, positions }
    }
}

impl Mobility for StaticField {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn position(&self, id: usize) -> Point {
        self.positions[id]
    }

    fn step(&mut self, _dt: f64) {}

    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn place(&mut self, positions: &[Point]) {
        for (i, &p) in positions.iter().enumerate().take(self.positions.len()) {
            self.positions[i] = self.bounds.clamp(p);
        }
    }
}

/// Draws a random speed in `[lo, hi]`, degenerate ranges allowed.
pub(crate) fn random_speed<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_field_never_moves() {
        let bounds = Rect::with_size(100.0, 100.0);
        let mut m = StaticField::uniform(bounds, 10, 3);
        let before = m.positions();
        for _ in 0..100 {
            m.step(1.0);
        }
        assert_eq!(m.positions(), before);
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
    }

    #[test]
    fn static_uniform_is_seeded() {
        let bounds = Rect::with_size(100.0, 100.0);
        let a = StaticField::uniform(bounds, 20, 9);
        let b = StaticField::uniform(bounds, 20, 9);
        let c = StaticField::uniform(bounds, 20, 10);
        assert_eq!(a.positions(), b.positions());
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    #[should_panic(expected = "inside the field")]
    fn static_at_rejects_out_of_bounds() {
        StaticField::at(Rect::with_size(10.0, 10.0), vec![Point::new(50.0, 0.0)]);
    }
}

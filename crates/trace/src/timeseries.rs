//! The deterministic metrics timeseries (`alert-timeseries/1`).
//!
//! A [`MetricsTimeseries`] is the second observability layer: periodic
//! [`RegistrySnapshot`] samples taken every `every_s` simulated seconds
//! and encoded as append-only JSONL. Like the event codec
//! (crate::jsonl), encoding is hand-rolled with a fixed key order and
//! shortest-round-trip float formatting, so the same `(scenario, seed)`
//! run always produces a byte-identical series.
//!
//! ## Format: `alert-timeseries/1`
//!
//! Line 1 is the header object:
//!
//! ```json
//! {"schema":"alert-timeseries/1","every_s":5.0}
//! ```
//!
//! Every following line is one sample — a *flat* JSON object (so the
//! event codec's tokenizer parses it) whose keys are, in order:
//!
//! * `"t"` — the window's end time in simulated seconds. Sample `t`
//!   covers the half-open window `(t - every_s, t]`; the first window
//!   additionally includes events at `t = 0`.
//! * `"c:<counter>"` — cumulative counter value at `t`, every registry
//!   counter in lexicographic name order.
//! * `"d:<counter>"` — the per-window delta (`c` at `t` minus `c` at the
//!   previous sample), same order. Per-window *rates* are derived, not
//!   stored: `rate = d / every_s` (see [`TimeseriesSample::rate`]), so
//!   the stored series stays integer-exact.
//! * `"hc:<histogram>"` / `"hs:<histogram>"` — cumulative sample count
//!   and sum of each registry histogram, in lexicographic name order.
//!
//! Counters are monotone, so every `d:` value is a non-negative integer
//! and the cumulative row of the final sample equals the whole-run
//! registry totals (the runtime flushes a final partial sample at the
//! run's end time when it does not land on a window boundary).

use crate::jsonl::{self, err, ParseError, Val};
use crate::registry::RegistrySnapshot;
use std::collections::BTreeMap;

/// Schema tag written in the header line.
pub const TIMESERIES_SCHEMA: &str = "alert-timeseries/1";

/// One periodic registry sample (see the module docs for the window
/// convention and wire encoding).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeseriesSample {
    /// Window end time, simulated seconds.
    pub t: f64,
    /// Cumulative counter values at `t`, by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-window counter deltas (this sample minus the previous one).
    pub deltas: BTreeMap<String, u64>,
    /// Cumulative histogram sample counts at `t`, by name.
    pub hist_count: BTreeMap<String, u64>,
    /// Cumulative histogram sample sums at `t`, by name.
    pub hist_sum: BTreeMap<String, f64>,
}

impl TimeseriesSample {
    /// Appends the sample's canonical JSONL encoding (without the
    /// trailing newline) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        jsonl::push_f64(out, self.t);
        for (name, v) in &self.counters {
            jsonl::field_u64(out, &format!("c:{name}"), *v);
        }
        for (name, v) in &self.deltas {
            jsonl::field_u64(out, &format!("d:{name}"), *v);
        }
        for (name, v) in &self.hist_count {
            jsonl::field_u64(out, &format!("hc:{name}"), *v);
        }
        for (name, v) in &self.hist_sum {
            jsonl::field_f64(out, &format!("hs:{name}"), *v);
        }
        out.push('}');
    }

    /// Per-window rate of `counter` in events per simulated second
    /// (`delta / every_s`); 0 for unknown counters.
    pub fn rate(&self, counter: &str, every_s: f64) -> f64 {
        if every_s <= 0.0 {
            return 0.0;
        }
        self.deltas
            .get(counter)
            .map_or(0.0, |&d| d as f64 / every_s)
    }
}

/// An append-only series of periodic registry samples plus the sampling
/// interval — the in-memory form of an `alert-timeseries/1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTimeseries {
    /// Sampling interval in simulated seconds.
    pub every_s: f64,
    /// Samples in time order.
    pub samples: Vec<TimeseriesSample>,
}

impl MetricsTimeseries {
    /// An empty series sampling every `every_s` simulated seconds.
    ///
    /// # Panics
    /// If `every_s` is not finite and positive.
    pub fn new(every_s: f64) -> Self {
        assert!(
            every_s.is_finite() && every_s > 0.0,
            "timeseries interval must be finite and positive, got {every_s}"
        );
        Self {
            every_s,
            samples: Vec::new(),
        }
    }

    /// Appends a sample of `snap` at window end time `t`, computing the
    /// per-window deltas against the previous sample (or zero).
    ///
    /// # Panics
    /// In debug builds, if `t` does not increase monotonically or a
    /// counter decreases (registry counters are monotone).
    pub fn record(&mut self, t: f64, snap: &RegistrySnapshot) {
        debug_assert!(
            self.samples.last().map_or(true, |s| t > s.t),
            "timeseries sample times must be strictly increasing"
        );
        let prev = self.samples.last().map(|s| &s.counters);
        let deltas = snap
            .counters
            .iter()
            .map(|(name, &v)| {
                let before = prev.and_then(|p| p.get(name)).copied().unwrap_or(0);
                debug_assert!(v >= before, "counter '{name}' went backwards");
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        self.samples.push(TimeseriesSample {
            t,
            counters: snap.counters.clone(),
            deltas,
            hist_count: snap
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.count))
                .collect(),
            hist_sum: snap
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.sum))
                .collect(),
        });
    }

    /// The canonical `alert-timeseries/1` document: header line plus one
    /// line per sample, each newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.samples.len() * 256);
        out.push_str("{\"schema\":\"");
        out.push_str(TIMESERIES_SCHEMA);
        out.push_str("\",\"every_s\":");
        jsonl::push_f64(&mut out, self.every_s);
        out.push_str("}\n");
        for s in &self.samples {
            s.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parses an `alert-timeseries/1` document (as produced by
    /// [`MetricsTimeseries::to_jsonl`]; blank lines are skipped).
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());
        let (lno, header) = lines.next().ok_or_else(|| err(0, "empty timeseries"))?;
        let mut every_s = None;
        for (key, val) in jsonl::parse_object(header, lno)? {
            match (key.as_str(), val) {
                ("schema", Val::Str(s)) if s == TIMESERIES_SCHEMA => {}
                ("schema", _) => return Err(err(lno, "unknown timeseries schema")),
                ("every_s", Val::Num(raw)) => {
                    every_s = Some(
                        raw.parse::<f64>()
                            .map_err(|_| err(lno, "'every_s' is not a number"))?,
                    );
                }
                _ => {}
            }
        }
        let every_s = every_s.ok_or_else(|| err(lno, "header missing 'every_s'"))?;
        if !(every_s.is_finite() && every_s > 0.0) {
            return Err(err(lno, "'every_s' must be finite and positive"));
        }
        let mut series = MetricsTimeseries::new(every_s);
        for (lno, line) in lines {
            let mut s = TimeseriesSample::default();
            let mut have_t = false;
            for (key, val) in jsonl::parse_object(line, lno)? {
                let num_u64 = |v: &Val| -> Result<u64, ParseError> {
                    match v {
                        Val::Num(raw) => raw
                            .parse()
                            .map_err(|_| err(lno, format!("field '{key}' is not an integer"))),
                        _ => Err(err(lno, format!("field '{key}' is not a number"))),
                    }
                };
                if key == "t" {
                    match &val {
                        Val::Num(raw) => {
                            s.t = raw.parse().map_err(|_| err(lno, "'t' is not a number"))?;
                            have_t = true;
                        }
                        _ => return Err(err(lno, "'t' is not a number")),
                    }
                } else if let Some(name) = key.strip_prefix("c:") {
                    s.counters.insert(name.to_owned(), num_u64(&val)?);
                } else if let Some(name) = key.strip_prefix("d:") {
                    s.deltas.insert(name.to_owned(), num_u64(&val)?);
                } else if let Some(name) = key.strip_prefix("hc:") {
                    s.hist_count.insert(name.to_owned(), num_u64(&val)?);
                } else if let Some(name) = key.strip_prefix("hs:") {
                    match &val {
                        Val::Num(raw) => {
                            s.hist_sum.insert(
                                name.to_owned(),
                                raw.parse()
                                    .map_err(|_| err(lno, format!("'{key}' is not a number")))?,
                            );
                        }
                        _ => return Err(err(lno, format!("'{key}' is not a number"))),
                    }
                } else {
                    return Err(err(lno, format!("unknown timeseries field '{key}'")));
                }
            }
            if !have_t {
                return Err(err(lno, "sample missing 't'"));
            }
            series.samples.push(s);
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap_at(tx: u64, lat: &[f64]) -> RegistrySnapshot {
        let mut r = Registry::new();
        let c = r.counter("tx.frames");
        let d = r.counter("drops");
        let h = r.histogram("latency_s");
        r.add(c, tx);
        let _ = d; // stays 0 — exercises zero-delta encoding
        for &v in lat {
            r.observe(h, v);
        }
        r.snapshot()
    }

    #[test]
    fn record_computes_window_deltas() {
        let mut ts = MetricsTimeseries::new(5.0);
        ts.record(5.0, &snap_at(10, &[0.25]));
        ts.record(10.0, &snap_at(25, &[0.25, 0.5]));
        assert_eq!(ts.samples[0].deltas["tx.frames"], 10);
        assert_eq!(ts.samples[1].deltas["tx.frames"], 15);
        assert_eq!(ts.samples[1].counters["tx.frames"], 25);
        assert_eq!(ts.samples[1].hist_count["latency_s"], 2);
        assert_eq!(ts.samples[1].rate("tx.frames", 5.0), 3.0);
        assert_eq!(ts.samples[1].rate("missing", 5.0), 0.0);
    }

    #[test]
    fn encoding_is_stable_and_round_trips() {
        let mut ts = MetricsTimeseries::new(5.0);
        ts.record(5.0, &snap_at(10, &[0.25]));
        ts.record(10.0, &snap_at(25, &[0.25, 0.5]));
        let doc = ts.to_jsonl();
        let first = doc.lines().next().unwrap();
        assert_eq!(first, "{\"schema\":\"alert-timeseries/1\",\"every_s\":5.0}");
        let second = doc.lines().nth(1).unwrap();
        assert_eq!(
            second,
            "{\"t\":5.0,\"c:drops\":0,\"c:tx.frames\":10,\"d:drops\":0,\
             \"d:tx.frames\":10,\"hc:latency_s\":1,\"hs:latency_s\":0.25}"
        );
        let back = MetricsTimeseries::parse(&doc).unwrap();
        assert_eq!(back, ts);
        // Byte determinism: encode → parse → encode is the identity.
        assert_eq!(back.to_jsonl(), doc);
    }

    #[test]
    fn final_cumulative_row_matches_delta_sum() {
        let mut ts = MetricsTimeseries::new(1.0);
        for (i, tx) in [(1.0, 3u64), (2.0, 7), (3.0, 7), (4.0, 30)] {
            ts.record(i, &snap_at(tx, &[]));
        }
        let total: u64 = ts.samples.iter().map(|s| s.deltas["tx.frames"]).sum();
        assert_eq!(total, ts.samples.last().unwrap().counters["tx.frames"]);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(MetricsTimeseries::parse("").is_err());
        assert!(MetricsTimeseries::parse("{\"schema\":\"other/9\",\"every_s\":5.0}\n").is_err());
        assert!(MetricsTimeseries::parse("{\"schema\":\"alert-timeseries/1\"}\n").is_err());
        assert!(
            MetricsTimeseries::parse("{\"schema\":\"alert-timeseries/1\",\"every_s\":0}\n")
                .is_err()
        );
        let doc = "{\"schema\":\"alert-timeseries/1\",\"every_s\":5.0}\n{\"c:x\":1}\n";
        assert!(MetricsTimeseries::parse(doc).is_err(), "sample missing t");
        let doc = "{\"schema\":\"alert-timeseries/1\",\"every_s\":5.0}\n{\"t\":5.0,\"zz\":1}\n";
        assert!(MetricsTimeseries::parse(doc).is_err(), "unknown field");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_interval_is_rejected() {
        let _ = MetricsTimeseries::new(0.0);
    }
}

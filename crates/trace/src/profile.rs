//! Run profiles: where wall-clock time and event volume went.
//!
//! A [`RunProfile`] is what `simrun --profile` writes and what future
//! optimisation PRs compare `BENCH_*.json` trajectories against. Only
//! wall-clock fields vary between same-seed runs; everything derived
//! from the simulation itself (event counts, FEL high-water mark,
//! registry counters) is deterministic.

use crate::registry::RegistrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Time spent inside one class of event callback.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CallbackProfile {
    /// Number of events of this class dispatched.
    pub count: u64,
    /// Total wall-clock seconds spent in the callback.
    pub seconds: f64,
}

/// Performance summary of one simulator run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Wall-clock duration of the `run_until` loop, in seconds.
    pub wall_clock_s: f64,
    /// Simulated time covered by the run, in seconds.
    pub sim_time_s: f64,
    /// Total events popped from the future event list.
    pub events_dispatched: u64,
    /// Events dispatched per wall-clock second (0 if instantaneous).
    pub events_per_sec: f64,
    /// Maximum number of events simultaneously pending in the FEL.
    pub fel_high_water: u64,
    /// Wall-clock accounting per event class ("deliver", "timer", …).
    pub callbacks: BTreeMap<String, CallbackProfile>,
    /// Wall-clock accounting per protocol callback ("on_frame",
    /// "on_timer", "on_data_request", "on_start", "on_neighbor_lost") —
    /// the slice of each event class spent inside protocol code rather
    /// than in the engine itself.
    #[serde(default)]
    pub spans: BTreeMap<String, CallbackProfile>,
    /// Snapshot of the run's counter/histogram registry.
    pub registry: RegistrySnapshot,
}

impl RunProfile {
    /// Fills in `events_per_sec` from the dispatch count and wall clock.
    pub fn finalize(&mut self) {
        self.events_per_sec = if self.wall_clock_s > 0.0 {
            self.events_dispatched as f64 / self.wall_clock_s
        } else {
            0.0
        };
    }

    /// Adds one dispatched event of class `kind` taking `seconds`.
    pub fn record_callback(&mut self, kind: &str, seconds: f64) {
        let entry = self.callbacks.entry(kind.to_owned()).or_default();
        entry.count += 1;
        entry.seconds += seconds;
    }

    /// Adds one protocol-callback span named `span` taking `seconds`.
    pub fn record_span(&mut self, span: &str, seconds: f64) {
        let entry = self.spans.entry(span.to_owned()).or_default();
        entry.count += 1;
        entry.seconds += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_computes_rate() {
        let mut p = RunProfile {
            wall_clock_s: 2.0,
            events_dispatched: 1000,
            ..RunProfile::default()
        };
        p.finalize();
        assert_eq!(p.events_per_sec, 500.0);
        p.wall_clock_s = 0.0;
        p.finalize();
        assert_eq!(p.events_per_sec, 0.0);
    }

    #[test]
    fn callbacks_accumulate() {
        let mut p = RunProfile::default();
        p.record_callback("deliver", 0.25);
        p.record_callback("deliver", 0.75);
        p.record_callback("timer", 0.5);
        assert_eq!(p.callbacks["deliver"].count, 2);
        assert_eq!(p.callbacks["deliver"].seconds, 1.0);
        assert_eq!(p.callbacks["timer"].count, 1);
    }

    #[test]
    fn spans_accumulate_independently_of_callbacks() {
        let mut p = RunProfile::default();
        p.record_span("on_frame", 0.25);
        p.record_span("on_frame", 0.25);
        p.record_span("on_timer", 0.1);
        assert_eq!(p.spans["on_frame"].count, 2);
        assert_eq!(p.spans["on_frame"].seconds, 0.5);
        assert_eq!(p.spans["on_timer"].count, 1);
        assert!(p.callbacks.is_empty());
    }
}

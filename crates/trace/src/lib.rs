//! # alert-trace
//!
//! Deterministic observability for the ALERT simulator, in three pillars:
//!
//! * **Structured event tracing** — [`TraceEvent`] covers every observable
//!   step of a run (transmissions, receptions, drops with typed reasons,
//!   timer fires, location-service lookups, crypto charges, pseudonym
//!   rotations, and the ALERT-specific zone-partition / random-forwarder
//!   selection steps). Events flow through a [`TraceSink`]: [`NullSink`]
//!   discards them for free, [`JsonlSink`] streams one JSON object per
//!   line, and [`RingBufferSink`] keeps the last *N* events for post-mortem
//!   dumps. Every event is keyed by simulated time, so two runs with the
//!   same `(scenario, seed)` produce **byte-identical** JSONL traces.
//! * **A counter/histogram registry** — [`Registry`] holds monotonic `u64`
//!   counters and log-bucketed [`LogHistogram`]s behind `Copy` handles
//!   (O(1) array updates on the hot path), snapshotted to the serde-ready
//!   [`RegistrySnapshot`].
//! * **Run profiling** — [`RunProfile`] captures wall-clock events/sec,
//!   total events dispatched, the future-event-list high-water mark, and
//!   per-callback CPU time (with per-protocol-callback span attribution),
//!   establishing the performance trajectory for optimisation work.
//! * **Metrics timeseries** — [`MetricsTimeseries`] samples the registry
//!   every *k* simulated seconds into the append-only, byte-deterministic
//!   `alert-timeseries/1` JSONL format (cumulative counters plus
//!   per-window deltas; rates are derived, not stored).
//! * **Trace queries** — [`EventFilter`], [`follow_packet`], and
//!   [`window_aggregates`] interrogate a stored trace (by node, time
//!   window, event kind, drop reason, packet id) with deterministic
//!   CSV/JSON renderers — the engine behind the `tracequery` CLI and a
//!   future `alertd` query endpoint.
//!
//! The [`replay`](crate::reconstruct_packets) API folds a trace back into
//! per-packet hop paths, which the simulator's tests compare against the
//! ground-truth `Metrics` — the trace layer doubles as a correctness
//! oracle.
//!
//! The crate is dependency-free except for `serde` (derives on the
//! snapshot/profile structs); the JSONL codec is hand-rolled so the
//! byte-identical guarantee does not hinge on an external serializer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod jsonl;
mod profile;
mod query;
mod registry;
mod replay;
mod sink;
mod timeseries;

pub use event::{CryptoOp, DropReason, TickKind, TraceEvent, TrafficKind, TxKind};
pub use jsonl::{parse_trace, ParseError};
pub use profile::{CallbackProfile, RunProfile};
pub use query::{
    filter_events, follow_packet, render_events_csv, render_events_jsonl, render_windows_csv,
    render_windows_json, window_aggregates, EventFilter, WindowAggregate,
};
pub use registry::{
    CounterHandle, HistogramBucket, HistogramHandle, HistogramSnapshot, LogHistogram, Registry,
    RegistrySnapshot,
};
pub use replay::{
    down_intervals, down_node_activity, reconstruct_packets, trace_stats, DownNodeAudit,
    PacketTrace, TraceStats,
};
pub use sink::{
    JsonlSink, NullSink, RingBufferHandle, RingBufferSink, SharedBuf, TeeSink, TraceSink, Tracer,
};
pub use timeseries::{MetricsTimeseries, TimeseriesSample, TIMESERIES_SCHEMA};

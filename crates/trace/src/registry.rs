//! The counter/histogram registry.
//!
//! Names are resolved once at setup time into `Copy` handles that index
//! straight into flat vectors, so hot-path updates are a bounds-checked
//! array increment — no string hashing per event. Snapshots are plain
//! serde structs suitable for embedding in a [`RunProfile`]
//! (crate::RunProfile) or dumping standalone.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of histogram buckets: one underflow bucket plus powers of two
/// from 2^[`MIN_EXP`] upward.
const BUCKETS: usize = 64;
/// Exponent of the smallest bucket boundary (2^-20 ≈ 0.95 µs for values
/// measured in seconds).
const MIN_EXP: i32 = -20;

/// Opaque index of a counter inside a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Opaque index of a histogram inside a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A log-bucketed histogram for non-negative `f64` samples.
///
/// Bucket `i > 0` covers `[2^(MIN_EXP+i-1), 2^(MIN_EXP+i))`; bucket 0
/// is the underflow bucket (samples below `2^MIN_EXP`, including zero).
/// Exact count/sum/min/max are tracked alongside, so means are exact and
/// only quantiles are approximate (nearest rank, geometric bucket
/// midpoint).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let exp = v.log2().floor() as i64;
        let idx = exp - i64::from(MIN_EXP) + 1;
        idx.clamp(0, BUCKETS as i64 - 1) as usize
    }

    /// Records one sample. Non-finite or negative samples land in the
    /// underflow bucket and are excluded from sum/min/max.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() && v >= 0.0 {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of the (finite, non-negative) samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) via nearest-rank over
    /// the buckets, using each bucket's geometric midpoint, clamped to
    /// the exact observed min/max. Returns 0 if empty.
    ///
    /// **Error bound:** buckets are one octave wide (`[2^e, 2^(e+1))`),
    /// so the geometric midpoint `2^e·√2` is within a factor of `√2`
    /// (≈ 1.41×, i.e. ±41%/−29%) of any sample in the bucket; the
    /// min/max clamp tightens the extreme quantiles further. The rank
    /// itself is exact — only the within-bucket position is estimated.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    (2f64).powi(MIN_EXP) / 2.0
                } else {
                    // geometric midpoint of [2^(e), 2^(e+1))
                    (2f64).powi(MIN_EXP + i as i32 - 1) * std::f64::consts::SQRT_2
                };
                return mid.clamp(
                    if self.min.is_finite() { self.min } else { 0.0 },
                    if self.max.is_finite() { self.max } else { mid },
                );
            }
        }
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Snapshot with only the non-empty buckets materialised.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| HistogramBucket {
                le: if i == BUCKETS - 1 {
                    f64::INFINITY
                } else {
                    (2f64).powi(MIN_EXP + i as i32)
                },
                count: n,
            })
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            mean: self.mean(),
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bound (exclusive) of the bucket; `inf` for the last bucket.
    pub le: f64,
    /// Number of samples in the bucket.
    pub count: u64,
}

/// Serializable summary of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
    /// Exact minimum sample (0 if empty).
    pub min: f64,
    /// Exact maximum sample (0 if empty).
    pub max: f64,
    /// Exact mean (0 if empty).
    pub mean: f64,
    /// Approximate median (see [`LogHistogram::quantile`] for the
    /// within-a-factor-of-√2 error bound).
    pub p50: f64,
    /// Approximate 95th percentile.
    #[serde(default)]
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

/// Serializable snapshot of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A registry of named monotonic counters and log-bucketed histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    hist_names: Vec<&'static str>,
    hists: Vec<LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the handle for counter `name`, creating it at zero if new.
    pub fn counter(&mut self, name: &'static str) -> CounterHandle {
        if let Some(i) = self.counter_names.iter().position(|&n| n == name) {
            return CounterHandle(i);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterHandle(self.counters.len() - 1)
    }

    /// Returns the handle for histogram `name`, creating it empty if new.
    pub fn histogram(&mut self, name: &'static str) -> HistogramHandle {
        if let Some(i) = self.hist_names.iter().position(|&n| n == name) {
            return HistogramHandle(i);
        }
        self.hist_names.push(name);
        self.hists.push(LogHistogram::new());
        HistogramHandle(self.hists.len() - 1)
    }

    /// Adds `n` to a counter. O(1).
    #[inline]
    pub fn add(&mut self, h: CounterHandle, n: u64) {
        self.counters[h.0] += n;
    }

    /// Increments a counter by one. O(1).
    #[inline]
    pub fn inc(&mut self, h: CounterHandle) {
        self.counters[h.0] += 1;
    }

    /// Records a histogram sample. O(1).
    #[inline]
    pub fn observe(&mut self, h: HistogramHandle, v: f64) {
        self.hists[h.0].record(v);
    }

    /// Current value of a counter handle.
    pub fn value(&self, h: CounterHandle) -> u64 {
        self.counters[h.0]
    }

    /// Current value of a counter by name (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_names
            .iter()
            .position(|&n| n == name)
            .map_or(0, |i| self.counters[i])
    }

    /// The histogram behind a handle.
    pub fn histogram_ref(&self, h: HistogramHandle) -> &LogHistogram {
        &self.hists[h.0]
    }

    /// Snapshot of every counter and histogram, keyed by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counter_names
                .iter()
                .zip(&self.counters)
                .map(|(&n, &v)| (n.to_owned(), v))
                .collect(),
            histograms: self
                .hist_names
                .iter()
                .zip(&self.hists)
                .map(|(&n, h)| (n.to_owned(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_named() {
        let mut r = Registry::new();
        let a = r.counter("tx.frames");
        let b = r.counter("rx.frames");
        let a2 = r.counter("tx.frames");
        assert_eq!(a, a2);
        r.inc(a);
        r.add(a, 4);
        r.inc(b);
        assert_eq!(r.value(a), 5);
        assert_eq!(r.counter_value("tx.frames"), 5);
        assert_eq!(r.counter_value("rx.frames"), 1);
        assert_eq!(r.counter_value("missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["tx.frames"], 5);
        assert_eq!(snap.counters["rx.frames"], 1);
    }

    #[test]
    fn histogram_tracks_exact_stats() {
        let mut h = LogHistogram::new();
        for v in [0.5, 1.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 7.5).abs() < 1e-12);
        assert!((h.mean() - 1.875).abs() < 1e-12);
        let snap = h.snapshot();
        assert_eq!(snap.min, 0.5);
        assert_eq!(snap.max, 4.0);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn histogram_quantiles_are_sane() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1.0);
        }
        h.record(1024.0);
        let p50 = h.quantile(0.5);
        assert!((0.5..=2.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.995);
        assert!(p99 > 100.0, "p99 = {p99}");
        assert!(p99 <= 1024.0, "p99 = {p99}");
        let snap = h.snapshot();
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
        assert!((0.5..=2.0).contains(&snap.p95), "p95 = {}", snap.p95);
    }

    #[test]
    fn quantile_midpoint_stays_within_sqrt2_of_samples() {
        // Every sample in one octave bucket: the documented error bound
        // says the estimate is within a factor of sqrt(2) of the truth.
        for v in [0.003, 0.7, 5.0, 300.0] {
            let mut h = LogHistogram::new();
            for _ in 0..10 {
                h.record(v);
            }
            let est = h.quantile(0.5);
            assert!(
                est <= v * std::f64::consts::SQRT_2 + 1e-12
                    && est >= v / std::f64::consts::SQRT_2 - 1e-12,
                "quantile {est} not within sqrt(2) of {v}"
            );
        }
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 0.0);
        let snap = h.snapshot();
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = LogHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn tiny_values_land_in_underflow_bucket() {
        let mut h = LogHistogram::new();
        h.record(1e-9);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].count, 1);
    }
}

//! The deterministic JSONL codec.
//!
//! Every event encodes to exactly one JSON object per line with a fixed
//! field order (`"t"`, `"ev"`, then variant fields in declaration order)
//! and shortest-round-trip float formatting, so the byte-identical-trace
//! guarantee holds without depending on an external serializer. The
//! parser accepts exactly the flat objects the encoder produces (plus
//! arbitrary field order and whitespace, for hand-edited fixtures).

use crate::event::{CryptoOp, TickKind, TraceEvent, TrafficKind, TxKind};
use std::fmt;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

pub(crate) fn push_f64(out: &mut String, v: f64) {
    // `{:?}` is Rust's shortest representation that round-trips; finite
    // values are always valid JSON numbers.
    debug_assert!(v.is_finite(), "trace times/values must be finite");
    let _ = write!(out, "{v:?}");
}

pub(crate) fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn field_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

pub(crate) fn field_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ",\"{key}\":");
    push_f64(out, v);
}

pub(crate) fn field_str(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":");
    push_str_escaped(out, v);
}

fn field_bool(out: &mut String, key: &str, v: bool) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn field_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    if let Some(v) = v {
        field_u64(out, key, v);
    }
}

impl TraceEvent {
    /// Appends the event's canonical JSONL encoding (without the trailing
    /// newline) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        push_f64(out, self.time());
        let _ = write!(out, ",\"ev\":\"{}\"", self.kind());
        match self {
            TraceEvent::Tick { kind, .. } => field_str(out, "kind", kind.as_str()),
            TraceEvent::AppSend {
                packet,
                session,
                seq,
                src,
                dst,
                ..
            } => {
                field_u64(out, "packet", *packet);
                field_u64(out, "session", *session);
                field_u64(out, "seq", *seq);
                field_u64(out, "src", *src);
                field_u64(out, "dst", *dst);
            }
            TraceEvent::Tx {
                node,
                kind,
                class,
                bytes,
                packet,
                ..
            } => {
                field_u64(out, "node", *node);
                field_str(out, "kind", kind.as_str());
                field_str(out, "class", class.as_str());
                field_u64(out, "bytes", *bytes);
                field_opt_u64(out, "packet", *packet);
            }
            TraceEvent::Rx {
                node,
                kind,
                bytes,
                at,
                ..
            } => {
                field_u64(out, "node", *node);
                field_str(out, "kind", kind.as_str());
                field_u64(out, "bytes", *bytes);
                field_f64(out, "at", *at);
            }
            TraceEvent::Drop {
                node,
                reason,
                packet,
                ..
            } => {
                field_u64(out, "node", *node);
                field_str(out, "reason", reason);
                field_opt_u64(out, "packet", *packet);
            }
            TraceEvent::TimerFire { node, token, .. } => {
                field_u64(out, "node", *node);
                field_u64(out, "token", *token);
            }
            TraceEvent::LocationLookup {
                node,
                target,
                found,
                ..
            } => {
                field_u64(out, "node", *node);
                field_u64(out, "target", *target);
                field_bool(out, "found", *found);
            }
            TraceEvent::CryptoCharge { node, op, n, .. } => {
                field_u64(out, "node", *node);
                field_str(out, "op", op.as_str());
                field_u64(out, "n", *n);
            }
            TraceEvent::PseudonymRotation { node, .. } => {
                field_u64(out, "node", *node);
            }
            TraceEvent::ZonePartition {
                node,
                packet,
                splits,
                td_x,
                td_y,
                ..
            } => {
                field_u64(out, "node", *node);
                field_u64(out, "packet", *packet);
                field_u64(out, "splits", *splits);
                field_f64(out, "td_x", *td_x);
                field_f64(out, "td_y", *td_y);
            }
            TraceEvent::ForwarderSelect {
                node,
                packet,
                target_x,
                target_y,
                progress,
                ..
            } => {
                field_u64(out, "node", *node);
                field_opt_u64(out, "packet", *packet);
                field_f64(out, "target_x", *target_x);
                field_f64(out, "target_y", *target_y);
                field_bool(out, "progress", *progress);
            }
            TraceEvent::Hop { node, packet, .. }
            | TraceEvent::RandomForwarder { node, packet, .. } => {
                field_u64(out, "node", *node);
                field_u64(out, "packet", *packet);
            }
            TraceEvent::Delivered {
                node,
                packet,
                latency,
                ..
            } => {
                field_u64(out, "node", *node);
                field_u64(out, "packet", *packet);
                field_f64(out, "latency", *latency);
            }
            TraceEvent::NodeDown { node, .. } | TraceEvent::NodeUp { node, .. } => {
                field_u64(out, "node", *node);
            }
            TraceEvent::LinkRetry {
                node,
                packet,
                attempt,
                ..
            } => {
                field_u64(out, "node", *node);
                field_opt_u64(out, "packet", *packet);
                field_u64(out, "attempt", *attempt);
            }
            TraceEvent::RunAborted { reason, events, .. } => {
                field_str(out, "reason", reason);
                field_u64(out, "events", *events);
            }
        }
        out.push('}');
    }

    /// The event's canonical JSONL encoding (without the trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }

    /// Parses one JSONL line back into an event.
    pub fn from_jsonl(line: &str) -> Result<Self, ParseError> {
        parse_line(line, 0)
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Error from [`parse_trace`] / [`TraceEvent::from_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for single-line parses).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.msg)
        } else {
            write!(f, "trace: {}", self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole JSONL document (blank lines skipped) into events.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line, i + 1)?);
    }
    Ok(out)
}

/// A parsed flat-JSON value. Numbers keep their raw text so integer
/// fields survive beyond f64's 53-bit mantissa.
pub(crate) enum Val {
    Num(String),
    Str(String),
    Bool(bool),
    Null,
}

pub(crate) fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Tokenizes one flat JSON object (`{"k":v,...}`, no nesting) into pairs.
pub(crate) fn parse_object(line: &str, lno: usize) -> Result<Vec<(String, Val)>, ParseError> {
    let mut chars = line.char_indices().peekable();
    let mut fields = Vec::new();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    };

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        lno: usize,
    ) -> Result<String, ParseError> {
        let mut s = String::new();
        loop {
            let (_, c) = chars
                .next()
                .ok_or_else(|| err(lno, "unterminated string"))?;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let (_, e) = chars.next().ok_or_else(|| err(lno, "dangling escape"))?;
                    match e {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'b' => s.push('\u{8}'),
                        'f' => s.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) =
                                    chars.next().ok_or_else(|| err(lno, "short \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| err(lno, "bad \\u escape"))?;
                            }
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(lno, "invalid \\u code point"))?,
                            );
                        }
                        other => return Err(err(lno, format!("bad escape '\\{other}'"))),
                    }
                }
                c => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(err(lno, "expected '{'")),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(err(lno, "expected field name")),
        }
        let key = parse_string(&mut chars, lno)?;
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(err(lno, "expected ':'")),
        }
        skip_ws(&mut chars);
        let val = match chars.peek().copied() {
            Some((_, '"')) => {
                chars.next();
                Val::Str(parse_string(&mut chars, lno)?)
            }
            Some((_, 't')) => {
                for expect in "true".chars() {
                    match chars.next() {
                        Some((_, c)) if c == expect => {}
                        _ => return Err(err(lno, "bad literal")),
                    }
                }
                Val::Bool(true)
            }
            Some((_, 'f')) => {
                for expect in "false".chars() {
                    match chars.next() {
                        Some((_, c)) if c == expect => {}
                        _ => return Err(err(lno, "bad literal")),
                    }
                }
                Val::Bool(false)
            }
            Some((_, 'n')) => {
                for expect in "null".chars() {
                    match chars.next() {
                        Some((_, c)) if c == expect => {}
                        _ => return Err(err(lno, "bad literal")),
                    }
                }
                Val::Null
            }
            Some((_, c)) if c == '-' || c.is_ascii_digit() => {
                let mut raw = String::new();
                while let Some((_, c)) = chars.peek().copied() {
                    if c == '-'
                        || c == '+'
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c.is_ascii_digit()
                    {
                        raw.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Val::Num(raw)
            }
            _ => return Err(err(lno, "expected value")),
        };
        fields.push((key, val));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return Err(err(lno, "expected ',' or '}'")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(err(lno, "trailing characters after object"));
    }
    Ok(fields)
}

struct Fields<'a> {
    map: Vec<(String, Val)>,
    lno: usize,
    marker: std::marker::PhantomData<&'a ()>,
}

impl Fields<'_> {
    fn get(&self, key: &str) -> Option<&Val> {
        self.map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn f64(&self, key: &str) -> Result<f64, ParseError> {
        match self.get(key) {
            Some(Val::Num(raw)) => raw
                .parse()
                .map_err(|_| err(self.lno, format!("field '{key}' is not a number"))),
            _ => Err(err(self.lno, format!("missing numeric field '{key}'"))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key) {
            Some(Val::Num(raw)) => raw
                .parse()
                .map_err(|_| err(self.lno, format!("field '{key}' is not an integer"))),
            _ => Err(err(self.lno, format!("missing integer field '{key}'"))),
        }
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, ParseError> {
        match self.get(key) {
            None | Some(Val::Null) => Ok(None),
            Some(_) => self.u64(key).map(Some),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key) {
            Some(Val::Str(s)) => Ok(s),
            _ => Err(err(self.lno, format!("missing string field '{key}'"))),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            _ => Err(err(self.lno, format!("missing boolean field '{key}'"))),
        }
    }
}

fn parse_line(line: &str, lno: usize) -> Result<TraceEvent, ParseError> {
    let f = Fields {
        map: parse_object(line, lno)?,
        lno,
        marker: std::marker::PhantomData,
    };
    let time = f.f64("t")?;
    let ev = f.str("ev")?;
    let event = match ev {
        "tick" => TraceEvent::Tick {
            time,
            kind: TickKind::from_str_opt(f.str("kind")?)
                .ok_or_else(|| err(lno, "unknown tick kind"))?,
        },
        "app_send" => TraceEvent::AppSend {
            time,
            packet: f.u64("packet")?,
            session: f.u64("session")?,
            seq: f.u64("seq")?,
            src: f.u64("src")?,
            dst: f.u64("dst")?,
        },
        "tx" => TraceEvent::Tx {
            time,
            node: f.u64("node")?,
            kind: TxKind::from_str_opt(f.str("kind")?)
                .ok_or_else(|| err(lno, "unknown tx kind"))?,
            class: TrafficKind::from_str_opt(f.str("class")?)
                .ok_or_else(|| err(lno, "unknown traffic class"))?,
            bytes: f.u64("bytes")?,
            packet: f.opt_u64("packet")?,
        },
        "rx" => TraceEvent::Rx {
            time,
            node: f.u64("node")?,
            kind: TxKind::from_str_opt(f.str("kind")?)
                .ok_or_else(|| err(lno, "unknown tx kind"))?,
            bytes: f.u64("bytes")?,
            at: f.f64("at")?,
        },
        "drop" => TraceEvent::Drop {
            time,
            node: f.u64("node")?,
            reason: f.str("reason")?.to_owned(),
            packet: f.opt_u64("packet")?,
        },
        "timer" => TraceEvent::TimerFire {
            time,
            node: f.u64("node")?,
            token: f.u64("token")?,
        },
        "loc_lookup" => TraceEvent::LocationLookup {
            time,
            node: f.u64("node")?,
            target: f.u64("target")?,
            found: f.bool("found")?,
        },
        "crypto" => TraceEvent::CryptoCharge {
            time,
            node: f.u64("node")?,
            op: CryptoOp::from_str_opt(f.str("op")?)
                .ok_or_else(|| err(lno, "unknown crypto op"))?,
            n: f.u64("n")?,
        },
        "pseudonym_rotation" => TraceEvent::PseudonymRotation {
            time,
            node: f.u64("node")?,
        },
        "zone_partition" => TraceEvent::ZonePartition {
            time,
            node: f.u64("node")?,
            packet: f.u64("packet")?,
            splits: f.u64("splits")?,
            td_x: f.f64("td_x")?,
            td_y: f.f64("td_y")?,
        },
        "forwarder_select" => TraceEvent::ForwarderSelect {
            time,
            node: f.u64("node")?,
            packet: f.opt_u64("packet")?,
            target_x: f.f64("target_x")?,
            target_y: f.f64("target_y")?,
            progress: f.bool("progress")?,
        },
        "hop" => TraceEvent::Hop {
            time,
            node: f.u64("node")?,
            packet: f.u64("packet")?,
        },
        "rf" => TraceEvent::RandomForwarder {
            time,
            node: f.u64("node")?,
            packet: f.u64("packet")?,
        },
        "delivered" => TraceEvent::Delivered {
            time,
            node: f.u64("node")?,
            packet: f.u64("packet")?,
            latency: f.f64("latency")?,
        },
        "node_down" => TraceEvent::NodeDown {
            time,
            node: f.u64("node")?,
        },
        "node_up" => TraceEvent::NodeUp {
            time,
            node: f.u64("node")?,
        },
        "link_retry" => TraceEvent::LinkRetry {
            time,
            node: f.u64("node")?,
            packet: f.opt_u64("packet")?,
            attempt: f.u64("attempt")?,
        },
        "run_aborted" => TraceEvent::RunAborted {
            time,
            reason: f.str("reason")?.to_owned(),
            events: f.u64("events")?,
        },
        other => return Err(err(lno, format!("unknown event kind '{other}'"))),
    };
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Tick {
                time: 0.5,
                kind: TickKind::Mobility,
            },
            TraceEvent::AppSend {
                time: 1.0,
                packet: 0,
                session: 2,
                seq: 3,
                src: 4,
                dst: 5,
            },
            TraceEvent::Tx {
                time: 1.25,
                node: 4,
                kind: TxKind::Unicast,
                class: TrafficKind::Data,
                bytes: 532,
                packet: Some(0),
            },
            TraceEvent::Tx {
                time: 1.25,
                node: 4,
                kind: TxKind::Broadcast,
                class: TrafficKind::Cover,
                bytes: 24,
                packet: None,
            },
            TraceEvent::Rx {
                time: 1.25,
                node: 7,
                kind: TxKind::Unicast,
                bytes: 532,
                at: 1.2533,
            },
            TraceEvent::Drop {
                time: 2.0,
                node: 4,
                reason: DropReason::UnicastOutOfRange.as_str().to_owned(),
                packet: Some(0),
            },
            TraceEvent::TimerFire {
                time: 2.5,
                node: 9,
                token: 64,
            },
            TraceEvent::LocationLookup {
                time: 3.0,
                node: 4,
                target: 5,
                found: true,
            },
            TraceEvent::CryptoCharge {
                time: 3.0,
                node: 4,
                op: CryptoOp::PkEncrypt,
                n: 1,
            },
            TraceEvent::PseudonymRotation {
                time: 30.0,
                node: 8,
            },
            TraceEvent::ZonePartition {
                time: 1.25,
                node: 4,
                packet: 0,
                splits: 3,
                td_x: 612.5,
                td_y: 88.0625,
            },
            TraceEvent::ForwarderSelect {
                time: 1.3,
                node: 6,
                packet: Some(0),
                target_x: 612.5,
                target_y: 88.0625,
                progress: false,
            },
            TraceEvent::Hop {
                time: 1.3,
                node: 6,
                packet: 0,
            },
            TraceEvent::RandomForwarder {
                time: 1.3,
                node: 6,
                packet: 0,
            },
            TraceEvent::Delivered {
                time: 1.4,
                node: 5,
                packet: 0,
                latency: 0.4,
            },
            TraceEvent::NodeDown {
                time: 10.0,
                node: 3,
            },
            TraceEvent::NodeUp {
                time: 20.0,
                node: 3,
            },
            TraceEvent::LinkRetry {
                time: 1.26,
                node: 4,
                packet: Some(0),
                attempt: 1,
            },
            TraceEvent::LinkRetry {
                time: 1.27,
                node: 4,
                packet: None,
                attempt: 2,
            },
            TraceEvent::RunAborted {
                time: 5.5,
                reason: "livelock".to_owned(),
                events: 123_456,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for e in all_events() {
            let line = e.to_jsonl();
            let back = TraceEvent::from_jsonl(&line).unwrap_or_else(|err| {
                panic!("parse failed for {line}: {err}");
            });
            assert_eq!(back, e, "round trip of {line}");
        }
    }

    #[test]
    fn document_round_trips() {
        let events = all_events();
        let mut doc = String::new();
        for e in &events {
            e.write_jsonl(&mut doc);
            doc.push('\n');
        }
        assert_eq!(parse_trace(&doc).unwrap(), events);
    }

    #[test]
    fn encoding_is_stable() {
        let e = TraceEvent::Tx {
            time: 1.25,
            node: 4,
            kind: TxKind::Unicast,
            class: TrafficKind::Data,
            bytes: 532,
            packet: Some(7),
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"t\":1.25,\"ev\":\"tx\",\"node\":4,\"kind\":\"unicast\",\"class\":\"data\",\"bytes\":532,\"packet\":7}"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let e = TraceEvent::Drop {
            time: 0.0,
            node: 0,
            reason: "weird \"reason\"\nwith\tescapes\\".to_owned(),
            packet: None,
        };
        let line = e.to_jsonl();
        assert_eq!(TraceEvent::from_jsonl(&line).unwrap(), e);
    }

    #[test]
    fn large_u64_fields_survive() {
        let e = TraceEvent::TimerFire {
            time: 0.0,
            node: 1,
            token: u64::MAX,
        };
        assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()).unwrap(), e);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(TraceEvent::from_jsonl("{\"t\":1.0}").is_err());
        assert!(TraceEvent::from_jsonl("{\"t\":1.0,\"ev\":\"martian\"}").is_err());
        assert!(
            TraceEvent::from_jsonl("{\"t\":1.0,\"ev\":\"hop\",\"node\":1,\"packet\":2}x").is_err()
        );
        let bad = parse_trace("{\"t\":1.0,\"ev\":\"hop\",\"node\":1}\n");
        assert_eq!(bad.unwrap_err().line, 1);
    }

    #[test]
    fn parse_accepts_reordered_fields_and_blank_lines() {
        let doc = "\n{\"ev\":\"hop\",\"packet\":2,\"node\":1,\"t\":1.5}\n\n";
        assert_eq!(
            parse_trace(doc).unwrap(),
            vec![TraceEvent::Hop {
                time: 1.5,
                node: 1,
                packet: 2
            }]
        );
    }
}

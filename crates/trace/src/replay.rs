//! Trace replay: fold an event stream back into per-packet journeys and
//! aggregate counters.
//!
//! This is the correctness oracle half of the trace layer: the
//! simulator's tests reconstruct each packet's hop path from the trace
//! and assert it matches the ground-truth `Metrics` bookkeeping, so any
//! divergence between what the simulator *did* and what it *reported*
//! fails loudly.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// One packet's journey reconstructed from a trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PacketTrace {
    /// Session the packet belongs to (from `app_send`).
    pub session: Option<u64>,
    /// Source node (from `app_send`).
    pub src: Option<u64>,
    /// Destination node (from `app_send`).
    pub dst: Option<u64>,
    /// Sim time the application emitted the packet.
    pub sent_at: Option<f64>,
    /// Nodes that transmitted the packet (`hop`/`rf` events), in
    /// first-touch order, deduplicated — exactly the semantics of
    /// `Metrics.packets[].participants`.
    pub participants: Vec<u64>,
    /// Total hop events (including repeat visits).
    pub hops: u64,
    /// Number of random-forwarder selections on the path.
    pub random_forwarders: u64,
    /// Zone-partition decisions made while routing this packet.
    pub zone_partitions: u64,
    /// Sim time of first delivery, if the packet arrived.
    pub delivered_at: Option<f64>,
    /// First-delivery latency reported in the trace, if any.
    pub latency: Option<f64>,
    /// Drop reasons recorded against this packet.
    pub drops: Vec<String>,
    /// Link-layer ARQ retransmissions charged to this packet
    /// (`link_retry` events).
    pub retries: u64,
}

impl PacketTrace {
    fn touch(&mut self, node: u64) {
        if !self.participants.contains(&node) {
            self.participants.push(node);
        }
    }
}

/// Folds a trace into per-packet journeys, keyed by packet id.
///
/// Only events carrying a packet id contribute; `tx`/`drop` events with
/// `packet: None` (control traffic) are ignored here.
pub fn reconstruct_packets(events: &[TraceEvent]) -> BTreeMap<u64, PacketTrace> {
    let mut packets: BTreeMap<u64, PacketTrace> = BTreeMap::new();
    for ev in events {
        match ev {
            TraceEvent::AppSend {
                time,
                packet,
                session,
                src,
                dst,
                ..
            } => {
                let p = packets.entry(*packet).or_default();
                p.session = Some(*session);
                p.src = Some(*src);
                p.dst = Some(*dst);
                p.sent_at = Some(*time);
            }
            TraceEvent::Hop { node, packet, .. } => {
                let p = packets.entry(*packet).or_default();
                p.hops += 1;
                p.touch(*node);
            }
            TraceEvent::RandomForwarder { node, packet, .. } => {
                let p = packets.entry(*packet).or_default();
                p.random_forwarders += 1;
                p.touch(*node);
            }
            TraceEvent::ZonePartition { packet, .. } => {
                packets.entry(*packet).or_default().zone_partitions += 1;
            }
            TraceEvent::Delivered {
                time,
                packet,
                latency,
                ..
            } => {
                // The destination *receives*; it only joins `participants`
                // if it also transmitted (a `hop` event) — mirroring the
                // ground-truth `Metrics` semantics.
                let p = packets.entry(*packet).or_default();
                if p.delivered_at.is_none() {
                    p.delivered_at = Some(*time);
                    p.latency = Some(*latency);
                }
            }
            TraceEvent::Drop {
                packet: Some(packet),
                reason,
                ..
            } => {
                packets
                    .entry(*packet)
                    .or_default()
                    .drops
                    .push(reason.clone());
            }
            TraceEvent::LinkRetry {
                packet: Some(packet),
                ..
            } => {
                packets.entry(*packet).or_default().retries += 1;
            }
            _ => {}
        }
    }
    packets
}

/// Aggregate counters derived purely from a trace, for cross-checking
/// against the simulator's own `Metrics`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Total `tx` events (frames put on the air).
    pub tx_frames: u64,
    /// Total `rx` events (frames received).
    pub rx_frames: u64,
    /// Application packets emitted (`app_send` events).
    pub app_packets: u64,
    /// Packets with at least one `delivered` event.
    pub delivered_packets: u64,
    /// Drop counts keyed by reason string.
    pub drops_by_reason: BTreeMap<String, u64>,
    /// Timer fires.
    pub timer_fires: u64,
    /// Pseudonym rotations.
    pub pseudonym_rotations: u64,
    /// Location-service lookups (hit or miss).
    pub location_lookups: u64,
    /// Node crashes (`node_down` events).
    pub node_downs: u64,
    /// Node recoveries (`node_up` events).
    pub node_ups: u64,
    /// Link-layer ARQ retransmissions (`link_retry` events).
    pub link_retries: u64,
}

/// Computes [`TraceStats`] over a trace.
pub fn trace_stats(events: &[TraceEvent]) -> TraceStats {
    let mut s = TraceStats::default();
    let mut delivered = std::collections::BTreeSet::new();
    for ev in events {
        match ev {
            TraceEvent::Tx { .. } => s.tx_frames += 1,
            TraceEvent::Rx { .. } => s.rx_frames += 1,
            TraceEvent::AppSend { .. } => s.app_packets += 1,
            TraceEvent::Delivered { packet, .. } => {
                delivered.insert(*packet);
            }
            TraceEvent::Drop { reason, .. } => {
                *s.drops_by_reason.entry(reason.clone()).or_insert(0) += 1;
            }
            TraceEvent::TimerFire { .. } => s.timer_fires += 1,
            TraceEvent::PseudonymRotation { .. } => s.pseudonym_rotations += 1,
            TraceEvent::LocationLookup { .. } => s.location_lookups += 1,
            TraceEvent::NodeDown { .. } => s.node_downs += 1,
            TraceEvent::NodeUp { .. } => s.node_ups += 1,
            TraceEvent::LinkRetry { .. } => s.link_retries += 1,
            _ => {}
        }
    }
    s.delivered_packets = delivered.len() as u64;
    s
}

/// Per-node outage intervals reconstructed from `node_down`/`node_up`
/// events, keyed by node id. An interval still open at end-of-trace has
/// `end == f64::INFINITY`.
///
/// Together with [`reconstruct_packets`] this is the oracle for the
/// fault-injection invariant: a node must not appear in any packet's
/// participant set (hop/random-forwarder events) at a time inside one of
/// its outage intervals.
pub fn down_intervals(events: &[TraceEvent]) -> BTreeMap<u64, Vec<(f64, f64)>> {
    let mut out: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    for ev in events {
        match ev {
            TraceEvent::NodeDown { time, node } => {
                out.entry(*node).or_default().push((*time, f64::INFINITY));
            }
            TraceEvent::NodeUp { time, node } => {
                if let Some(iv) = out
                    .entry(*node)
                    .or_default()
                    .iter_mut()
                    .rev()
                    .find(|iv| iv.1.is_infinite())
                {
                    iv.1 = *time;
                }
            }
            _ => {}
        }
    }
    out
}

/// Streaming checker for the fault-injection invariant documented on
/// [`down_intervals`]: between its `node_down` and the matching `node_up`
/// a crashed node's radio and CPU are off, so no trace event may attribute
/// *activity* to it — no transmission, reception, hop, random-forwarder
/// selection, delivery, timer fire, pseudonym rotation, location lookup,
/// crypto charge, zone partition, or forwarder selection.
///
/// `drop` events are exempt (the simulator legitimately records e.g.
/// `receiver_node_down` *against* the crashed node), as is `app_send`
/// (the application layer generates packets for a crashed source; the
/// packet then surfaces as a `source_node_down` drop).
///
/// Boundary semantics follow stream order, which is dispatch order: fault
/// events are scheduled before any traffic, so at equal timestamps a crash
/// precedes a same-time delivery, and activity at exactly the recovery
/// time is legal because the `node_up` record streams first.
#[derive(Debug, Default)]
pub struct DownNodeAudit {
    down: std::collections::BTreeSet<u64>,
    violations: Vec<String>,
}

impl DownNodeAudit {
    /// A fresh audit with no nodes down.
    pub fn new() -> DownNodeAudit {
        DownNodeAudit::default()
    }

    /// Feeds one event, in trace order.
    pub fn observe(&mut self, ev: &TraceEvent) {
        let activity: Option<(f64, u64)> = match ev {
            TraceEvent::NodeDown { node, .. } => {
                self.down.insert(*node);
                None
            }
            TraceEvent::NodeUp { node, .. } => {
                self.down.remove(node);
                None
            }
            TraceEvent::Tx { time, node, .. }
            | TraceEvent::Rx { time, node, .. }
            | TraceEvent::Hop { time, node, .. }
            | TraceEvent::RandomForwarder { time, node, .. }
            | TraceEvent::Delivered { time, node, .. }
            | TraceEvent::TimerFire { time, node, .. }
            | TraceEvent::PseudonymRotation { time, node }
            | TraceEvent::LocationLookup { time, node, .. }
            | TraceEvent::CryptoCharge { time, node, .. }
            | TraceEvent::ZonePartition { time, node, .. }
            | TraceEvent::ForwarderSelect { time, node, .. } => Some((*time, *node)),
            _ => None,
        };
        if let Some((time, node)) = activity {
            if self.down.contains(&node) {
                self.violations.push(format!(
                    "node {node} recorded `{}` activity at t={time} inside a down interval",
                    ev.kind()
                ));
            }
        }
    }

    /// The violations collected so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Consumes the audit, returning every violation.
    pub fn into_violations(self) -> Vec<String> {
        self.violations
    }
}

/// Folds [`DownNodeAudit`] over a complete trace: every event that
/// attributes activity to a node inside one of its down intervals, as
/// human-readable violation strings. An empty result means the trace
/// honors the fault-injection invariant.
pub fn down_node_activity(events: &[TraceEvent]) -> Vec<String> {
    let mut audit = DownNodeAudit::new();
    for ev in events {
        audit.observe(ev);
    }
    audit.into_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TrafficKind, TxKind};

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::AppSend {
                time: 1.0,
                packet: 0,
                session: 0,
                seq: 0,
                src: 3,
                dst: 9,
            },
            TraceEvent::Tx {
                time: 1.0,
                node: 3,
                kind: TxKind::Unicast,
                class: TrafficKind::Data,
                bytes: 532,
                packet: Some(0),
            },
            TraceEvent::Hop {
                time: 1.01,
                node: 5,
                packet: 0,
            },
            TraceEvent::Rx {
                time: 1.01,
                node: 5,
                kind: TxKind::Unicast,
                bytes: 532,
                at: 1.01,
            },
            TraceEvent::RandomForwarder {
                time: 1.01,
                node: 5,
                packet: 0,
            },
            TraceEvent::ZonePartition {
                time: 1.01,
                node: 5,
                packet: 0,
                splits: 2,
                td_x: 10.0,
                td_y: 20.0,
            },
            TraceEvent::Hop {
                time: 1.02,
                node: 5,
                packet: 0,
            },
            TraceEvent::Delivered {
                time: 1.03,
                node: 9,
                packet: 0,
                latency: 0.03,
            },
            // duplicate delivery must not overwrite the first
            TraceEvent::Delivered {
                time: 2.0,
                node: 9,
                packet: 0,
                latency: 1.0,
            },
            TraceEvent::AppSend {
                time: 1.5,
                packet: 1,
                session: 1,
                seq: 0,
                src: 4,
                dst: 8,
            },
            TraceEvent::Drop {
                time: 1.6,
                node: 4,
                reason: "leg_ttl_exhausted".to_owned(),
                packet: Some(1),
            },
            TraceEvent::Drop {
                time: 1.7,
                node: 7,
                reason: "unicast_channel_loss".to_owned(),
                packet: None,
            },
            TraceEvent::LinkRetry {
                time: 1.65,
                node: 4,
                packet: Some(1),
                attempt: 1,
            },
            TraceEvent::NodeDown { time: 5.0, node: 7 },
            TraceEvent::NodeUp { time: 9.0, node: 7 },
            TraceEvent::NodeDown {
                time: 12.0,
                node: 7,
            },
        ]
    }

    #[test]
    fn reconstructs_packet_journeys() {
        let packets = reconstruct_packets(&sample_trace());
        assert_eq!(packets.len(), 2);
        let p0 = &packets[&0];
        assert_eq!(p0.src, Some(3));
        assert_eq!(p0.dst, Some(9));
        assert_eq!(p0.session, Some(0));
        assert_eq!(p0.sent_at, Some(1.0));
        assert_eq!(p0.participants, vec![5]);
        assert_eq!(p0.hops, 2);
        assert_eq!(p0.random_forwarders, 1);
        assert_eq!(p0.zone_partitions, 1);
        assert_eq!(p0.delivered_at, Some(1.03));
        assert_eq!(p0.latency, Some(0.03));
        let p1 = &packets[&1];
        assert_eq!(p1.delivered_at, None);
        assert_eq!(p1.drops, vec!["leg_ttl_exhausted".to_owned()]);
        assert_eq!(p1.retries, 1);
        assert_eq!(p0.retries, 0);
    }

    #[test]
    fn stats_count_by_kind() {
        let s = trace_stats(&sample_trace());
        assert_eq!(s.tx_frames, 1);
        assert_eq!(s.rx_frames, 1);
        assert_eq!(s.app_packets, 2);
        assert_eq!(s.delivered_packets, 1);
        assert_eq!(s.drops_by_reason["leg_ttl_exhausted"], 1);
        assert_eq!(s.drops_by_reason["unicast_channel_loss"], 1);
        assert_eq!(s.node_downs, 2);
        assert_eq!(s.node_ups, 1);
        assert_eq!(s.link_retries, 1);
    }

    #[test]
    fn down_intervals_pair_events_per_node() {
        let ivs = down_intervals(&sample_trace());
        assert_eq!(ivs.len(), 1);
        let node7 = &ivs[&7];
        assert_eq!(node7[0], (5.0, 9.0));
        assert_eq!(node7[1].0, 12.0);
        assert!(node7[1].1.is_infinite());
    }

    #[test]
    fn down_node_activity_accepts_clean_traces() {
        // The sample trace never attributes activity to node 7 while it
        // is down, so the executable form of the invariant holds.
        assert!(down_node_activity(&sample_trace()).is_empty());
    }

    #[test]
    fn down_node_activity_flags_planted_violations() {
        let mut events = vec![
            TraceEvent::NodeDown { time: 5.0, node: 7 },
            // Activity by a *different* node while 7 is down: fine.
            TraceEvent::Hop {
                time: 6.0,
                node: 3,
                packet: 0,
            },
            // Planted bug: the crashed node forwards a packet.
            TraceEvent::Hop {
                time: 7.0,
                node: 7,
                packet: 0,
            },
            TraceEvent::NodeUp { time: 9.0, node: 7 },
            // After recovery the node may act again.
            TraceEvent::Hop {
                time: 9.5,
                node: 7,
                packet: 1,
            },
        ];
        let violations = down_node_activity(&events);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("node 7"), "{violations:?}");
        assert!(violations[0].contains("hop"), "{violations:?}");
        assert!(violations[0].contains("t=7"), "{violations:?}");

        // A planted Tx while down is caught too.
        events.push(TraceEvent::NodeDown {
            time: 12.0,
            node: 7,
        });
        events.push(TraceEvent::Tx {
            time: 13.0,
            node: 7,
            kind: TxKind::Broadcast,
            class: TrafficKind::Data,
            bytes: 64,
            packet: None,
        });
        assert_eq!(down_node_activity(&events).len(), 2);
    }

    #[test]
    fn down_node_activity_boundary_follows_stream_order() {
        // Equal timestamps resolve by stream order, mirroring the
        // simulator's FIFO dispatch: a crash streamed before a same-time
        // hop makes the hop a violation; activity streamed at exactly the
        // recovery time (after `node_up`) is legal.
        let crash_then_hop = vec![
            TraceEvent::NodeDown { time: 5.0, node: 1 },
            TraceEvent::Hop {
                time: 5.0,
                node: 1,
                packet: 0,
            },
        ];
        assert_eq!(down_node_activity(&crash_then_hop).len(), 1);

        let recover_then_hop = vec![
            TraceEvent::NodeDown { time: 5.0, node: 1 },
            TraceEvent::NodeUp { time: 9.0, node: 1 },
            TraceEvent::Hop {
                time: 9.0,
                node: 1,
                packet: 0,
            },
        ];
        assert!(down_node_activity(&recover_then_hop).is_empty());
    }

    #[test]
    fn down_node_activity_agrees_with_down_intervals() {
        // The streaming audit and the interval reconstruction are two
        // views of the same invariant: an activity event at a time
        // strictly inside a `down_intervals` interval must be flagged,
        // and one strictly outside every interval must not be.
        let events = vec![
            TraceEvent::NodeDown { time: 2.0, node: 4 },
            TraceEvent::Hop {
                time: 3.0,
                node: 4,
                packet: 0,
            }, // inside (2, 6)
            TraceEvent::NodeUp { time: 6.0, node: 4 },
            TraceEvent::Hop {
                time: 7.0,
                node: 4,
                packet: 0,
            }, // outside
            TraceEvent::NodeDown { time: 8.0, node: 4 },
            TraceEvent::RandomForwarder {
                time: 9.0,
                node: 4,
                packet: 1,
            }, // inside the open-ended (8, inf)
        ];
        let ivs = down_intervals(&events);
        let flagged = down_node_activity(&events);
        assert_eq!(ivs[&4], vec![(2.0, 6.0), (8.0, f64::INFINITY)]);
        assert_eq!(flagged.len(), 2);
        let inside = |t: f64| ivs[&4].iter().any(|&(a, b)| t > a && t < b);
        assert!(inside(3.0) && inside(9.0) && !inside(7.0));
    }
}

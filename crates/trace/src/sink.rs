//! Trace sinks: where emitted [`TraceEvent`]s go.
//!
//! The simulator holds a [`Tracer`] — a thin wrapper around
//! `Option<Box<dyn TraceSink>>` whose [`Tracer::emit_with`] takes a
//! closure, so when tracing is disabled the event is never even
//! constructed. That is what keeps the `NullSink`/disabled path within
//! the "≤ 5% overhead" budget.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives trace events in emission order.
///
/// Implementations must not reorder events: the byte-identical-trace
/// guarantee is "same seed ⇒ same event sequence ⇒ same sink output".
pub trait TraceSink {
    /// Handles one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Flushes any buffered output. Default is a no-op.
    fn flush(&mut self) {}
}

/// A sink that discards every event.
///
/// Exists so call sites can hold a `Box<dyn TraceSink>` unconditionally;
/// the [`Tracer`] wrapper skips even event construction when disabled,
/// which is cheaper still.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Streams events as JSON Lines to any [`Write`] target.
///
/// Each event becomes exactly one `\n`-terminated line in the canonical
/// encoding from [`TraceEvent::to_jsonl`]. I/O errors are latched (first
/// error kept, later writes skipped) rather than panicking mid-run;
/// check [`JsonlSink::error`] after the run.
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            line: String::with_capacity(128),
            error: None,
        }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the inner writer (or the latched error).
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        event.write_jsonl(&mut self.line);
        self.line.push('\n');
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Keeps the last `capacity` events for post-mortem inspection.
///
/// The buffer is shared: clone a [`RingBufferHandle`] before handing the
/// sink to the simulator, then read the tail after (or during) the run.
pub struct RingBufferSink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// A handle for reading the buffer after the sink has been moved
    /// into the simulator.
    pub fn handle(&self) -> RingBufferHandle {
        RingBufferHandle {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, event: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring buffer poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Fans every event out to two sinks, in order.
///
/// Lets a post-mortem [`RingBufferSink`] ride alongside a user-provided
/// sink (e.g. a [`JsonlSink`] streaming the full trace to disk) without
/// either knowing about the other.
pub struct TeeSink {
    first: Box<dyn TraceSink>,
    second: Box<dyn TraceSink>,
}

impl TeeSink {
    /// A sink delivering each event to `first` then `second`.
    pub fn new(first: Box<dyn TraceSink>, second: Box<dyn TraceSink>) -> Self {
        Self { first, second }
    }
}

impl TraceSink for TeeSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.first.emit(event);
        self.second.emit(event);
    }

    fn flush(&mut self) {
        self.first.flush();
        self.second.flush();
    }
}

/// Read side of a [`RingBufferSink`].
#[derive(Clone)]
pub struct RingBufferHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingBufferHandle {
    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("ring buffer poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The buffered events rendered as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            e.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

/// An in-memory, clonable [`Write`] target for capturing JSONL traces in
/// tests: `JsonlSink::new(shared.clone())` writes, `shared.contents()`
/// reads back.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents as a UTF-8 string.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("shared buf poisoned").clone())
            .expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The simulator-side switchboard: holds an optional sink and skips
/// event construction entirely when no sink is installed.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl Tracer {
    /// A disabled tracer (the default): `emit_with` closures never run.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `f`, constructing it only if a sink is
    /// installed. This is the one call sites should use on hot paths.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            let event = f();
            sink.emit(&event);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }

    /// Installs a sink, returning the previous one.
    pub fn set(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.sink.replace(sink)
    }

    /// Removes and returns the sink, disabling tracing.
    pub fn take(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(time: f64, node: u64) -> TraceEvent {
        TraceEvent::Hop {
            time,
            node,
            packet: 1,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit_with(|| {
            built = true;
            hop(0.0, 0)
        });
        assert!(!built);
        assert!(!t.is_enabled());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuf::new();
        let mut t = Tracer::new(Box::new(JsonlSink::new(buf.clone())));
        assert!(t.is_enabled());
        t.emit_with(|| hop(1.0, 2));
        t.emit_with(|| hop(2.0, 3));
        t.flush();
        let text = buf.contents();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"t\":1.0,\"ev\":\"hop\""));
    }

    #[test]
    fn ring_buffer_keeps_last_n() {
        let sink = RingBufferSink::new(2);
        let handle = sink.handle();
        let mut t = Tracer::new(Box::new(sink));
        for i in 0..5 {
            t.emit_with(|| hop(i as f64, i));
        }
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time(), 3.0);
        assert_eq!(events[1].time(), 4.0);
        assert_eq!(handle.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn tee_sink_feeds_both_sinks() {
        let buf = SharedBuf::new();
        let ring = RingBufferSink::new(8);
        let handle = ring.handle();
        let mut t = Tracer::new(Box::new(TeeSink::new(
            Box::new(JsonlSink::new(buf.clone())),
            Box::new(ring),
        )));
        t.emit_with(|| hop(1.0, 2));
        t.flush();
        assert_eq!(buf.contents().lines().count(), 1);
        assert_eq!(handle.events().len(), 1);
    }

    #[test]
    fn take_and_set_swap_sinks() {
        let mut t = Tracer::new(Box::new(NullSink));
        assert!(t.take().is_some());
        assert!(!t.is_enabled());
        assert!(t.set(Box::new(NullSink)).is_none());
        assert!(t.is_enabled());
    }
}

//! The trace query engine: filters, packet-follow, and per-window
//! aggregates over a stored event stream.
//!
//! This is the third observability layer — the engine behind the
//! `tracequery` CLI and, per the roadmap, the query endpoint a future
//! `alertd` serves over a socket. Everything here is deterministic:
//! results preserve trace order, aggregates iterate sorted maps, and
//! the CSV/JSON renderers use the same fixed field order and
//! shortest-round-trip float formatting as the event codec, so the same
//! stored trace always yields byte-identical query output.
//!
//! The window convention matches `alert-timeseries/1`
//! (crate::timeseries): window `k` covers `((k)·every, (k+1)·every]`
//! simulated seconds, with window 0 additionally including `t = 0`.

use crate::event::TraceEvent;
use crate::jsonl::push_f64;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A conjunctive filter over trace events: every populated field must
/// match. An empty filter matches everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventFilter {
    /// Only events attributed to this node ([`TraceEvent::node`]).
    pub node: Option<u64>,
    /// Only events at or after this simulated time.
    pub t_min: Option<f64>,
    /// Only events at or before this simulated time.
    pub t_max: Option<f64>,
    /// Only events of this kind (canonical `ev` name, e.g. `"drop"`).
    pub kind: Option<String>,
    /// Only drop events with this canonical reason (implies `kind`
    /// `"drop"`).
    pub drop_reason: Option<String>,
    /// Only events referencing this packet id ([`TraceEvent::packet_id`]).
    pub packet: Option<u64>,
}

impl EventFilter {
    /// Whether `e` satisfies every populated criterion.
    pub fn matches(&self, e: &TraceEvent) -> bool {
        if let Some(n) = self.node {
            if e.node() != Some(n) {
                return false;
            }
        }
        if let Some(t) = self.t_min {
            if e.time() < t {
                return false;
            }
        }
        if let Some(t) = self.t_max {
            if e.time() > t {
                return false;
            }
        }
        if let Some(kind) = &self.kind {
            if e.kind() != kind {
                return false;
            }
        }
        if let Some(want) = &self.drop_reason {
            match e {
                TraceEvent::Drop { reason, .. } if reason == want => {}
                _ => return false,
            }
        }
        if let Some(p) = self.packet {
            if e.packet_id() != Some(p) {
                return false;
            }
        }
        true
    }
}

/// Events satisfying `filter`, in trace order.
pub fn filter_events<'a>(events: &'a [TraceEvent], filter: &EventFilter) -> Vec<&'a TraceEvent> {
    events.iter().filter(|e| filter.matches(e)).collect()
}

/// Every event referencing packet `packet`, in trace order — the
/// packet's life from `app_send` through its hop path to delivery or
/// drop.
pub fn follow_packet(events: &[TraceEvent], packet: u64) -> Vec<&TraceEvent> {
    events
        .iter()
        .filter(|e| e.packet_id() == Some(packet))
        .collect()
}

/// Aggregate statistics over one time window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowAggregate {
    /// Window start, simulated seconds (exclusive except for window 0).
    pub t_start: f64,
    /// Window end, simulated seconds (inclusive).
    pub t_end: f64,
    /// Total events in the window.
    pub events: u64,
    /// Event counts by canonical kind name.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Bytes transmitted (sum of `tx` frame sizes).
    pub tx_bytes: u64,
    /// Bytes received (sum of `rx` frame sizes).
    pub rx_bytes: u64,
    /// Drop counts by canonical reason.
    pub drops: BTreeMap<String, u64>,
    /// Packets first-delivered in the window.
    pub delivered: u64,
    /// Sum of end-to-end latencies of those deliveries, in seconds.
    pub latency_sum: f64,
}

/// Index of the window containing simulated time `t` (see the module
/// docs for the boundary convention).
fn window_index(t: f64, every_s: f64) -> usize {
    let idx = (t / every_s).ceil() as i64 - 1;
    idx.max(0) as usize
}

/// Partitions `events` into contiguous `every_s`-wide windows and
/// aggregates each. Empty trailing windows are not materialised, but
/// interior gaps are, so window `k` always covers
/// `(k·every_s, (k+1)·every_s]`.
///
/// # Panics
/// If `every_s` is not finite and positive.
pub fn window_aggregates(events: &[TraceEvent], every_s: f64) -> Vec<WindowAggregate> {
    assert!(
        every_s.is_finite() && every_s > 0.0,
        "window width must be finite and positive, got {every_s}"
    );
    let mut windows: Vec<WindowAggregate> = Vec::new();
    for e in events {
        let idx = window_index(e.time(), every_s);
        while windows.len() <= idx {
            let k = windows.len();
            windows.push(WindowAggregate {
                t_start: k as f64 * every_s,
                t_end: (k + 1) as f64 * every_s,
                ..WindowAggregate::default()
            });
        }
        let w = &mut windows[idx];
        w.events += 1;
        *w.by_kind.entry(e.kind()).or_insert(0) += 1;
        match e {
            TraceEvent::Tx { bytes, .. } => w.tx_bytes += bytes,
            TraceEvent::Rx { bytes, .. } => w.rx_bytes += bytes,
            TraceEvent::Drop { reason, .. } => {
                *w.drops.entry(reason.clone()).or_insert(0) += 1;
            }
            TraceEvent::Delivered { latency, .. } => {
                w.delivered += 1;
                w.latency_sum += latency;
            }
            _ => {}
        }
    }
    windows
}

// ---------------------------------------------------------------------
// Deterministic rendering
// ---------------------------------------------------------------------

/// Renders events as canonical JSONL, one line each — identical bytes to
/// the stored trace lines they came from.
pub fn render_events_jsonl(events: &[&TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        e.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

/// Renders events as CSV with the fixed header
/// `t,ev,node,packet` (empty cells for events without a node or packet).
pub fn render_events_csv(events: &[&TraceEvent]) -> String {
    let mut out = String::from("t,ev,node,packet\n");
    for e in events {
        push_f64(&mut out, e.time());
        let _ = write!(out, ",{}", e.kind());
        match e.node() {
            Some(n) => {
                let _ = write!(out, ",{n}");
            }
            None => out.push(','),
        }
        match e.packet_id() {
            Some(p) => {
                let _ = write!(out, ",{p}");
            }
            None => out.push(','),
        }
        out.push('\n');
    }
    out
}

/// Renders window aggregates as CSV with the fixed header
/// `t_start,t_end,events,tx,rx,drops,delivered,tx_bytes,rx_bytes,latency_sum`.
pub fn render_windows_csv(windows: &[WindowAggregate]) -> String {
    let mut out =
        String::from("t_start,t_end,events,tx,rx,drops,delivered,tx_bytes,rx_bytes,latency_sum\n");
    for w in windows {
        push_f64(&mut out, w.t_start);
        out.push(',');
        push_f64(&mut out, w.t_end);
        let tx = w.by_kind.get("tx").copied().unwrap_or(0);
        let rx = w.by_kind.get("rx").copied().unwrap_or(0);
        let drops: u64 = w.drops.values().sum();
        let _ = write!(
            out,
            ",{},{tx},{rx},{drops},{},{},{},",
            w.events, w.delivered, w.tx_bytes, w.rx_bytes
        );
        push_f64(&mut out, w.latency_sum);
        out.push('\n');
    }
    out
}

/// Renders window aggregates as a single JSON document
/// (`alert-windows/1`), one window object per line for diffability.
pub fn render_windows_json(every_s: f64, windows: &[WindowAggregate]) -> String {
    let mut out = String::from("{\"schema\":\"alert-windows/1\",\"every_s\":");
    push_f64(&mut out, every_s);
    out.push_str(",\"windows\":[");
    for (i, w) in windows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"t_start\":");
        push_f64(&mut out, w.t_start);
        out.push_str(",\"t_end\":");
        push_f64(&mut out, w.t_end);
        let _ = write!(out, ",\"events\":{}", w.events);
        out.push_str(",\"by_kind\":{");
        for (j, (kind, n)) in w.by_kind.iter().enumerate() {
            let _ = write!(out, "{}\"{kind}\":{n}", if j == 0 { "" } else { "," });
        }
        let _ = write!(out, "}},\"tx_bytes\":{}", w.tx_bytes);
        let _ = write!(out, ",\"rx_bytes\":{}", w.rx_bytes);
        out.push_str(",\"drops\":{");
        for (j, (reason, n)) in w.drops.iter().enumerate() {
            let _ = write!(out, "{}\"{reason}\":{n}", if j == 0 { "" } else { "," });
        }
        let _ = write!(out, "}},\"delivered\":{}", w.delivered);
        out.push_str(",\"latency_sum\":");
        push_f64(&mut out, w.latency_sum);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TrafficKind, TxKind};

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::AppSend {
                time: 0.0,
                packet: 1,
                session: 0,
                seq: 0,
                src: 2,
                dst: 9,
            },
            TraceEvent::Tx {
                time: 0.5,
                node: 2,
                kind: TxKind::Unicast,
                class: TrafficKind::Data,
                bytes: 512,
                packet: Some(1),
            },
            TraceEvent::Hop {
                time: 0.5,
                node: 2,
                packet: 1,
            },
            TraceEvent::Rx {
                time: 0.5,
                node: 5,
                kind: TxKind::Unicast,
                bytes: 512,
                at: 0.503,
            },
            TraceEvent::Drop {
                time: 5.5,
                node: 5,
                reason: "unicast_channel_loss".to_owned(),
                packet: Some(1),
            },
            TraceEvent::Delivered {
                time: 9.5,
                node: 9,
                packet: 1,
                latency: 9.5,
            },
            TraceEvent::Hop {
                time: 10.0,
                node: 7,
                packet: 2,
            },
        ]
    }

    #[test]
    fn filter_by_node_time_kind_reason_and_packet() {
        let t = sample_trace();
        let by_node = filter_events(
            &t,
            &EventFilter {
                node: Some(2),
                ..EventFilter::default()
            },
        );
        assert_eq!(by_node.len(), 2);
        let by_window = filter_events(
            &t,
            &EventFilter {
                t_min: Some(0.5),
                t_max: Some(5.5),
                ..EventFilter::default()
            },
        );
        assert_eq!(by_window.len(), 4);
        let by_kind = filter_events(
            &t,
            &EventFilter {
                kind: Some("hop".to_owned()),
                ..EventFilter::default()
            },
        );
        assert_eq!(by_kind.len(), 2);
        let by_reason = filter_events(
            &t,
            &EventFilter {
                drop_reason: Some("unicast_channel_loss".to_owned()),
                ..EventFilter::default()
            },
        );
        assert_eq!(by_reason.len(), 1);
        assert!(matches!(by_reason[0], TraceEvent::Drop { .. }));
        let by_packet = filter_events(
            &t,
            &EventFilter {
                packet: Some(2),
                ..EventFilter::default()
            },
        );
        assert_eq!(by_packet.len(), 1);
        assert!(filter_events(&t, &EventFilter::default()).len() == t.len());
    }

    #[test]
    fn follow_returns_packet_lifecycle_in_order() {
        let t = sample_trace();
        let path = follow_packet(&t, 1);
        let kinds: Vec<&str> = path.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["app_send", "tx", "hop", "drop", "delivered"]);
    }

    #[test]
    fn windows_match_timeseries_boundaries() {
        assert_eq!(window_index(0.0, 5.0), 0);
        assert_eq!(window_index(5.0, 5.0), 0);
        assert_eq!(window_index(5.0001, 5.0), 1);
        assert_eq!(window_index(10.0, 5.0), 1);
        let w = window_aggregates(&sample_trace(), 5.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].events, 4);
        assert_eq!(w[0].tx_bytes, 512);
        assert_eq!(w[0].rx_bytes, 512);
        assert_eq!(w[1].drops["unicast_channel_loss"], 1);
        assert_eq!(w[1].delivered, 1);
        // Per-window event totals sum to the whole-run total.
        let total: u64 = w.iter().map(|w| w.events).sum();
        assert_eq!(total, sample_trace().len() as u64);
        // t = 10.0 lands in window 1 (inclusive upper bound), so no
        // third window is materialised.
        assert_eq!(w[1].by_kind["hop"], 1);
    }

    #[test]
    fn renderers_are_stable() {
        let t = sample_trace();
        let sel = filter_events(&t, &EventFilter::default());
        let jsonl = render_events_jsonl(&sel);
        assert_eq!(jsonl.lines().count(), t.len());
        assert_eq!(
            jsonl.lines().next().unwrap(),
            t[0].to_jsonl(),
            "jsonl rendering is the canonical codec"
        );
        let csv = render_events_csv(&sel);
        assert_eq!(csv.lines().next().unwrap(), "t,ev,node,packet");
        assert_eq!(csv.lines().nth(1).unwrap(), "0.0,app_send,,1");
        assert_eq!(csv.lines().nth(2).unwrap(), "0.5,tx,2,1");
        let w = window_aggregates(&t, 5.0);
        let wcsv = render_windows_csv(&w);
        assert_eq!(
            wcsv.lines().next().unwrap(),
            "t_start,t_end,events,tx,rx,drops,delivered,tx_bytes,rx_bytes,latency_sum"
        );
        assert_eq!(
            wcsv.lines().nth(1).unwrap(),
            "0.0,5.0,4,1,1,0,0,512,512,0.0"
        );
        let wjson = render_windows_json(5.0, &w);
        assert!(wjson.starts_with("{\"schema\":\"alert-windows/1\",\"every_s\":5.0,"));
        assert!(wjson.contains("\"drops\":{\"unicast_channel_loss\":1}"));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(wjson, render_windows_json(5.0, &window_aggregates(&t, 5.0)));
    }
}

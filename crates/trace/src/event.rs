//! The structured trace vocabulary: one enum variant per observable step
//! of a simulation run, plus the shared typed drop-reason taxonomy.

use std::fmt;

/// Which periodic engine tick fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickKind {
    /// Mobility integration step.
    Mobility,
    /// Hello-beacon round (neighbor tables + pseudonym rotation).
    Hello,
    /// Location-service position refresh.
    Location,
}

impl TickKind {
    /// Canonical wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TickKind::Mobility => "mobility",
            TickKind::Hello => "hello",
            TickKind::Location => "location",
        }
    }

    /// Parses a canonical wire name.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "mobility" => TickKind::Mobility,
            "hello" => TickKind::Hello,
            "location" => TickKind::Location,
            _ => return None,
        })
    }
}

/// Link-layer addressing of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// Unicast to one pseudonym.
    Unicast,
    /// One-hop broadcast.
    Broadcast,
}

impl TxKind {
    /// Canonical wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TxKind::Unicast => "unicast",
            TxKind::Broadcast => "broadcast",
        }
    }

    /// Parses a canonical wire name.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "unicast" => TxKind::Unicast,
            "broadcast" => TxKind::Broadcast,
            _ => return None,
        })
    }
}

/// Traffic class of a transmission (mirrors the simulator's accounting
/// classes without depending on the simulator crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Application data.
    Data,
    /// Control traffic.
    Control,
    /// Control traffic counted as routing hops.
    ControlHop,
    /// Cover traffic.
    Cover,
}

impl TrafficKind {
    /// Canonical wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficKind::Data => "data",
            TrafficKind::Control => "control",
            TrafficKind::ControlHop => "control_hop",
            TrafficKind::Cover => "cover",
        }
    }

    /// Parses a canonical wire name.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "data" => TrafficKind::Data,
            "control" => TrafficKind::Control,
            "control_hop" => TrafficKind::ControlHop,
            "cover" => TrafficKind::Cover,
            _ => return None,
        })
    }
}

/// Which cryptographic operation class was charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoOp {
    /// Symmetric encryption/decryption.
    Symmetric,
    /// Public-key encryption.
    PkEncrypt,
    /// Public-key decryption / signing.
    PkDecrypt,
    /// Signature verification.
    PkVerify,
    /// Hash evaluation.
    Hash,
}

impl CryptoOp {
    /// Canonical wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            CryptoOp::Symmetric => "symmetric",
            CryptoOp::PkEncrypt => "pk_encrypt",
            CryptoOp::PkDecrypt => "pk_decrypt",
            CryptoOp::PkVerify => "pk_verify",
            CryptoOp::Hash => "hash",
        }
    }

    /// Parses a canonical wire name.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "symmetric" => CryptoOp::Symmetric,
            "pk_encrypt" => CryptoOp::PkEncrypt,
            "pk_decrypt" => CryptoOp::PkDecrypt,
            "pk_verify" => CryptoOp::PkVerify,
            "hash" => CryptoOp::Hash,
            _ => return None,
        })
    }
}

/// Why a frame or packet was dropped — the shared typed taxonomy behind
/// the previously stringly-typed `record_drop` calls.
///
/// The channel-model reasons are first-class variants; protocol-specific
/// diagnostics travel as [`DropReason::Protocol`]. `From<&'static str>`
/// canonicalises known strings back to their variant, so legacy call
/// sites (`api.mark_drop("leg_ttl_exhausted")`) keep producing the same
/// typed reason and the same metrics keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Unicast target had moved out of radio range.
    UnicastOutOfRange,
    /// Frame lost to the stochastic channel.
    UnicastChannelLoss,
    /// Unicast addressed to a pseudonym nobody currently holds.
    UnicastUnknownPseudonym,
    /// The location service had no record of the destination.
    LocationLookupFailed,
    /// A greedy leg exhausted its per-leg TTL.
    LegTtlExhausted,
    /// The packet exhausted its total TTL.
    PacketTtlExhausted,
    /// The link-layer ARQ gave up after the configured retry budget.
    RetryLimitExceeded,
    /// The resolved unicast receiver was crashed (fault plan).
    ReceiverNodeDown,
    /// The application source was crashed when the packet was generated.
    SourceNodeDown,
    /// Protocol-specific diagnostic (e.g. `"zap_greedy_stuck"`).
    Protocol(&'static str),
}

impl DropReason {
    /// Canonical string, identical to the legacy metrics map keys.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::UnicastOutOfRange => "unicast_out_of_range",
            DropReason::UnicastChannelLoss => "unicast_channel_loss",
            DropReason::UnicastUnknownPseudonym => "unicast_unknown_pseudonym",
            DropReason::LocationLookupFailed => "location_lookup_failed",
            DropReason::LegTtlExhausted => "leg_ttl_exhausted",
            DropReason::PacketTtlExhausted => "packet_ttl_exhausted",
            DropReason::RetryLimitExceeded => "retry_limit_exceeded",
            DropReason::ReceiverNodeDown => "receiver_node_down",
            DropReason::SourceNodeDown => "source_node_down",
            DropReason::Protocol(s) => s,
        }
    }
}

impl From<&'static str> for DropReason {
    /// Canonicalises known reason strings to their typed variant; anything
    /// else becomes [`DropReason::Protocol`].
    fn from(s: &'static str) -> Self {
        match s {
            "unicast_out_of_range" => DropReason::UnicastOutOfRange,
            "unicast_channel_loss" => DropReason::UnicastChannelLoss,
            "unicast_unknown_pseudonym" => DropReason::UnicastUnknownPseudonym,
            "location_lookup_failed" => DropReason::LocationLookupFailed,
            "leg_ttl_exhausted" => DropReason::LegTtlExhausted,
            "packet_ttl_exhausted" => DropReason::PacketTtlExhausted,
            "retry_limit_exceeded" => DropReason::RetryLimitExceeded,
            "receiver_node_down" => DropReason::ReceiverNodeDown,
            "source_node_down" => DropReason::SourceNodeDown,
            other => DropReason::Protocol(other),
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One observable step of a simulation run.
///
/// All identifiers are plain integers (ground-truth node index, packet
/// index, session index) so the trace crate sits below the simulator in
/// the dependency graph. Times are simulated seconds; the [`TraceEvent::Rx`]
/// variant carries both the send time (`time`, when the event is emitted)
/// and the resolved delivery time (`at`).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A periodic engine tick was dispatched.
    Tick {
        /// Simulated time.
        time: f64,
        /// Which tick.
        kind: TickKind,
    },
    /// The traffic generator handed a packet to its source.
    AppSend {
        /// Simulated time.
        time: f64,
        /// Application packet id.
        packet: u64,
        /// S–D pair index.
        session: u64,
        /// Sequence number within the session.
        seq: u64,
        /// True source node.
        src: u64,
        /// True destination node.
        dst: u64,
    },
    /// One wireless transmission (any traffic class).
    Tx {
        /// Simulated send time.
        time: f64,
        /// Transmitting node.
        node: u64,
        /// Unicast or broadcast.
        kind: TxKind,
        /// Traffic class.
        class: TrafficKind,
        /// Frame size in bytes.
        bytes: u64,
        /// Application packet id, when data-plane.
        packet: Option<u64>,
    },
    /// A frame reception was resolved (scheduled for delivery).
    Rx {
        /// Simulated send time (emission order matches [`TraceEvent::Tx`]).
        time: f64,
        /// Receiving node.
        node: u64,
        /// Unicast or broadcast.
        kind: TxKind,
        /// Frame size in bytes.
        bytes: u64,
        /// Simulated delivery time.
        at: f64,
    },
    /// A frame or packet was dropped.
    Drop {
        /// Simulated time.
        time: f64,
        /// Node where the drop occurred (sender for channel drops).
        node: u64,
        /// Canonical reason string (see [`DropReason`]).
        reason: String,
        /// Application packet id, when known.
        packet: Option<u64>,
    },
    /// A protocol timer fired.
    TimerFire {
        /// Simulated time.
        time: f64,
        /// Owning node.
        node: u64,
        /// Protocol-defined token.
        token: u64,
    },
    /// A location-service lookup.
    LocationLookup {
        /// Simulated time.
        time: f64,
        /// Querying node.
        node: u64,
        /// Queried node.
        target: u64,
        /// Whether the service had a record.
        found: bool,
    },
    /// Cryptographic operations were charged.
    CryptoCharge {
        /// Simulated time.
        time: f64,
        /// Charged node.
        node: u64,
        /// Operation class.
        op: CryptoOp,
        /// Number of operations.
        n: u64,
    },
    /// A node rotated its pseudonym.
    PseudonymRotation {
        /// Simulated time.
        time: f64,
        /// Rotating node.
        node: u64,
    },
    /// ALERT hierarchical zone partition: a data holder separated itself
    /// from the destination zone and drew a temporary destination.
    ZonePartition {
        /// Simulated time.
        time: f64,
        /// Partitioning node (source or random forwarder).
        node: u64,
        /// Application packet id.
        packet: u64,
        /// Number of splits this partition round performed.
        splits: u64,
        /// Temporary-destination x coordinate.
        td_x: f64,
        /// Temporary-destination y coordinate.
        td_y: f64,
    },
    /// Greedy forwarder selection on a relay leg. `progress == false`
    /// means no neighbor was closer to the target — by ALERT's definition
    /// this node becomes the next random forwarder.
    ForwarderSelect {
        /// Simulated time.
        time: f64,
        /// Selecting node.
        node: u64,
        /// Application packet id, when known.
        packet: Option<u64>,
        /// Leg target (temporary destination) x coordinate.
        target_x: f64,
        /// Leg target (temporary destination) y coordinate.
        target_y: f64,
        /// Whether a closer neighbor existed.
        progress: bool,
    },
    /// Instrumented data-plane hop (mirror of `Metrics::record_hop`).
    Hop {
        /// Simulated time.
        time: f64,
        /// Transmitting node.
        node: u64,
        /// Application packet id.
        packet: u64,
    },
    /// A node served as a random forwarder (mirror of
    /// `Metrics::record_random_forwarder`).
    RandomForwarder {
        /// Simulated time.
        time: f64,
        /// The random forwarder.
        node: u64,
        /// Application packet id.
        packet: u64,
    },
    /// First delivery of a packet to its true destination.
    Delivered {
        /// Simulated delivery time (includes pending crypto delay).
        time: f64,
        /// Destination node.
        node: u64,
        /// Application packet id.
        packet: u64,
        /// End-to-end latency in seconds.
        latency: f64,
    },
    /// A node crashed (fault plan): it stops transmitting, receiving, and
    /// beaconing until the matching [`TraceEvent::NodeUp`].
    NodeDown {
        /// Simulated time.
        time: f64,
        /// Crashed node.
        node: u64,
    },
    /// A crashed node recovered: state wiped, protocol restarted.
    NodeUp {
        /// Simulated time.
        time: f64,
        /// Recovered node.
        node: u64,
    },
    /// The link-layer ARQ rescheduled a failed unicast frame.
    LinkRetry {
        /// Simulated time.
        time: f64,
        /// Retrying (transmitting) node.
        node: u64,
        /// Application packet id, when data-plane.
        packet: Option<u64>,
        /// Retry attempt number (1 = first retransmission).
        attempt: u64,
    },
    /// The run was aborted by a guardrail (event/sim-time/wall-clock
    /// budget or the livelock watchdog) — always the final event of an
    /// aborted run's trace, so truncated campaigns are distinguishable
    /// from completed ones.
    RunAborted {
        /// Simulated time at the abort.
        time: f64,
        /// Machine-readable abort class (`event_budget`,
        /// `sim_time_budget`, `wall_clock`, `livelock`).
        reason: String,
        /// Events dispatched before the abort.
        events: u64,
    },
}

impl TraceEvent {
    /// Simulated time the event is keyed by.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::Tick { time, .. }
            | TraceEvent::AppSend { time, .. }
            | TraceEvent::Tx { time, .. }
            | TraceEvent::Rx { time, .. }
            | TraceEvent::Drop { time, .. }
            | TraceEvent::TimerFire { time, .. }
            | TraceEvent::LocationLookup { time, .. }
            | TraceEvent::CryptoCharge { time, .. }
            | TraceEvent::PseudonymRotation { time, .. }
            | TraceEvent::ZonePartition { time, .. }
            | TraceEvent::ForwarderSelect { time, .. }
            | TraceEvent::Hop { time, .. }
            | TraceEvent::RandomForwarder { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::NodeDown { time, .. }
            | TraceEvent::NodeUp { time, .. }
            | TraceEvent::LinkRetry { time, .. }
            | TraceEvent::RunAborted { time, .. } => *time,
        }
    }

    /// The node the event is attributed to, when it has one (global
    /// events — ticks, app-layer sends, run aborts — have none).
    pub fn node(&self) -> Option<u64> {
        match self {
            TraceEvent::Tx { node, .. }
            | TraceEvent::Rx { node, .. }
            | TraceEvent::Drop { node, .. }
            | TraceEvent::TimerFire { node, .. }
            | TraceEvent::LocationLookup { node, .. }
            | TraceEvent::CryptoCharge { node, .. }
            | TraceEvent::PseudonymRotation { node, .. }
            | TraceEvent::ZonePartition { node, .. }
            | TraceEvent::ForwarderSelect { node, .. }
            | TraceEvent::Hop { node, .. }
            | TraceEvent::RandomForwarder { node, .. }
            | TraceEvent::Delivered { node, .. }
            | TraceEvent::NodeDown { node, .. }
            | TraceEvent::NodeUp { node, .. }
            | TraceEvent::LinkRetry { node, .. } => Some(*node),
            TraceEvent::Tick { .. }
            | TraceEvent::AppSend { .. }
            | TraceEvent::RunAborted { .. } => None,
        }
    }

    /// The application packet id the event references, when known
    /// (control-plane transmissions and non-packet events have none).
    pub fn packet_id(&self) -> Option<u64> {
        match self {
            TraceEvent::AppSend { packet, .. }
            | TraceEvent::ZonePartition { packet, .. }
            | TraceEvent::Hop { packet, .. }
            | TraceEvent::RandomForwarder { packet, .. }
            | TraceEvent::Delivered { packet, .. } => Some(*packet),
            TraceEvent::Tx { packet, .. }
            | TraceEvent::Drop { packet, .. }
            | TraceEvent::ForwarderSelect { packet, .. }
            | TraceEvent::LinkRetry { packet, .. } => *packet,
            TraceEvent::Tick { .. }
            | TraceEvent::Rx { .. }
            | TraceEvent::TimerFire { .. }
            | TraceEvent::LocationLookup { .. }
            | TraceEvent::CryptoCharge { .. }
            | TraceEvent::PseudonymRotation { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. }
            | TraceEvent::RunAborted { .. } => None,
        }
    }

    /// Canonical event-kind name (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Tick { .. } => "tick",
            TraceEvent::AppSend { .. } => "app_send",
            TraceEvent::Tx { .. } => "tx",
            TraceEvent::Rx { .. } => "rx",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::TimerFire { .. } => "timer",
            TraceEvent::LocationLookup { .. } => "loc_lookup",
            TraceEvent::CryptoCharge { .. } => "crypto",
            TraceEvent::PseudonymRotation { .. } => "pseudonym_rotation",
            TraceEvent::ZonePartition { .. } => "zone_partition",
            TraceEvent::ForwarderSelect { .. } => "forwarder_select",
            TraceEvent::Hop { .. } => "hop",
            TraceEvent::RandomForwarder { .. } => "rf",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::LinkRetry { .. } => "link_retry",
            TraceEvent::RunAborted { .. } => "run_aborted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reason_round_trips_known_strings() {
        for r in [
            DropReason::UnicastOutOfRange,
            DropReason::UnicastChannelLoss,
            DropReason::UnicastUnknownPseudonym,
            DropReason::LocationLookupFailed,
            DropReason::LegTtlExhausted,
            DropReason::PacketTtlExhausted,
            DropReason::RetryLimitExceeded,
            DropReason::ReceiverNodeDown,
            DropReason::SourceNodeDown,
        ] {
            assert_eq!(DropReason::from(r.as_str()), r);
        }
        assert_eq!(
            DropReason::from("zap_greedy_stuck"),
            DropReason::Protocol("zap_greedy_stuck")
        );
        assert_eq!(DropReason::LegTtlExhausted.to_string(), "leg_ttl_exhausted");
    }

    #[test]
    fn enum_names_round_trip() {
        for k in [TickKind::Mobility, TickKind::Hello, TickKind::Location] {
            assert_eq!(TickKind::from_str_opt(k.as_str()), Some(k));
        }
        for k in [TxKind::Unicast, TxKind::Broadcast] {
            assert_eq!(TxKind::from_str_opt(k.as_str()), Some(k));
        }
        for k in [
            TrafficKind::Data,
            TrafficKind::Control,
            TrafficKind::ControlHop,
            TrafficKind::Cover,
        ] {
            assert_eq!(TrafficKind::from_str_opt(k.as_str()), Some(k));
        }
        for k in [
            CryptoOp::Symmetric,
            CryptoOp::PkEncrypt,
            CryptoOp::PkDecrypt,
            CryptoOp::PkVerify,
            CryptoOp::Hash,
        ] {
            assert_eq!(CryptoOp::from_str_opt(k.as_str()), Some(k));
        }
        assert!(TickKind::from_str_opt("nope").is_none());
    }

    #[test]
    fn time_and_kind_accessors() {
        let e = TraceEvent::Hop {
            time: 1.5,
            node: 3,
            packet: 9,
        };
        assert_eq!(e.time(), 1.5);
        assert_eq!(e.kind(), "hop");
        assert_eq!(e.node(), Some(3));
        assert_eq!(e.packet_id(), Some(9));
    }

    #[test]
    fn node_and_packet_accessors_handle_global_and_optional_fields() {
        let app = TraceEvent::AppSend {
            time: 0.0,
            packet: 7,
            session: 0,
            seq: 0,
            src: 1,
            dst: 2,
        };
        assert_eq!(app.node(), None);
        assert_eq!(app.packet_id(), Some(7));
        let tx = TraceEvent::Tx {
            time: 0.0,
            node: 4,
            kind: TxKind::Broadcast,
            class: TrafficKind::Control,
            bytes: 24,
            packet: None,
        };
        assert_eq!(tx.node(), Some(4));
        assert_eq!(tx.packet_id(), None);
        let tick = TraceEvent::Tick {
            time: 0.0,
            kind: TickKind::Hello,
        };
        assert_eq!(tick.node(), None);
        assert_eq!(tick.packet_id(), None);
    }
}

//! GPSR — Greedy Perimeter Stateless Routing (Karp & Kung \[15\]), the
//! paper's baseline (Section 5: "in GPSR, a packet is always forwarded to
//! the node nearest to the destination. When such a node does not exist,
//! GPSR uses perimeter forwarding").
//!
//! GPSR carries no anonymity machinery: the destination position travels
//! in the clear and routes are (near-)shortest paths, which is exactly why
//! the paper uses it as the efficiency yardstick and the anonymity
//! anti-pattern.

use crate::forwarding::{
    gabriel_neighbors, greedy_next_hop, neighbor_by_pseudonym, right_hand_next,
};
use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_sim::{Api, DataRequest, Frame, PacketId, ProtocolNode, TrafficClass};
use serde::{Deserialize, Serialize};

/// Forwarding mode carried in the packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpsrMode {
    /// Normal greedy forwarding.
    Greedy,
    /// Perimeter (face) recovery:
    Perimeter {
        /// Distance from the point where greedy failed to the target;
        /// greedy resumes as soon as a node closer than this is reached.
        entry_dist: f64,
        /// Position of the previous hop (the reference edge for the
        /// right-hand rule).
        prev: Point,
    },
}

/// A GPSR data packet.
#[derive(Debug, Clone)]
pub struct GpsrMsg {
    /// Instrumentation id.
    pub packet: PacketId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Destination position (in the clear — no location anonymity).
    pub target: Point,
    /// Destination pseudonym for final-hop handover.
    pub dst: Pseudonym,
    /// Remaining hop budget (the paper sets 10).
    pub ttl: u32,
    /// Greedy or perimeter.
    pub mode: GpsrMode,
}

/// Per-node GPSR instance. GPSR is stateless per packet; the struct only
/// carries configuration.
#[derive(Debug, Clone)]
pub struct Gpsr {
    /// Initial hop budget for each packet.
    pub ttl: u32,
}

impl Default for Gpsr {
    fn default() -> Self {
        // The paper's experiments cap the path length at 10.
        Gpsr { ttl: 10 }
    }
}

/// Header bytes added on top of the application payload.
const GPSR_HEADER_BYTES: usize = 40;

impl Gpsr {
    /// Forwards `msg` from the current node; transmits at most one frame.
    /// Shared by the source and every relay.
    fn forward(&self, api: &mut Api<'_, GpsrMsg>, mut msg: GpsrMsg) {
        if msg.ttl == 0 {
            return; // budget exhausted; drop silently like the paper's TTL
        }
        msg.ttl -= 1;
        let me = api.my_pos();
        let wire = msg.bytes + GPSR_HEADER_BYTES;

        // Destination in range: hand the packet straight over. Each
        // lookup below re-borrows the table via `api.neighbors()` so no
        // shared borrow outlives the mutable `api` calls in between.
        if let Some(d) = neighbor_by_pseudonym(api.neighbors(), msg.dst) {
            api.mark_hop(msg.packet);
            api.send_unicast(
                d.pseudonym,
                msg.clone(),
                wire,
                TrafficClass::Data,
                Some(msg.packet),
            );
            return;
        }

        // Perimeter recovery exits as soon as progress beats the entry point.
        if let GpsrMode::Perimeter { entry_dist, .. } = msg.mode {
            if me.distance(msg.target) < entry_dist {
                msg.mode = GpsrMode::Greedy;
            }
        }

        match msg.mode {
            GpsrMode::Greedy => {
                if let Some(n) = greedy_next_hop(me, msg.target, api.neighbors()) {
                    api.mark_hop(msg.packet);
                    api.send_unicast(
                        n.pseudonym,
                        msg.clone(),
                        wire,
                        TrafficClass::Data,
                        Some(msg.packet),
                    );
                } else {
                    // Local maximum: enter perimeter mode on the planarized
                    // graph, using the target direction as the reference.
                    let planar = gabriel_neighbors(me, api.neighbors());
                    if let Some(n) = right_hand_next(me, msg.target, &planar) {
                        msg.mode = GpsrMode::Perimeter {
                            entry_dist: me.distance(msg.target),
                            prev: me,
                        };
                        api.mark_hop(msg.packet);
                        api.send_unicast(
                            n.pseudonym,
                            msg.clone(),
                            wire,
                            TrafficClass::Data,
                            Some(msg.packet),
                        );
                    }
                    // else: isolated node; drop.
                }
            }
            GpsrMode::Perimeter { entry_dist, prev } => {
                let planar = gabriel_neighbors(me, api.neighbors());
                if let Some(n) = right_hand_next(me, prev, &planar) {
                    msg.mode = GpsrMode::Perimeter {
                        entry_dist,
                        prev: me,
                    };
                    api.mark_hop(msg.packet);
                    api.send_unicast(
                        n.pseudonym,
                        msg.clone(),
                        wire,
                        TrafficClass::Data,
                        Some(msg.packet),
                    );
                }
            }
        }
    }
}

impl ProtocolNode for Gpsr {
    type Msg = GpsrMsg;

    fn name() -> &'static str {
        "GPSR"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            return; // destination unknown to the location service
        };
        let msg = GpsrMsg {
            packet: req.packet,
            bytes: req.bytes,
            target: info.position,
            dst: info.pseudonym,
            ttl: self.ttl,
            mode: GpsrMode::Greedy,
        };
        self.forward(api, msg);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let msg = frame.msg;
        // Am I the destination? Pseudonym match is the on-wire check; the
        // ground-truth guard in mark_delivered rejects false positives.
        if msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet) {
            api.mark_delivered(msg.packet);
            return;
        }
        self.forward(api, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{MobilityKind, ScenarioConfig, World};

    fn scenario(nodes: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(nodes)
            .with_duration(30.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(cfg: ScenarioConfig, seed: u64) -> World<Gpsr> {
        let mut w = World::new(cfg, seed, |_, _| Gpsr::default());
        w.run();
        w
    }

    #[test]
    fn delivers_on_dense_network() {
        let w = run(scenario(200), 1);
        let rate = w.metrics().delivery_rate();
        assert!(rate > 0.9, "dense GPSR delivery {rate} < 0.9");
    }

    #[test]
    fn latency_is_milliseconds_not_seconds() {
        let w = run(scenario(200), 2);
        let lat = w.metrics().mean_latency().unwrap();
        assert!(
            lat > 0.001 && lat < 0.1,
            "GPSR latency {lat}s outside the paper's regime"
        );
    }

    #[test]
    fn hop_counts_are_short_paths() {
        let w = run(scenario(200), 3);
        let hops = w.metrics().hops_per_packet();
        // 1 km field, 250 m range: shortest paths are ~2-4 hops.
        assert!((1.0..=6.0).contains(&hops), "hops/packet {hops}");
    }

    #[test]
    fn no_crypto_cost() {
        let w = run(scenario(100), 4);
        let c = w.metrics().crypto;
        assert_eq!(c.symmetric + c.pk_encrypt + c.pk_decrypt + c.pk_verify, 0);
    }

    #[test]
    fn sparse_network_degrades_but_works() {
        let w = run(scenario(50), 5);
        let rate = w.metrics().delivery_rate();
        assert!(rate > 0.3, "sparse GPSR delivery collapsed: {rate}");
    }

    #[test]
    fn participating_nodes_stay_near_shortest_path() {
        let w = run(scenario(200), 6);
        // GPSR repeats the same (near-)shortest path, so the cumulative
        // participant union per pair stays small (paper Fig. 10b: 2-3).
        let curve = w.metrics().mean_cumulative_participants();
        let last = *curve.last().unwrap();
        assert!(last < 12.0, "GPSR participants grew to {last}, too random");
    }

    #[test]
    fn static_dense_grid_delivers_fully() {
        let cfg = scenario(200).with_mobility(MobilityKind::Static);
        let w = run(cfg, 7);
        assert!(w.metrics().delivery_rate() > 0.95);
    }
}

//! MAPCP — an anonymous communication middleware for P2P applications
//! over MANETs (Chou, Wei, Kuo & Naik \[9\]).
//!
//! MAPCP sits *between* the network and application layers: "every hop in
//! the routing path executes probabilistic broadcasting that chooses a
//! number of its neighbors with a certain probability to forward
//! messages". There are no routes at all — packets diffuse as a gossip
//! wave, which hides the source, the destination, and any notion of a
//! path (Table 1: identity anonymity for both endpoints, route anonymity,
//! no location information used anywhere).
//!
//! The price is the redundant-traffic bill the ALERT paper charges this
//! whole class with: every data packet costs a multiple of the network's
//! node count in transmissions.

use alert_crypto::Pseudonym;
use alert_sim::{Api, DataRequest, Frame, PacketId, ProtocolNode, TrafficClass};
use rand::Rng;
use std::collections::HashSet;

/// Gossip header bytes (trapdoor + nonce).
const MAPCP_HEADER_BYTES: usize = 32;

/// A MAPCP gossip packet.
#[derive(Debug, Clone)]
pub struct MapcpMsg {
    /// Instrumentation id (also the gossip dedup key).
    pub packet: PacketId,
    /// Destination pseudonym sealed in a trapdoor; only the destination
    /// recognizes it.
    pub dst: Pseudonym,
    /// Remaining gossip depth.
    pub ttl: u32,
    /// Payload size.
    pub bytes: usize,
}

/// Per-node MAPCP instance.
pub struct Mapcp {
    /// Probability that a receiving node re-broadcasts.
    pub forward_probability: f64,
    /// Gossip depth bound.
    pub ttl: u32,
    /// Packets this node already gossiped (dedup).
    seen: HashSet<PacketId>,
}

impl Default for Mapcp {
    fn default() -> Self {
        Mapcp {
            forward_probability: 0.7,
            ttl: 10,
            seen: HashSet::new(),
        }
    }
}

impl Mapcp {
    /// A gossip with a custom forwarding probability.
    pub fn with_probability(forward_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&forward_probability));
        Mapcp {
            forward_probability,
            ..Mapcp::default()
        }
    }
}

impl ProtocolNode for Mapcp {
    type Msg = MapcpMsg;

    fn name() -> &'static str {
        "MAPCP"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_drop("location_lookup_failed");
            return;
        };
        self.seen.insert(req.packet);
        api.charge_symmetric(1); // seal the trapdoor + payload
        api.mark_hop(req.packet);
        api.send_broadcast(
            MapcpMsg {
                packet: req.packet,
                dst: info.pseudonym,
                ttl: self.ttl,
                bytes: req.bytes,
            },
            req.bytes + MAPCP_HEADER_BYTES,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let mut msg = frame.msg;
        if !self.seen.insert(msg.packet) {
            return;
        }
        // Trapdoor check: everyone tries, only the destination succeeds.
        api.charge_hash(1);
        if msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet) {
            api.charge_symmetric(1);
            api.mark_delivered(msg.packet);
            // The destination keeps gossiping so its silence does not
            // single it out — receiver anonymity by indistinguishability.
        }
        if msg.ttl == 0 {
            return;
        }
        msg.ttl -= 1;
        if api.rng().gen_range(0.0..1.0) < self.forward_probability {
            let id = msg.packet;
            api.mark_hop(id);
            let wire = msg.bytes + MAPCP_HEADER_BYTES;
            api.send_broadcast(msg, wire, TrafficClass::Data, Some(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{Metrics, ScenarioConfig, World};

    fn scenario() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(150)
            .with_duration(30.0);
        cfg.traffic.pairs = 4;
        cfg
    }

    fn run(p: f64, seed: u64) -> Metrics {
        let mut w = World::new(scenario(), seed, move |_, _| Mapcp::with_probability(p));
        w.run();
        w.metrics().clone()
    }

    #[test]
    fn gossip_delivers_reliably_at_default_probability() {
        let m = run(0.7, 1);
        assert!(m.delivery_rate() > 0.95, "rate {}", m.delivery_rate());
    }

    #[test]
    fn gossip_cost_is_a_network_multiple() {
        // The redundant-traffic bill: each packet triggers a large share
        // of the network to transmit.
        let m = run(0.7, 2);
        assert!(
            m.hops_per_packet() > 30.0,
            "gossip should cost tens of transmissions per packet, got {}",
            m.hops_per_packet()
        );
    }

    #[test]
    fn forwarding_probability_trades_cost_for_reach() {
        let low = run(0.25, 3);
        let high = run(0.9, 3);
        assert!(high.hops_per_packet() > low.hops_per_packet() * 1.5);
        assert!(high.delivery_rate() >= low.delivery_rate() - 0.02);
    }

    #[test]
    fn destination_keeps_gossiping_after_delivery() {
        // Receiver anonymity: the destination must appear in the
        // participant set like any other gossiper.
        let m = run(0.7, 4);
        let mut dest_participated = 0;
        for p in m.packets.iter().filter(|p| p.delivered_at.is_some()) {
            if p.participants.contains(&p.dst) {
                dest_participated += 1;
            }
        }
        assert!(
            dest_participated > 0,
            "the destination should sometimes re-gossip packets it received"
        );
    }

    #[test]
    fn no_location_information_used() {
        // Topology-free: delivery must not depend on position accuracy —
        // freeze the location service and nothing changes (only the
        // pseudonym from the lookup matters).
        let mut cfg = scenario().with_location(alert_sim::LocationPolicy::SessionStart);
        cfg.speed = 8.0;
        let mut w = World::new(cfg, 5, |_, _| Mapcp::default());
        w.run();
        assert!(
            w.metrics().delivery_rate() > 0.9,
            "gossip ignores stale positions, got {}",
            w.metrics().delivery_rate()
        );
    }
}

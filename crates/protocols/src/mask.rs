//! MASK — Anonymous Communications in Mobile Ad Hoc Networks (Zhang, Liu
//! & Luo \[32\]).
//!
//! MASK's signature mechanism is the **anonymous neighborhood
//! handshake**: whenever two nodes become neighbors they run a
//! pairing-based authentication that yields shared *link identifiers* —
//! pseudonymous labels meaningful only to the two endpoints. Route
//! discovery is then an AODV-style flood over authenticated links,
//! carrying the destination's identity; data follows the pinned path hop
//! by hop. Per Table 1, MASK protects the source identity and the route,
//! but not locations (topology routing) and not the destination identity
//! (it travels in the RREQ).
//!
//! Its distinctive cost is mobility-driven: every *new* neighbor relation
//! triggers a handshake (pairing operations, charged as public-key
//! verification work), so the control burden scales with topology churn —
//! a behavior neither ALARM (periodic) nor ANODR (per-discovery)
//! exhibits. The `handshakes` counter and the churn test below make that
//! visible.

use alert_crypto::Pseudonym;
use alert_sim::{
    Api, DataRequest, Frame, PacketId, ProtocolNode, SessionId, TimerToken, TrafficClass,
};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Handshake message size (pairing material).
const HANDSHAKE_BYTES: usize = 64;
/// RREQ size.
const RREQ_BYTES: usize = 72;
/// RREP size.
const RREP_BYTES: usize = 56;
/// Data header.
const MASK_HEADER_BYTES: usize = 24;
/// Flood budget.
const FLOOD_TTL: u32 = 12;
/// Neighborhood scan timer.
const SCAN_TIMER: TimerToken = 4;
/// Route refresh timer.
const REFRESH_TIMER: TimerToken = 5;

/// MASK wire messages.
#[derive(Debug, Clone)]
pub enum MaskMsg {
    /// Anonymous neighborhood handshake (one per *new* neighbor relation).
    Handshake,
    /// AODV-style anonymous route request.
    Rreq {
        /// Flood id (dedup).
        id: u64,
        /// Session being discovered.
        session: SessionId,
        /// Destination pseudonym (MASK does not hide the destination).
        dst: Pseudonym,
        /// Remaining budget.
        ttl: u32,
    },
    /// Route reply, pinning link identifiers hop by hop.
    Rrep {
        /// Flood it answers.
        id: u64,
        /// Session.
        session: SessionId,
        /// Link id the downstream node allocated for this hop.
        link: u64,
    },
    /// Data riding the pinned link-id chain.
    Data {
        /// Link id naming the receiving hop's route entry.
        link: u64,
        /// Instrumentation id.
        packet: PacketId,
        /// Payload size.
        bytes: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct LinkRoute {
    next_link: u64,
    next_hop: Pseudonym,
    terminal: bool,
}

/// Per-node MASK instance.
pub struct Mask {
    /// Seconds between neighborhood scans (new neighbors -> handshakes).
    pub scan_interval_s: f64,
    /// Seconds between route refreshes.
    pub refresh_interval_s: f64,
    /// Count of handshakes this node initiated (cost visibility).
    pub handshakes: u64,
    /// Neighbors already authenticated.
    authenticated: HashSet<Pseudonym>,
    /// Flood dedup.
    seen: HashSet<u64>,
    /// Reverse path per flood.
    reverse: HashMap<u64, Pseudonym>,
    /// Pinned forwarding: incoming link id -> route.
    routes: HashMap<u64, LinkRoute>,
    /// As source: session -> (first link id, next hop).
    source_routes: HashMap<SessionId, (u64, Pseudonym)>,
    /// Queued packets awaiting routes.
    pending: Vec<(SessionId, PacketId, usize)>,
    /// Sessions this node sources: destination pseudonym + last discovery.
    my_sessions: HashMap<SessionId, (Pseudonym, f64)>,
}

impl Default for Mask {
    fn default() -> Self {
        Mask {
            scan_interval_s: 1.0,
            refresh_interval_s: 10.0,
            handshakes: 0,
            authenticated: HashSet::new(),
            seen: HashSet::new(),
            reverse: HashMap::new(),
            routes: HashMap::new(),
            source_routes: HashMap::new(),
            pending: Vec::new(),
            my_sessions: HashMap::new(),
        }
    }
}

impl Mask {
    /// Scans the neighbor table and handshakes with anyone new. The
    /// pairing-based authentication is charged as public-key work on both
    /// sides (initiator here, responder in `on_frame`).
    fn scan_neighborhood(&mut self, api: &mut Api<'_, MaskMsg>) {
        let new: Vec<Pseudonym> = api
            .neighbors()
            .iter()
            .map(|n| n.pseudonym)
            .filter(|p| !self.authenticated.contains(p))
            .collect();
        for p in new {
            self.authenticated.insert(p);
            self.handshakes += 1;
            api.charge_pk_verify(1); // one pairing evaluation
            api.send_unicast(
                p,
                MaskMsg::Handshake,
                HANDSHAKE_BYTES,
                TrafficClass::Control,
                None,
            );
        }
    }

    fn discover(&mut self, api: &mut Api<'_, MaskMsg>, session: SessionId, dst: Pseudonym) {
        let id: u64 = api.rng().gen();
        self.seen.insert(id);
        self.my_sessions.insert(session, (dst, api.now()));
        api.send_broadcast(
            MaskMsg::Rreq {
                id,
                session,
                dst,
                ttl: FLOOD_TTL,
            },
            RREQ_BYTES,
            TrafficClass::ControlHop,
            None,
        );
    }

    fn flush(&mut self, api: &mut Api<'_, MaskMsg>) {
        let pending = std::mem::take(&mut self.pending);
        let mut keep = Vec::new();
        for (session, packet, bytes) in pending {
            if let Some(&(link, next)) = self.source_routes.get(&session) {
                api.charge_symmetric(1);
                api.mark_hop(packet);
                api.send_unicast(
                    next,
                    MaskMsg::Data {
                        link,
                        packet,
                        bytes,
                    },
                    bytes + MASK_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            } else {
                keep.push((session, packet, bytes));
            }
        }
        self.pending = keep;
    }
}

impl ProtocolNode for Mask {
    type Msg = MaskMsg;

    fn name() -> &'static str {
        "MASK"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        self.scan_neighborhood(api);
        api.set_timer(self.scan_interval_s, SCAN_TIMER);
        api.set_timer(self.refresh_interval_s, REFRESH_TIMER);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        match token {
            SCAN_TIMER => {
                self.scan_neighborhood(api);
                api.set_timer(self.scan_interval_s, SCAN_TIMER);
            }
            REFRESH_TIMER => {
                let sessions: Vec<(SessionId, Pseudonym)> = self
                    .my_sessions
                    .iter()
                    .map(|(s, (d, _))| (*s, *d))
                    .collect();
                for (s, d) in sessions {
                    self.source_routes.remove(&s);
                    self.discover(api, s, d);
                }
                api.set_timer(self.refresh_interval_s, REFRESH_TIMER);
            }
            _ => {}
        }
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_drop("location_lookup_failed");
            return;
        };
        self.pending.push((req.session, req.packet, req.bytes));
        if self.pending.len() > 64 {
            self.pending.remove(0);
        }
        let needs = !self.source_routes.contains_key(&req.session)
            && self
                .my_sessions
                .get(&req.session)
                .is_none_or(|(_, t)| api.now() - t > 1.0);
        if needs {
            self.discover(api, req.session, info.pseudonym);
        }
        self.flush(api);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        match frame.msg {
            MaskMsg::Handshake => {
                // Responder side of the pairing.
                api.charge_pk_verify(1);
                self.authenticated.insert(frame.from);
            }
            MaskMsg::Rreq {
                id,
                session,
                dst,
                ttl,
            } => {
                if self.seen.contains(&id) {
                    return;
                }
                self.seen.insert(id);
                self.reverse.insert(id, frame.from);
                if dst == api.my_pseudonym() {
                    let link: u64 = api.rng().gen();
                    self.routes.insert(
                        link,
                        LinkRoute {
                            next_link: 0,
                            next_hop: api.my_pseudonym(),
                            terminal: true,
                        },
                    );
                    api.send_unicast(
                        frame.from,
                        MaskMsg::Rrep { id, session, link },
                        RREP_BYTES,
                        TrafficClass::Control,
                        None,
                    );
                    return;
                }
                if ttl == 0 {
                    return;
                }
                api.send_broadcast(
                    MaskMsg::Rreq {
                        id,
                        session,
                        dst,
                        ttl: ttl - 1,
                    },
                    RREQ_BYTES,
                    TrafficClass::ControlHop,
                    None,
                );
            }
            MaskMsg::Rrep { id, session, link } => {
                if self.my_sessions.contains_key(&session) {
                    // Source: pin and drain. (The RREP's sender is our
                    // first hop; `link` names its route entry. The source
                    // has no reverse entry — it originated the flood.)
                    self.source_routes.insert(session, (link, frame.from));
                    self.flush(api);
                    return;
                }
                // Only a relay the RREQ traversed knows this flood.
                let Some(&upstream) = self.reverse.get(&id) else {
                    return;
                };
                let my_link: u64 = api.rng().gen();
                self.routes.insert(
                    my_link,
                    LinkRoute {
                        next_link: link,
                        next_hop: frame.from,
                        terminal: false,
                    },
                );
                api.send_unicast(
                    upstream,
                    MaskMsg::Rrep {
                        id,
                        session,
                        link: my_link,
                    },
                    RREP_BYTES,
                    TrafficClass::Control,
                    None,
                );
            }
            MaskMsg::Data {
                link,
                packet,
                bytes,
            } => {
                let Some(&route) = self.routes.get(&link) else {
                    api.mark_drop("mask_unknown_link");
                    return;
                };
                api.charge_symmetric(1);
                if route.terminal {
                    api.mark_delivered(packet);
                    return;
                }
                api.mark_hop(packet);
                api.send_unicast(
                    route.next_hop,
                    MaskMsg::Data {
                        link: route.next_link,
                        packet,
                        bytes,
                    },
                    bytes + MASK_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{Metrics, NodeId, ScenarioConfig, World};

    fn scenario() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(200)
            .with_duration(40.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(cfg: ScenarioConfig, seed: u64) -> World<Mask> {
        let mut w = World::new(cfg, seed, |_, _| Mask::default());
        w.run();
        w
    }

    #[test]
    fn delivers_on_dense_network() {
        let w = run(scenario(), 1);
        assert!(
            w.metrics().delivery_rate() > 0.8,
            "rate {}",
            w.metrics().delivery_rate()
        );
    }

    #[test]
    fn handshake_cost_scales_with_mobility() {
        // MASK's distinctive behavior: faster nodes churn neighbor tables,
        // triggering more pairing handshakes.
        let total_handshakes = |speed: f64, seed: u64| -> u64 {
            let mut cfg = scenario();
            cfg.speed = speed;
            let w = run(cfg, seed);
            (0..200).map(|i| w.protocol(NodeId(i)).handshakes).sum()
        };
        let slow: u64 = (0..3).map(|s| total_handshakes(1.0, s)).sum();
        let fast: u64 = (0..3).map(|s| total_handshakes(8.0, s)).sum();
        assert!(
            fast as f64 > slow as f64 * 1.3,
            "8 m/s should trigger clearly more handshakes than 1 m/s: {slow} -> {fast}"
        );
    }

    #[test]
    fn static_network_handshakes_once_per_link() {
        let cfg = scenario().with_mobility(alert_sim::MobilityKind::Static);
        let w = run(cfg, 2);
        let handshakes: u64 = (0..200).map(|i| w.protocol(NodeId(i)).handshakes).sum();
        // Every directed neighbor relation handshakes exactly once.
        let m: &Metrics = w.metrics();
        assert!(handshakes > 0);
        // No churn: pk_verify ops = 2 per initiated handshake (initiator +
        // responder), bounded by twice the handshake count.
        assert!(
            m.crypto.pk_verify <= handshakes * 2,
            "verify ops {} exceed 2x handshakes {}",
            m.crypto.pk_verify,
            handshakes
        );
    }

    #[test]
    fn data_path_is_symmetric_only() {
        let w = run(scenario(), 3);
        let c = w.metrics().crypto;
        assert!(c.symmetric > 0);
        assert_eq!(c.pk_encrypt, 0, "MASK's data path uses no public-key work");
    }

    #[test]
    fn flood_overhead_visible_in_control_hops() {
        let w = run(scenario(), 4);
        assert!(
            w.metrics().control_hops > 100,
            "discovery floods should dominate control hops"
        );
    }
}

//! Shared geographic-forwarding primitives: greedy next-hop selection,
//! Gabriel-graph planarization, and right-hand-rule perimeter traversal.
//!
//! These implement the GPSR machinery of Karp & Kung that the paper's
//! baselines — and ALERT's relay legs between random forwarders
//! (Section 2.3) — are built on.

use alert_geom::Point;
use alert_sim::{Api, NeighborEntry, PacketId};

/// Picks the neighbor strictly closer to `target` than `me`, minimizing
/// the remaining distance (greedy mode). Ties break towards the earlier
/// table entry for determinism.
pub fn greedy_next_hop(
    me: Point,
    target: Point,
    neighbors: &[NeighborEntry],
) -> Option<NeighborEntry> {
    let my_d = me.distance_sq(target);
    let mut best: Option<(f64, NeighborEntry)> = None;
    for n in neighbors {
        let d = n.position.distance_sq(target);
        if d < my_d {
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, *n)),
            }
        }
    }
    best.map(|(_, n)| n)
}

/// [`greedy_next_hop`] with observability: emits a
/// `forwarder_select` trace event (target position plus whether any
/// neighbor made progress) through the node's [`Api`]. Use this on
/// data-plane forwarding decisions where "where did greedy get stuck?"
/// matters for trace analysis; identical routing behavior otherwise.
/// Reads the caller's own neighbor table via [`Api::neighbors`], so the
/// shared borrow of the table ends before the trace call needs `api`
/// mutably.
pub fn greedy_next_hop_traced<M: Clone + std::fmt::Debug>(
    api: &mut Api<'_, M>,
    target: Point,
    packet: Option<PacketId>,
) -> Option<NeighborEntry> {
    let hop = greedy_next_hop(api.my_pos(), target, api.neighbors());
    api.trace_forwarder_selection(packet, target, hop.is_some());
    hop
}

/// Filters `neighbors` down to the Gabriel-graph edges of `me`: the edge
/// `(me, v)` survives when no other neighbor `w` lies strictly inside the
/// circle whose diameter is `me–v`. The Gabriel graph is planar and
/// connectivity-preserving, which is what perimeter routing requires.
pub fn gabriel_neighbors(me: Point, neighbors: &[NeighborEntry]) -> Vec<NeighborEntry> {
    neighbors
        .iter()
        .filter(|v| {
            let mid = Point::new((me.x + v.position.x) * 0.5, (me.y + v.position.y) * 0.5);
            let r_sq = me.distance_sq(v.position) * 0.25;
            !neighbors
                .iter()
                .any(|w| w.pseudonym != v.pseudonym && w.position.distance_sq(mid) < r_sq - 1e-12)
        })
        .copied()
        .collect()
}

/// Right-hand-rule successor: the first edge counter-clockwise from the
/// reference direction `me -> prev` (the edge the packet arrived on).
/// Traversing faces this way walks their boundary with the face on the
/// right — the core of GPSR's perimeter mode.
pub fn right_hand_next(
    me: Point,
    prev: Point,
    planar_neighbors: &[NeighborEntry],
) -> Option<NeighborEntry> {
    if planar_neighbors.is_empty() {
        return None;
    }
    let ref_angle = me.bearing_to(prev);
    planar_neighbors
        .iter()
        .map(|n| {
            let a = me.bearing_to(n.position);
            // Counter-clockwise sweep angle from the reference direction,
            // in (0, 2*pi]; a neighbor exactly at the reference direction
            // (the previous hop itself) sweeps the full circle, making it
            // the last resort (allowing backtracking out of dead ends).
            let mut sweep = a - ref_angle;
            while sweep <= 1e-12 {
                sweep += std::f64::consts::TAU;
            }
            (sweep, n)
        })
        .min_by(|(a, na), (b, nb)| {
            a.partial_cmp(b)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| na.pseudonym.cmp(&nb.pseudonym))
        })
        .map(|(_, n)| *n)
}

/// Finds the neighbor entry whose pseudonym matches, if present — the
/// "destination is my neighbor, hand it over" check every geographic
/// protocol performs last-hop.
pub fn neighbor_by_pseudonym(
    neighbors: &[NeighborEntry],
    pseudonym: alert_crypto::Pseudonym,
) -> Option<NeighborEntry> {
    neighbors.iter().find(|n| n.pseudonym == pseudonym).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_crypto::{KeyPair, Pseudonym};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(id: u64, x: f64, y: f64) -> NeighborEntry {
        let mut rng = StdRng::seed_from_u64(99);
        NeighborEntry {
            pseudonym: Pseudonym(id),
            position: Point::new(x, y),
            public_key: KeyPair::generate(&mut rng).public,
            heard_at: 0.0,
        }
    }

    #[test]
    fn greedy_picks_closest_progressing_neighbor() {
        let me = Point::new(0.0, 0.0);
        let target = Point::new(100.0, 0.0);
        let ns = vec![
            entry(1, 10.0, 0.0),
            entry(2, 40.0, 0.0),
            entry(3, -5.0, 0.0),
        ];
        assert_eq!(
            greedy_next_hop(me, target, &ns).unwrap().pseudonym,
            Pseudonym(2)
        );
    }

    #[test]
    fn greedy_requires_strict_progress() {
        let me = Point::new(50.0, 0.0);
        let target = Point::new(100.0, 0.0);
        // All neighbors are farther from the target than me: local maximum.
        let ns = vec![entry(1, 0.0, 0.0), entry(2, 50.0, 80.0)];
        assert!(greedy_next_hop(me, target, &ns).is_none());
    }

    #[test]
    fn greedy_empty_neighbors() {
        assert!(greedy_next_hop(Point::ORIGIN, Point::new(1.0, 1.0), &[]).is_none());
    }

    #[test]
    fn gabriel_removes_dominated_edges() {
        let me = Point::new(0.0, 0.0);
        // w = (5, 0.5) sits inside the circle with diameter me-(10,0),
        // so the long edge is pruned; the two short edges survive.
        let ns = vec![entry(1, 10.0, 0.0), entry(2, 5.0, 0.5)];
        let planar = gabriel_neighbors(me, &ns);
        assert_eq!(planar.len(), 1);
        assert_eq!(planar[0].pseudonym, Pseudonym(2));
    }

    #[test]
    fn gabriel_keeps_independent_edges() {
        let me = Point::new(0.0, 0.0);
        let ns = vec![
            entry(1, 10.0, 0.0),
            entry(2, 0.0, 10.0),
            entry(3, -10.0, 0.0),
        ];
        let planar = gabriel_neighbors(me, &ns);
        assert_eq!(planar.len(), 3, "orthogonal edges are all Gabriel edges");
    }

    #[test]
    fn right_hand_walks_counterclockwise_from_incoming_edge() {
        let me = Point::new(0.0, 0.0);
        let prev = Point::new(-10.0, 0.0); // came from the west
        let ns = vec![
            entry(1, 0.0, -10.0), // south: 90 deg CCW from west
            entry(2, 10.0, 0.0),  // east: 180 deg CCW
            entry(3, 0.0, 10.0),  // north: 270 deg CCW
        ];
        let next = right_hand_next(me, prev, &ns).unwrap();
        assert_eq!(next.pseudonym, Pseudonym(1), "south is first CCW from west");
    }

    #[test]
    fn right_hand_backtracks_as_last_resort() {
        let me = Point::new(0.0, 0.0);
        let prev = Point::new(-10.0, 0.0);
        // Only the previous hop is available: must return it (backtrack).
        let ns = vec![entry(1, -10.0, 0.0)];
        assert_eq!(
            right_hand_next(me, prev, &ns).unwrap().pseudonym,
            Pseudonym(1)
        );
    }

    #[test]
    fn right_hand_on_empty_is_none() {
        assert!(right_hand_next(Point::ORIGIN, Point::new(1.0, 0.0), &[]).is_none());
    }

    #[test]
    fn right_hand_traverses_a_face_and_returns() {
        // A unit square face: starting at (0,0) having entered from the
        // virtual point (-1,0) (outside), the right-hand rule must walk the
        // square and come back — four hops, visiting every corner.
        let corners = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let table = |at: usize| -> Vec<NeighborEntry> {
            // Each corner's neighbors: the two adjacent corners.
            let prev = (at + 3) % 4;
            let next = (at + 1) % 4;
            vec![
                entry(prev as u64, corners[prev].x, corners[prev].y),
                entry(next as u64, corners[next].x, corners[next].y),
            ]
        };
        let mut at = 0usize;
        let mut prev_pos = Point::new(-10.0, 0.0);
        let mut visited = vec![0usize];
        for _ in 0..4 {
            let ns = table(at);
            let nxt = right_hand_next(corners[at], prev_pos, &ns).unwrap();
            prev_pos = corners[at];
            at = nxt.pseudonym.0 as usize;
            visited.push(at);
        }
        assert_eq!(visited, vec![0, 1, 2, 3, 0], "full walk around the face");
    }

    #[test]
    fn neighbor_lookup_by_pseudonym() {
        let ns = vec![entry(5, 1.0, 1.0), entry(9, 2.0, 2.0)];
        assert_eq!(
            neighbor_by_pseudonym(&ns, Pseudonym(9)).unwrap().position,
            Point::new(2.0, 2.0)
        );
        assert!(neighbor_by_pseudonym(&ns, Pseudonym(77)).is_none());
    }
}

//! AO2P — Ad hoc On-demand Position-based Private routing (Wu \[10\]),
//! reimplemented as the paper describes it in Section 5: "The routing of
//! AO2P is similar to GPSR except it has a contention phase in which the
//! neighboring nodes of the current packet holder will contend to be the
//! next hop... Also, AO2P selects a position on the line connecting the
//! source and destination that is further to the source node than the
//! destination to provide destination anonymity, which may lead to long
//! path length with higher routing cost than GPSR."
//!
//! Per-hop cost model: the holder encrypts for the next hop (public-key
//! encrypt) and the receiver decrypts (public-key decrypt) — the paper's
//! "hop-by-hop encryption" class — plus the contention-phase channel
//! delay.

use crate::forwarding::{greedy_next_hop, neighbor_by_pseudonym};
use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_sim::{Api, DataRequest, Frame, PacketId, ProtocolNode, TimerToken, TrafficClass};
use std::collections::HashMap;

/// Extra header on data packets (pseudonyms, encrypted position, class tag).
const AO2P_HEADER_BYTES: usize = 64;

/// An AO2P data packet.
#[derive(Debug, Clone)]
pub struct Ao2pMsg {
    /// Instrumentation id.
    pub packet: PacketId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// The *projected* position beyond the destination on the S–D line —
    /// the real destination position never travels in the packet.
    pub proxy_target: Point,
    /// Destination pseudonym for final handover.
    pub dst: Pseudonym,
    /// Remaining hop budget.
    pub ttl: u32,
}

/// Per-node AO2P instance.
pub struct Ao2p {
    /// Hop budget.
    pub ttl: u32,
    /// Fixed part of the contention phase, seconds.
    pub contention_base_s: f64,
    /// Random part of the contention phase (uniform), seconds.
    pub contention_jitter_s: f64,
    /// How far beyond the destination the proxy position is placed, as a
    /// fraction of the S–D distance.
    pub overshoot_fraction: f64,
    /// Packets waiting out their contention phase, keyed by timer token.
    pending: HashMap<TimerToken, Ao2pMsg>,
    next_token: TimerToken,
}

impl Default for Ao2p {
    fn default() -> Self {
        Ao2p {
            ttl: 10,
            contention_base_s: 0.002,
            contention_jitter_s: 0.002,
            overshoot_fraction: 0.25,
            pending: HashMap::new(),
            // Token 0 is reserved; data tokens start at 16.
            next_token: 16,
        }
    }
}

impl Ao2p {
    /// Starts the contention phase for `msg`; the actual transmission
    /// happens when the timer fires.
    fn contend_and_forward(&mut self, api: &mut Api<'_, Ao2pMsg>, msg: Ao2pMsg) {
        if msg.ttl == 0 {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let delay = self.contention_base_s
            + if self.contention_jitter_s > 0.0 {
                api.rng().gen_range(0.0..self.contention_jitter_s)
            } else {
                0.0
            };
        self.pending.insert(token, msg);
        api.set_timer(delay, token);
    }

    /// Transmits a packet whose contention phase has elapsed.
    fn transmit(&mut self, api: &mut Api<'_, Ao2pMsg>, mut msg: Ao2pMsg) {
        msg.ttl -= 1;
        let neighbors = api.neighbors();
        let me = api.my_pos();
        let wire = msg.bytes + AO2P_HEADER_BYTES;
        let next = neighbor_by_pseudonym(&neighbors, msg.dst)
            .or_else(|| greedy_next_hop(me, msg.proxy_target, &neighbors));
        if let Some(n) = next {
            // Hop-by-hop encryption for the winning next hop.
            api.charge_pk_encrypt(1);
            api.mark_hop(msg.packet);
            api.send_unicast(
                n.pseudonym,
                msg.clone(),
                wire,
                TrafficClass::Data,
                Some(msg.packet),
            );
        }
    }
}

use rand::Rng;

impl ProtocolNode for Ao2p {
    type Msg = Ao2pMsg;

    fn name() -> &'static str {
        "AO2P"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            return;
        };
        let src = api.my_pos();
        let d = info.position;
        // Place the proxy beyond D on the S->D ray, clamped to the field.
        let overshoot = src.distance(d) * self.overshoot_fraction;
        let dir_len = src.distance(d).max(1e-9);
        let proxy = Point::new(
            d.x + (d.x - src.x) / dir_len * overshoot,
            d.y + (d.y - src.y) / dir_len * overshoot,
        );
        let proxy = api.field().clamp(proxy);
        let msg = Ao2pMsg {
            packet: req.packet,
            bytes: req.bytes,
            proxy_target: proxy,
            dst: info.pseudonym,
            ttl: self.ttl,
        };
        self.contend_and_forward(api, msg);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let msg = frame.msg;
        // Hop-by-hop decryption at every receiver.
        api.charge_pk_decrypt(1);
        if msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet) {
            api.mark_delivered(msg.packet);
            return;
        }
        self.contend_and_forward(api, msg);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        if let Some(msg) = self.pending.remove(&token) {
            self.transmit(api, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{ScenarioConfig, World};

    fn scenario(nodes: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(nodes)
            .with_duration(30.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(cfg: ScenarioConfig, seed: u64) -> World<Ao2p> {
        let mut w = World::new(cfg, seed, |_, _| Ao2p::default());
        w.run();
        w
    }

    #[test]
    fn delivers_on_dense_network() {
        let w = run(scenario(200), 1);
        assert!(
            w.metrics().delivery_rate() > 0.85,
            "rate {}",
            w.metrics().delivery_rate()
        );
    }

    #[test]
    fn latency_exceeds_alarm_class_cost() {
        let w = run(scenario(200), 2);
        let lat = w.metrics().mean_latency().unwrap();
        // Encrypt + decrypt per hop at 250 ms each: a multi-hop path costs
        // a second or more — the paper's highest-latency protocol.
        assert!(lat > 0.4, "AO2P latency {lat}s too low");
    }

    #[test]
    fn proxy_target_lengthens_paths_vs_direct() {
        // The overshoot makes paths at least as long as GPSR's; compare
        // the hop metric against the GPSR run with the same seed/scenario.
        let ao2p = run(scenario(200), 3);
        let mut gpsr_w = World::new(scenario(200), 3, |_, _| crate::gpsr::Gpsr::default());
        gpsr_w.run();
        let (a, g) = (
            ao2p.metrics().hops_per_packet(),
            gpsr_w.metrics().hops_per_packet(),
        );
        assert!(
            a >= g - 0.5,
            "AO2P hops {a} should not be meaningfully below GPSR {g}"
        );
    }

    #[test]
    fn both_pk_directions_charged() {
        let w = run(scenario(100), 4);
        let c = w.metrics().crypto;
        assert!(c.pk_encrypt > 0);
        assert!(c.pk_decrypt > 0);
    }
}

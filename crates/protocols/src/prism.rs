//! PRISM — Privacy-friendly Routing In Suspicious MANETs (El Defrawy &
//! Tsudik \[6\]), the reactive counterpart of ALARM from the same authors.
//!
//! PRISM discovers routes on demand with a *location-limited* flood: the
//! source floods a route request towards the destination's area, but only
//! nodes making geographic progress re-broadcast, so the flood is a cone
//! rather than the whole network. Every control message carries a group
//! signature (any legitimate node can sign, no identity is revealed —
//! identity and location anonymity for both endpoints), which each
//! receiver verifies. The reply pins a reverse path; data then rides the
//! pinned path — a fixed route, hence no route anonymity (Table 1).
//!
//! Cost model: one signature (private-key op) per control message sent,
//! one verification per control message received, per-hop symmetric
//! re-encryption on the data path.

use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, Frame, PacketId, ProtocolNode, SessionId, TimerToken, TrafficClass,
};
use rand::Rng;
use std::collections::HashMap;

/// Wire size of a PRISM route request (group signature dominates).
const RREQ_BYTES: usize = 128;
/// Wire size of a route reply.
const RREP_BYTES: usize = 96;
/// Data-path header.
const PRISM_HEADER_BYTES: usize = 40;
/// Scoped-flood hop budget.
const FLOOD_TTL: u32 = 12;
/// Route refresh period (mobility breaks pinned paths).
const REFRESH_TIMER: TimerToken = 3;

/// PRISM wire messages.
#[derive(Debug, Clone)]
pub enum PrismMsg {
    /// Location-limited route request, flooded towards the destination
    /// area by nodes that make geographic progress.
    Rreq {
        /// Discovery id (dedup).
        id: u64,
        /// Session being discovered.
        session: SessionId,
        /// Destination pseudonym (inside the encrypted request in the real
        /// protocol; carried for the simulated trapdoor check).
        dst: Pseudonym,
        /// Centre of the destination area the flood is aimed at.
        target: Point,
        /// Distance from the *previous* transmitter to the target — the
        /// progress gate for re-broadcast.
        prev_dist: f64,
        /// Remaining flood budget.
        ttl: u32,
    },
    /// Route reply along the reverse path.
    Rrep {
        /// Discovery it answers.
        id: u64,
        /// Session.
        session: SessionId,
    },
    /// Data on the pinned path.
    Data {
        /// Session whose pinned path to follow.
        session: SessionId,
        /// Instrumentation id.
        packet: PacketId,
        /// Payload size.
        bytes: usize,
        /// Destination pseudonym for terminal acceptance.
        dst: Pseudonym,
    },
}

/// Per-node PRISM instance.
pub struct Prism {
    /// Seconds between route refreshes.
    pub refresh_interval_s: f64,
    /// Discoveries already relayed.
    seen: HashMap<u64, ()>,
    /// Reverse path per discovery: the neighbor the RREQ came from.
    reverse: HashMap<u64, Pseudonym>,
    /// Pinned next hop towards the destination, per session.
    next_hop: HashMap<SessionId, Pseudonym>,
    /// As source: queued packets awaiting a route.
    pending: Vec<(SessionId, PacketId, usize, Pseudonym)>,
    /// Sessions this node sources, with the last discovery time.
    my_sessions: HashMap<SessionId, (Pseudonym, Point, f64)>,
}

impl Default for Prism {
    fn default() -> Self {
        Prism {
            refresh_interval_s: 10.0,
            seen: HashMap::new(),
            reverse: HashMap::new(),
            next_hop: HashMap::new(),
            pending: Vec::new(),
            my_sessions: HashMap::new(),
        }
    }
}

impl Prism {
    fn discover(
        &mut self,
        api: &mut Api<'_, PrismMsg>,
        session: SessionId,
        dst: Pseudonym,
        target: Point,
    ) {
        let id: u64 = api.rng().gen();
        self.seen.insert(id, ());
        self.my_sessions.insert(session, (dst, target, api.now()));
        api.charge_pk_decrypt(1); // group signature on the request
        api.send_broadcast(
            PrismMsg::Rreq {
                id,
                session,
                dst,
                target,
                prev_dist: api.my_pos().distance(target),
                ttl: FLOOD_TTL,
            },
            RREQ_BYTES,
            TrafficClass::ControlHop,
            None,
        );
    }

    fn flush(&mut self, api: &mut Api<'_, PrismMsg>) {
        let pending = std::mem::take(&mut self.pending);
        let mut keep = Vec::new();
        for (session, packet, bytes, dst) in pending {
            if let Some(&next) = self.next_hop.get(&session) {
                api.charge_symmetric(1);
                api.mark_hop(packet);
                api.send_unicast(
                    next,
                    PrismMsg::Data {
                        session,
                        packet,
                        bytes,
                        dst,
                    },
                    bytes + PRISM_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            } else {
                keep.push((session, packet, bytes, dst));
            }
        }
        self.pending = keep;
    }
}

impl ProtocolNode for Prism {
    type Msg = PrismMsg;

    fn name() -> &'static str {
        "PRISM"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        api.set_timer(self.refresh_interval_s, REFRESH_TIMER);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        if token == REFRESH_TIMER {
            let sessions: Vec<(SessionId, Pseudonym, Point)> = self
                .my_sessions
                .iter()
                .map(|(s, (d, t, _))| (*s, *d, *t))
                .collect();
            for (s, d, t) in sessions {
                self.next_hop.remove(&s);
                self.discover(api, s, d, t);
            }
            api.set_timer(self.refresh_interval_s, REFRESH_TIMER);
        }
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_drop("location_lookup_failed");
            return;
        };
        self.pending
            .push((req.session, req.packet, req.bytes, info.pseudonym));
        if self.pending.len() > 64 {
            self.pending.remove(0);
        }
        let needs_discovery = !self.next_hop.contains_key(&req.session)
            && self
                .my_sessions
                .get(&req.session)
                .is_none_or(|(_, _, t)| api.now() - t > 1.0);
        if needs_discovery {
            self.discover(api, req.session, info.pseudonym, info.position);
        }
        self.flush(api);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        match frame.msg {
            PrismMsg::Rreq {
                id,
                session,
                dst,
                target,
                prev_dist,
                ttl,
            } => {
                api.charge_pk_verify(1); // verify the group signature
                if self.seen.contains_key(&id) {
                    return;
                }
                self.seen.insert(id, ());
                self.reverse.insert(id, frame.from);
                if dst == api.my_pseudonym() {
                    // Destination: sign and return the reply.
                    api.charge_pk_decrypt(1);
                    api.send_unicast(
                        frame.from,
                        PrismMsg::Rrep { id, session },
                        RREP_BYTES,
                        TrafficClass::Control,
                        None,
                    );
                    return;
                }
                // Location-limited flooding: only nodes strictly closer to
                // the target area than the previous transmitter relay.
                let my_dist = api.my_pos().distance(target);
                if ttl == 0 || my_dist >= prev_dist {
                    return;
                }
                api.charge_pk_decrypt(1); // re-sign the relayed request
                api.send_broadcast(
                    PrismMsg::Rreq {
                        id,
                        session,
                        dst,
                        target,
                        prev_dist: my_dist,
                        ttl: ttl - 1,
                    },
                    RREQ_BYTES,
                    TrafficClass::ControlHop,
                    None,
                );
            }
            PrismMsg::Rrep { id, session } => {
                api.charge_pk_verify(1);
                // The reply travels the reverse path: the node the RREQ
                // came from is upstream; the reply's sender is our pinned
                // next hop towards the destination.
                self.next_hop.insert(session, frame.from);
                if self.my_sessions.contains_key(&session) {
                    // Source reached: route pinned; drain the queue.
                    self.flush(api);
                    return;
                }
                let Some(&upstream) = self.reverse.get(&id) else {
                    return;
                };
                api.charge_pk_decrypt(1);
                api.send_unicast(
                    upstream,
                    PrismMsg::Rrep { id, session },
                    RREP_BYTES,
                    TrafficClass::Control,
                    None,
                );
            }
            PrismMsg::Data {
                session,
                packet,
                bytes,
                dst,
            } => {
                api.charge_symmetric(1);
                if dst == api.my_pseudonym() || api.is_true_destination(packet) {
                    api.mark_delivered(packet);
                    return;
                }
                let Some(&next) = self.next_hop.get(&session) else {
                    api.mark_drop("prism_no_pinned_route");
                    return;
                };
                api.mark_hop(packet);
                api.send_unicast(
                    next,
                    PrismMsg::Data {
                        session,
                        packet,
                        bytes,
                        dst,
                    },
                    bytes + PRISM_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            }
        }
    }
}

/// Sanity helper used in tests: the location-limited gate must admit a
/// node iff it makes progress.
pub fn progress_gate(my_pos: Point, prev_dist: f64, target: Point) -> bool {
    my_pos.distance(target) < prev_dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{Metrics, ScenarioConfig, World};

    fn scenario() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(200)
            .with_duration(40.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(seed: u64) -> Metrics {
        let mut w = World::new(scenario(), seed, |_, _| Prism::default());
        w.run();
        w.metrics().clone()
    }

    #[test]
    fn delivers_on_dense_network() {
        let m = run(1);
        assert!(m.delivery_rate() > 0.8, "rate {}", m.delivery_rate());
    }

    #[test]
    fn directed_flood_is_cheaper_than_network_wide() {
        // PRISM's progress-gated flood reaches far fewer nodes than
        // ANODR's network-wide flood for the same discoveries.
        let prism = run(2);
        let mut w = World::new(scenario(), 2, |_, _| crate::anodr::Anodr::default());
        w.run();
        let anodr = w.metrics().clone();
        assert!(
            (prism.control_hops as f64) < anodr.control_hops as f64 * 0.8,
            "PRISM flood {} should undercut ANODR {}",
            prism.control_hops,
            anodr.control_hops
        );
    }

    #[test]
    fn per_hop_signatures_dominate_crypto() {
        let m = run(3);
        assert!(m.crypto.pk_verify > 0, "no verifications recorded");
        assert!(m.crypto.pk_decrypt > 0, "no signatures recorded");
    }

    #[test]
    fn latency_reflects_group_signature_cost() {
        // Signatures are on the *control* path; once pinned, the data path
        // is symmetric — latency far below ALARM/AO2P but the first packet
        // of each session waits for a signed discovery round-trip.
        let m = run(4);
        let lat = m.mean_latency().unwrap();
        assert!(lat < 0.5, "PRISM steady-state latency {lat}s too high");
    }

    #[test]
    fn progress_gate_logic() {
        let target = Point::new(0.0, 0.0);
        assert!(progress_gate(Point::new(3.0, 0.0), 5.0, target));
        assert!(!progress_gate(Point::new(7.0, 0.0), 5.0, target));
        assert!(!progress_gate(Point::new(5.0, 0.0), 5.0, target));
    }

    #[test]
    fn fixed_pinned_route_has_low_diversity() {
        // Table 1: PRISM has no route anonymity — consecutive packets ride
        // the same pinned path (until a refresh).
        let m = run(5);
        let routes: Vec<Vec<alert_sim::NodeId>> = m
            .packets
            .iter()
            .filter(|p| p.session == SessionId(0) && p.delivered_at.is_some())
            .map(|p| p.participants.clone())
            .take(4)
            .collect();
        if routes.len() >= 2 {
            let mut identical = 0;
            for w in routes.windows(2) {
                if w[0] == w[1] {
                    identical += 1;
                }
            }
            assert!(
                identical * 2 >= routes.len() - 1,
                "pinned routes should mostly repeat: {identical} of {}",
                routes.len() - 1
            );
        }
    }
}

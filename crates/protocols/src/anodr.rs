//! ANODR — ANonymous On-Demand Routing (Kong, Hong & Gerla \[33\]), the
//! classic *topological* anonymous routing protocol the ALERT paper cites
//! as the exemplar of high-cost hop-by-hop onion routing.
//!
//! Mechanics reproduced here (simplified but structurally faithful):
//!
//! 1. **Anonymous route discovery.** The source floods an RREQ carrying a
//!    *trapdoor* only the destination can open, and a *trapdoor boomerang
//!    onion* (TBO): every forwarder wraps the onion in one more layer
//!    keyed by a random nonce only it can recognize, and remembers the
//!    upstream neighbor it heard the RREQ from.
//! 2. **Route pinning.** The destination returns an RREP that travels the
//!    reverse path; each relay peels its own onion layer, installs a pair
//!    of *link pseudonyms* (random tags shared only with its immediate
//!    neighbors), and forwards. No node learns the endpoints or the full
//!    route — each knows only its two link tags.
//! 3. **Data forwarding.** Packets carry only the downstream link tag;
//!    every relay swaps tags and re-encrypts (one symmetric operation per
//!    hop — the TBO's cost the paper contrasts with ALERT's single
//!    encryption).
//!
//! The flood per discovery is the "redundant traffic" cost of Table 1's
//! topological class: N broadcasts buy a route that mobility then breaks,
//! forcing periodic re-discovery.

use alert_crypto::Pseudonym;
use alert_sim::{
    Api, DataRequest, Frame, PacketId, ProtocolNode, SessionId, TimerToken, TrafficClass,
};
use rand::Rng;
use std::collections::HashMap;

/// Wire overhead of an RREQ (trapdoor + onion layer per hop, ~16 B each,
/// accounted as a flat average).
const RREQ_BYTES: usize = 96;
/// Wire overhead of an RREP.
const RREP_BYTES: usize = 64;
/// Extra header on data packets (link tag + re-encryption framing).
const ANODR_HEADER_BYTES: usize = 24;
/// RREQ floods are scoped by this hop budget.
const FLOOD_TTL: u32 = 12;
/// Timer token for periodic route refresh.
const REDISCOVER_TIMER: TimerToken = 2;

/// A link pseudonym: a random tag shared by two adjacent relays on a
/// pinned route.
pub type LinkTag = u64;

/// One onion layer: the forwarder's secret nonce (conceptually the layer
/// key; carrying it in the clear models the *mechanics*, the cost model
/// carries the crypto price).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnionLayer {
    owner_nonce: u64,
}

/// ANODR wire messages.
#[derive(Debug, Clone)]
pub enum AnodrMsg {
    /// Anonymous route request (network-wide scoped flood).
    Rreq {
        /// Flood identifier (dedup).
        flood: u64,
        /// Session being discovered (the trapdoor's content; only the
        /// destination acts on it).
        session: SessionId,
        /// Destination pseudonym sealed in the trapdoor.
        trapdoor: Pseudonym,
        /// The boomerang onion accumulated so far.
        onion: Vec<OnionLayer>,
        /// Remaining flood budget.
        ttl: u32,
    },
    /// Route reply, peeled backwards along the onion.
    Rrep {
        /// Flood it answers.
        flood: u64,
        /// Session.
        session: SessionId,
        /// Remaining onion (top layer = next relay to peel).
        onion: Vec<OnionLayer>,
        /// Link tag the *downstream* node (towards D) chose for this link.
        downstream_tag: LinkTag,
    },
    /// Data riding a pinned route.
    Data {
        /// Link tag identifying the next hop's route entry.
        tag: LinkTag,
        /// Instrumentation id.
        packet: PacketId,
        /// Payload size.
        bytes: usize,
    },
}

/// A pinned-route entry at a relay: packets arriving with `upstream_tag`
/// are re-tagged and forwarded to `next`.
#[derive(Debug, Clone, Copy)]
struct RouteEntry {
    downstream_tag: LinkTag,
    next: Pseudonym,
    /// True when this node is the route's destination endpoint.
    terminal: bool,
}

/// Per-node ANODR instance.
pub struct Anodr {
    /// Seconds between route re-discoveries (mobility breaks pinned
    /// routes; the paper's era used data-plane feedback, we use a timer).
    pub rediscover_interval_s: f64,
    /// Discount-ANODR \[34\]: onion cryptography only on the return
    /// route — RREQ relays do no symmetric work, the destination builds
    /// the boomerang instead ("constructs onions only on the return
    /// routes").
    pub discount: bool,
    /// Floods already relayed (dedup).
    seen_floods: HashMap<u64, ()>,
    /// Reverse path: flood id -> upstream neighbor the RREQ came from.
    reverse: HashMap<u64, Pseudonym>,
    /// My onion nonce per flood (to recognize my layer in the RREP).
    my_nonce: HashMap<u64, u64>,
    /// Pinned forwarding table: upstream tag -> entry.
    routes: HashMap<LinkTag, RouteEntry>,
    /// As source: session -> (first link tag, next hop) once pinned.
    source_routes: HashMap<SessionId, (LinkTag, Pseudonym)>,
    /// As source: packets waiting for a route, capped.
    pending: Vec<(SessionId, PacketId, usize)>,
    /// Sessions this node has flooded for and when.
    last_discovery: HashMap<SessionId, f64>,
    /// Trapdoor (destination pseudonym) per session this node sources.
    trapdoors: HashMap<SessionId, Pseudonym>,
}

impl Default for Anodr {
    fn default() -> Self {
        Anodr {
            rediscover_interval_s: 10.0,
            discount: false,
            seen_floods: HashMap::new(),
            reverse: HashMap::new(),
            my_nonce: HashMap::new(),
            routes: HashMap::new(),
            source_routes: HashMap::new(),
            pending: Vec::new(),
            last_discovery: HashMap::new(),
            trapdoors: HashMap::new(),
        }
    }
}

impl Anodr {
    /// The Discount-ANODR \[34\] variant.
    pub fn discount() -> Self {
        Anodr {
            discount: true,
            ..Anodr::default()
        }
    }

    fn discover(&mut self, api: &mut Api<'_, AnodrMsg>, session: SessionId, trapdoor: Pseudonym) {
        let flood: u64 = api.rng().gen();
        let nonce: u64 = api.rng().gen();
        self.seen_floods.insert(flood, ());
        self.my_nonce.insert(flood, nonce);
        self.last_discovery.insert(session, api.now());
        // Building the trapdoor costs one public-key op at the source
        // (only D can open it); each onion layer costs symmetric work.
        api.charge_symmetric(1);
        api.send_broadcast(
            AnodrMsg::Rreq {
                flood,
                session,
                trapdoor,
                onion: vec![OnionLayer { owner_nonce: nonce }],
                ttl: FLOOD_TTL,
            },
            RREQ_BYTES,
            TrafficClass::ControlHop,
            None,
        );
    }

    /// Sends queued data for `session` if a route is pinned.
    fn flush_pending(&mut self, api: &mut Api<'_, AnodrMsg>) {
        let mut still_pending = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for (session, packet, bytes) in pending {
            if let Some(&(tag, next)) = self.source_routes.get(&session) {
                api.charge_symmetric(1); // TBO re-encryption at the source
                api.mark_hop(packet);
                api.send_unicast(
                    next,
                    AnodrMsg::Data { tag, packet, bytes },
                    bytes + ANODR_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            } else {
                still_pending.push((session, packet, bytes));
            }
        }
        self.pending = still_pending;
    }
}

impl ProtocolNode for Anodr {
    type Msg = AnodrMsg;

    fn name() -> &'static str {
        "ANODR"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        api.set_timer(self.rediscover_interval_s, REDISCOVER_TIMER);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        if token == REDISCOVER_TIMER {
            // Refresh every active session's route (mobility invalidates
            // pinned paths).
            let sessions: Vec<SessionId> = self.last_discovery.keys().copied().collect();
            for s in sessions {
                if let Some(info) = self
                    .source_routes
                    .get(&s)
                    .map(|_| ())
                    .and(Some(s))
                    .and_then(|s| self.trapdoor_of(s))
                {
                    self.source_routes.remove(&s);
                    self.discover(api, s, info);
                }
            }
            api.set_timer(self.rediscover_interval_s, REDISCOVER_TIMER);
        }
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_drop("location_lookup_failed");
            return;
        };
        // ANODR is topological: the lookup stands in for its out-of-band
        // trapdoor-key agreement (the destination's public identifier);
        // positions are never used.
        self.trapdoors.insert(req.session, info.pseudonym);
        self.pending.push((req.session, req.packet, req.bytes));
        if self.pending.len() > 64 {
            self.pending.remove(0);
        }
        if !self.source_routes.contains_key(&req.session) {
            let needs_flood = self
                .last_discovery
                .get(&req.session)
                .is_none_or(|t| api.now() - t > 1.0);
            if needs_flood {
                self.discover(api, req.session, info.pseudonym);
            }
        }
        self.flush_pending(api);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        match frame.msg {
            AnodrMsg::Rreq {
                flood,
                session,
                trapdoor,
                mut onion,
                ttl,
            } => {
                if self.seen_floods.contains_key(&flood) {
                    return;
                }
                self.seen_floods.insert(flood, ());
                self.reverse.insert(flood, frame.from);
                // Try the trapdoor: one symmetric attempt per node (the
                // paper's TBO uses cheap trapdoors for exactly this).
                api.charge_hash(1);
                if trapdoor == api.my_pseudonym() {
                    // Destination: bounce the boomerang back. Under the
                    // discount variant the destination pays for the onion
                    // the relays skipped.
                    let my_tag: u64 = api.rng().gen();
                    let next = frame.from;
                    api.charge_symmetric(if self.discount { onion.len() as u64 } else { 1 });
                    self.routes.insert(
                        my_tag,
                        RouteEntry {
                            downstream_tag: 0,
                            next: api.my_pseudonym(),
                            terminal: true,
                        },
                    );
                    api.send_unicast(
                        next,
                        AnodrMsg::Rrep {
                            flood,
                            session,
                            onion,
                            downstream_tag: my_tag,
                        },
                        RREP_BYTES,
                        TrafficClass::Control,
                        None,
                    );
                    return;
                }
                if ttl == 0 {
                    return;
                }
                let nonce: u64 = api.rng().gen();
                self.my_nonce.insert(flood, nonce);
                onion.push(OnionLayer { owner_nonce: nonce });
                if !self.discount {
                    api.charge_symmetric(1); // wrap one onion layer
                }
                api.send_broadcast(
                    AnodrMsg::Rreq {
                        flood,
                        session,
                        trapdoor,
                        onion,
                        ttl: ttl - 1,
                    },
                    RREQ_BYTES,
                    TrafficClass::ControlHop,
                    None,
                );
            }
            AnodrMsg::Rrep {
                flood,
                session,
                mut onion,
                downstream_tag,
            } => {
                // Am I the owner of the top onion layer?
                let Some(&nonce) = self.my_nonce.get(&flood) else {
                    return;
                };
                let Some(top) = onion.last().copied() else {
                    return;
                };
                if top.owner_nonce != nonce {
                    return;
                }
                onion.pop();
                api.charge_symmetric(1); // peel my layer
                if onion.is_empty() {
                    // I am the source: route pinned.
                    self.source_routes
                        .insert(session, (downstream_tag, frame.from));
                    self.flush_pending(api);
                    return;
                }
                // Relay: install tag pair and pass the boomerang upstream.
                let my_tag: u64 = api.rng().gen();
                self.routes.insert(
                    my_tag,
                    RouteEntry {
                        downstream_tag,
                        next: frame.from,
                        terminal: false,
                    },
                );
                let Some(&upstream) = self.reverse.get(&flood) else {
                    return;
                };
                api.send_unicast(
                    upstream,
                    AnodrMsg::Rrep {
                        flood,
                        session,
                        onion,
                        downstream_tag: my_tag,
                    },
                    RREP_BYTES,
                    TrafficClass::Control,
                    None,
                );
            }
            AnodrMsg::Data { tag, packet, bytes } => {
                let Some(&entry) = self.routes.get(&tag) else {
                    api.mark_drop("anodr_unknown_tag");
                    return;
                };
                api.charge_symmetric(1); // per-hop TBO re-encryption
                if entry.terminal {
                    api.mark_delivered(packet);
                    return;
                }
                api.mark_hop(packet);
                api.send_unicast(
                    entry.next,
                    AnodrMsg::Data {
                        tag: entry.downstream_tag,
                        packet,
                        bytes,
                    },
                    bytes + ANODR_HEADER_BYTES,
                    TrafficClass::Data,
                    Some(packet),
                );
            }
        }
    }
}

impl Anodr {
    /// The trapdoor (destination pseudonym) remembered per session.
    fn trapdoor_of(&self, session: SessionId) -> Option<Pseudonym> {
        self.trapdoors.get(&session).copied()
    }
}

//! ALARM — Anonymous Location-Aided Routing in suspicious MANETs
//! (El Defrawy & Tsudik \[5\]), reimplemented as the paper describes it in
//! Section 5: "each node periodically disseminates its own identity to its
//! authenticated neighbors and continuously collects all other nodes'
//! identities. Thus, nodes can build a secure map of other nodes for
//! geographical routing. In routing, each node encrypts the packet by its
//! key which is verified by the next hop en route. Such dissemination
//! period was set to 30 s".
//!
//! Modeling note (DESIGN.md § 1): the *converged* map each node holds is
//! obtained from [`Api::proactive_map_snapshot`] at dissemination ticks
//! (staleness = up to one 30 s period), while the dissemination traffic is
//! charged explicitly — one `ControlHop` LAM broadcast per node per period,
//! which is what the paper adds to the hop metric for the
//! "ALARM (include id dissemination hops)" series in Fig. 15.

use crate::forwarding::{greedy_next_hop, neighbor_by_pseudonym};
use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, Frame, NodeId, PacketId, ProtocolNode, TimerToken, TrafficClass,
};

/// Wire size of a Location Announcement Message: identity certificate,
/// signed timestamped coordinates (per the ALARM paper, ~ 100 bytes).
const LAM_BYTES: usize = 100;

/// Extra header on data packets (signature + coordinates).
const ALARM_HEADER_BYTES: usize = 72;

/// Timer token for the periodic dissemination.
const LAM_TIMER: TimerToken = 1;

/// An ALARM message.
#[derive(Debug, Clone)]
pub enum AlarmMsg {
    /// Periodic location announcement (the map-building beacon).
    Lam,
    /// A data packet routed over the secure map.
    Data {
        /// Instrumentation id.
        packet: PacketId,
        /// Payload bytes.
        bytes: usize,
        /// Destination position from the sender's map.
        target: Point,
        /// Destination pseudonym for final handover.
        dst: Pseudonym,
        /// Remaining hop budget.
        ttl: u32,
    },
}

/// Per-node ALARM instance.
pub struct Alarm {
    /// Dissemination period in seconds (paper: 30 s).
    pub dissemination_period_s: f64,
    /// Hop budget per packet.
    pub ttl: u32,
    /// The node's current secure map: `(pseudonym, position)` indexed by
    /// node id, refreshed at dissemination ticks.
    map: Vec<(Pseudonym, Point)>,
}

impl Default for Alarm {
    fn default() -> Self {
        Alarm {
            dissemination_period_s: 30.0,
            ttl: 10,
            map: Vec::new(),
        }
    }
}

impl Alarm {
    fn refresh_map(&mut self, api: &mut Api<'_, AlarmMsg>) {
        self.map = api.proactive_map_snapshot();
    }

    fn disseminate(&mut self, api: &mut Api<'_, AlarmMsg>) {
        // One signed LAM broadcast; neighbors verify the signature.
        api.charge_pk_decrypt(1); // signing one's own announcement
        api.send_broadcast(AlarmMsg::Lam, LAM_BYTES, TrafficClass::ControlHop, None);
        // The announcement must traverse the whole network for every node
        // to keep a complete map ("continuously collects all other nodes'
        // identities"); the converged map is provided by the snapshot
        // oracle, so the relay traffic — about one frame per hop of the
        // network diameter — is charged to the accounting instead of
        // being simulated frame by frame (DESIGN.md § 1).
        let cfg = api.config();
        let diameter_hops = ((cfg.field_w.hypot(cfg.field_h)) / cfg.mac.range_m).ceil() as u64;
        api.account_control_hops(diameter_hops.saturating_sub(1), LAM_BYTES);
        self.refresh_map(api);
        api.set_timer(self.dissemination_period_s, LAM_TIMER);
    }

    fn forward(
        &self,
        api: &mut Api<'_, AlarmMsg>,
        packet: PacketId,
        bytes: usize,
        target: Point,
        dst: Pseudonym,
        ttl: u32,
    ) {
        if ttl == 0 {
            return;
        }
        let me = api.my_pos();
        let wire = bytes + ALARM_HEADER_BYTES;
        // Final handover: the destination may have rotated its pseudonym
        // since this node's 30 s-old map snapshot, so a table match can
        // fail even with the destination in range. ALARM identifies nodes
        // by long-term certificates, so when the mapped position is within
        // range we address the destination directly and let the link layer
        // resolve it (the runtime keeps a one-generation pseudonym grace
        // window, as a real resolver would).
        let range = api.config().mac.range_m;
        // Resolve both candidate hops up front: the shared borrow of the
        // neighbor table must end before the mutable `api` sends below.
        let next = neighbor_by_pseudonym(api.neighbors(), dst);
        let fallback = greedy_next_hop(me, target, api.neighbors());
        if next.is_none() && me.distance(target) <= range * 0.9 {
            api.charge_pk_decrypt(1);
            api.mark_hop(packet);
            api.send_unicast(
                dst,
                AlarmMsg::Data {
                    packet,
                    bytes,
                    target,
                    dst,
                    ttl: ttl - 1,
                },
                wire,
                TrafficClass::Data,
                Some(packet),
            );
            return;
        }
        let next = next.or(fallback);
        if let Some(n) = next {
            // Hop-by-hop: sign at the sender (the expensive private-key
            // op); the receiver verifies (cheap public-key op).
            api.charge_pk_decrypt(1);
            api.mark_hop(packet);
            api.send_unicast(
                n.pseudonym,
                AlarmMsg::Data {
                    packet,
                    bytes,
                    target,
                    dst,
                    ttl: ttl - 1,
                },
                wire,
                TrafficClass::Data,
                Some(packet),
            );
        }
    }
}

impl ProtocolNode for Alarm {
    type Msg = AlarmMsg;

    fn name() -> &'static str {
        "ALARM"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        self.disseminate(api);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        if token == LAM_TIMER {
            self.disseminate(api);
        }
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        // ALARM routes from its own map, not the location service.
        let Some(&(dst_pseudonym, target)) = self.map.get(req.dst.0) else {
            return;
        };
        self.forward(api, req.packet, req.bytes, target, dst_pseudonym, self.ttl);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        match frame.msg {
            AlarmMsg::Lam => {
                // Verify the neighbor's announcement signature.
                api.charge_pk_verify(1);
            }
            AlarmMsg::Data {
                packet,
                bytes,
                target,
                dst,
                ttl,
            } => {
                api.charge_pk_verify(1); // verify the previous hop
                if dst == api.my_pseudonym() || api.is_true_destination(packet) {
                    api.mark_delivered(packet);
                    return;
                }
                self.forward(api, packet, bytes, target, dst, ttl);
            }
        }
    }
}

/// Convenience constructor used by the benchmark harness.
pub fn alarm_factory(_id: NodeId, _cfg: &alert_sim::ScenarioConfig) -> Alarm {
    Alarm::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{ScenarioConfig, World};

    fn scenario(nodes: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(nodes)
            .with_duration(30.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(cfg: ScenarioConfig, seed: u64) -> World<Alarm> {
        let mut w = World::new(cfg, seed, alarm_factory);
        w.run();
        w
    }

    #[test]
    fn delivers_on_dense_network() {
        let w = run(scenario(200), 1);
        assert!(w.metrics().delivery_rate() > 0.85);
    }

    #[test]
    fn latency_dominated_by_public_key_ops() {
        let w = run(scenario(200), 2);
        let lat = w.metrics().mean_latency().unwrap();
        // Per-hop signing at 250 ms: a 2-4 hop path costs 0.5-1 s+ — the
        // paper's "dramatically higher latency than GPSR and ALERT".
        assert!(lat > 0.2, "ALARM latency {lat}s suspiciously low");
    }

    #[test]
    fn dissemination_hops_are_charged() {
        let w = run(scenario(100), 3);
        let m = w.metrics();
        // 100 nodes x (1 initial + 1 at t=30 s) LAMs in 30 s run.
        assert!(
            m.control_hops >= 100,
            "expected >= 100 LAM control hops, got {}",
            m.control_hops
        );
        assert!(m.hops_per_packet_with_control() > m.hops_per_packet());
    }

    #[test]
    fn crypto_ops_accumulate() {
        let w = run(scenario(100), 4);
        let c = w.metrics().crypto;
        assert!(c.pk_decrypt > 0, "signing ops missing");
        assert!(c.pk_verify > 0, "verification ops missing");
        assert_eq!(c.symmetric, 0, "ALARM uses no symmetric data path here");
    }
}

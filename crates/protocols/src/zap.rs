//! ZAP — anonymous geo-forwarding through location cloaking (Wu, Liu,
//! Hong & Bertino \[13\]).
//!
//! ZAP protects only the *destination*: the source greedily forwards the
//! packet towards an **anonymity zone** (a cloaked region around the
//! destination's position) and the packet is flooded within the zone, so
//! an observer learns the zone but not which member is the recipient.
//! Routes and sources are unprotected (Table 1).
//!
//! Against intersection attacks, ZAP's own countermeasure "dynamically
//! enlarges the range of anonymous zones to broadcast the messages"
//! (Section 3.3) — implemented here as a per-packet zone growth factor,
//! which is exactly the overhead-for-anonymity trade ALERT's two-step
//! delivery is designed to avoid. The `claim-defense-cost` experiment
//! compares the two.

use crate::forwarding::greedy_next_hop;
use alert_crypto::Pseudonym;
use alert_geom::{Point, Rect};
use alert_sim::{Api, DataRequest, Frame, PacketId, ProtocolNode, TrafficClass};
use std::collections::HashSet;

/// Extra header bytes on a ZAP packet (zone coordinates + pseudonyms).
const ZAP_HEADER_BYTES: usize = 48;

/// Where a ZAP packet currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZapPhase {
    /// Greedy geographic forwarding towards the zone centre.
    ToZone,
    /// Scoped flood within the anonymity zone.
    Flood,
}

/// A ZAP data packet.
#[derive(Debug, Clone)]
pub struct ZapMsg {
    /// Instrumentation id.
    pub packet: PacketId,
    /// Payload bytes.
    pub bytes: usize,
    /// The cloaked anonymity zone around the destination.
    pub zone: Rect,
    /// Destination pseudonym (for final acceptance only; it never guides
    /// routing).
    pub dst: Pseudonym,
    /// Remaining hop budget.
    pub ttl: u32,
    /// Current phase.
    pub phase: ZapPhase,
}

/// Per-node ZAP instance.
pub struct Zap {
    /// Side length of the anonymity zone at session start, metres.
    pub zone_side_m: f64,
    /// Zone-side growth factor applied per packet sequence number — ZAP's
    /// intersection-attack countermeasure (1.0 = off).
    pub zone_growth: f64,
    /// Hop budget per packet.
    pub ttl: u32,
    /// Zone floods already relayed by this node.
    relayed: HashSet<PacketId>,
}

impl Default for Zap {
    fn default() -> Self {
        Zap {
            // Comparable to ALERT's H = 5 zone (~177 m equal-area side).
            zone_side_m: 180.0,
            zone_growth: 1.0,
            ttl: 24,
            relayed: HashSet::new(),
        }
    }
}

impl Zap {
    /// A ZAP with the zone-enlargement countermeasure enabled.
    pub fn with_growth(zone_growth: f64) -> Self {
        Zap {
            zone_growth,
            ..Zap::default()
        }
    }

    /// The anonymity zone for packet `seq`: a square of the configured
    /// side (grown per packet when the countermeasure is on), centred on
    /// the destination's cloaked position, clamped to the field.
    fn zone_for(&self, field: &Rect, dst_pos: Point, seq: u32) -> Rect {
        let side = (self.zone_side_m * self.zone_growth.powi(seq as i32))
            .min(field.width().min(field.height()));
        let half = side / 2.0;
        let min = Point::new(
            (dst_pos.x - half).clamp(field.min.x, field.max.x - side),
            (dst_pos.y - half).clamp(field.min.y, field.max.y - side),
        );
        Rect::new(min, Point::new(min.x + side, min.y + side))
    }

    fn forward(&mut self, api: &mut Api<'_, ZapMsg>, mut msg: ZapMsg) {
        if msg.ttl == 0 {
            api.mark_drop("zap_ttl_exhausted");
            return;
        }
        msg.ttl -= 1;
        let me = api.my_pos();
        let wire = msg.bytes + ZAP_HEADER_BYTES;
        if msg.zone.contains(me) {
            // Inside the zone: scoped flood (every zone member relays the
            // broadcast once, so all members receive — that is the
            // k-anonymity of the cloaked region).
            msg.phase = ZapPhase::Flood;
            if self.relayed.insert(msg.packet) {
                api.mark_hop(msg.packet);
                api.send_broadcast(msg.clone(), wire, TrafficClass::Data, Some(msg.packet));
            }
            return;
        }
        match greedy_next_hop(me, msg.zone.center(), &api.neighbors()) {
            Some(n) => {
                api.mark_hop(msg.packet);
                api.send_unicast(
                    n.pseudonym,
                    msg.clone(),
                    wire,
                    TrafficClass::Data,
                    Some(msg.packet),
                );
            }
            None => api.mark_drop("zap_greedy_stuck"),
        }
    }
}

impl ProtocolNode for Zap {
    type Msg = ZapMsg;

    fn name() -> &'static str {
        "ZAP"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_drop("location_lookup_failed");
            return;
        };
        let field = api.field();
        let zone = self.zone_for(&field, field.clamp(info.position), req.seq);
        let msg = ZapMsg {
            packet: req.packet,
            bytes: req.bytes,
            zone,
            dst: info.pseudonym,
            ttl: self.ttl,
            phase: ZapPhase::ToZone,
        };
        self.forward(api, msg);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let msg = frame.msg;
        let mine = msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet);
        if mine {
            api.mark_delivered(msg.packet);
            return;
        }
        match msg.phase {
            ZapPhase::ToZone => self.forward(api, msg),
            ZapPhase::Flood => {
                // Flood relays only propagate within the zone.
                if msg.zone.contains(api.my_pos()) && msg.ttl > 0 && self.relayed.insert(msg.packet)
                {
                    let mut msg = msg;
                    msg.ttl -= 1;
                    let wire = msg.bytes + ZAP_HEADER_BYTES;
                    api.mark_hop(msg.packet);
                    api.send_broadcast(msg.clone(), wire, TrafficClass::Data, Some(msg.packet));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::{Metrics, ScenarioConfig, World};

    fn scenario() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(200)
            .with_duration(30.0);
        cfg.traffic.pairs = 5;
        cfg
    }

    fn run(growth: f64, seed: u64) -> Metrics {
        let mut w = World::new(scenario(), seed, move |_, _| Zap::with_growth(growth));
        w.run();
        w.metrics().clone()
    }

    #[test]
    fn delivers_on_dense_network() {
        let m = run(1.0, 1);
        assert!(m.delivery_rate() > 0.9, "rate {}", m.delivery_rate());
    }

    #[test]
    fn zone_flood_costs_more_hops_than_gpsr() {
        let zap = run(1.0, 2);
        let mut w = World::new(scenario(), 2, |_, _| crate::gpsr::Gpsr::default());
        w.run();
        let gpsr = w.metrics().clone();
        assert!(
            zap.hops_per_packet() > gpsr.hops_per_packet() + 1.0,
            "ZAP floods must cost hops: {} vs GPSR {}",
            zap.hops_per_packet(),
            gpsr.hops_per_packet()
        );
    }

    #[test]
    fn zone_growth_inflates_overhead() {
        // The countermeasure grows the flooded region every packet: hop
        // cost rises sharply over a session.
        let plain = run(1.0, 3);
        let defended = run(1.05, 3); // +5% side per packet
        assert!(
            defended.hops_per_packet() > plain.hops_per_packet() * 1.5,
            "growth 1.05 should inflate hops: {} vs {}",
            defended.hops_per_packet(),
            plain.hops_per_packet()
        );
    }

    #[test]
    fn zone_stays_in_field() {
        let zap = Zap::default();
        let field = Rect::with_size(1000.0, 1000.0);
        for (x, y) in [(5.0, 5.0), (995.0, 995.0), (500.0, 2.0)] {
            let z = zap.zone_for(&field, Point::new(x, y), 0);
            assert!(field.contains_rect(&z), "zone {z} escapes at ({x},{y})");
            assert!(z.contains(Point::new(x, y)) || z.distance_to_point(Point::new(x, y)) < 1.0);
        }
        // Growth caps at the field size.
        let huge = Zap::with_growth(2.0).zone_for(&field, Point::new(500.0, 500.0), 30);
        assert!(field.contains_rect(&huge));
    }

    #[test]
    fn no_source_anonymity_no_crypto() {
        let m = run(1.0, 4);
        assert_eq!(m.cover_frames, 0, "ZAP has no notify-and-go");
        assert_eq!(m.crypto.symmetric + m.crypto.pk_encrypt, 0);
    }
}

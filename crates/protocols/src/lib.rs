//! # alert-protocols
//!
//! The geographic routing protocols of the paper's evaluation:
//!
//! * [`Gpsr`] — the GPSR baseline \[15\] (greedy + Gabriel-planarized
//!   perimeter recovery);
//! * [`Alarm`] — the ALARM comparison protocol \[5\] (proactive map via
//!   periodic identity dissemination, per-hop sign/verify);
//! * [`Ao2p`] — the AO2P comparison protocol \[10\] (contention phase,
//!   projected proxy destination, hop-by-hop encryption);
//! * [`forwarding`] — shared greedy / planarization / right-hand-rule
//!   primitives, also used by ALERT's relay legs between random
//!   forwarders;
//! * [`Zap`] — the ZAP destination-cloaking protocol \[13\] (anonymity-zone
//!   flooding, with its zone-enlargement intersection countermeasure);
//! * [`Anodr`] — ANODR \[33\], the classic topological onion-routing
//!   protocol (trapdoor boomerang onions, link-pseudonym route pinning);
//! * [`Prism`] — PRISM \[6\], reactive geographic routing with
//!   location-limited flooding and per-hop group signatures;
//! * [`Mask`] — MASK \[32\], topological routing over anonymously
//!   authenticated neighborhoods (link identifiers);
//! * [`Mapcp`] — MAPCP \[9\], the probabilistic-broadcast anonymity
//!   middleware (pure gossip);
//! * [`taxonomy`] — Table 1 as machine-readable metadata.

//! ## Example: run GPSR on the paper's scenario
//!
//! ```
//! use alert_protocols::Gpsr;
//! use alert_sim::{ScenarioConfig, World};
//!
//! let mut cfg = ScenarioConfig::default().with_nodes(80).with_duration(8.0);
//! cfg.traffic.pairs = 2;
//! let mut world = World::new(cfg, 1, |_, _| Gpsr::default());
//! world.run();
//! assert!(world.metrics().delivery_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod anodr;
pub mod ao2p;
pub mod forwarding;
pub mod gpsr;
pub mod mapcp;
pub mod mask;
pub mod prism;
pub mod taxonomy;
pub mod zap;

pub use alarm::{Alarm, AlarmMsg};
pub use anodr::{Anodr, AnodrMsg};
pub use ao2p::{Ao2p, Ao2pMsg};
pub use gpsr::{Gpsr, GpsrMode, GpsrMsg};
pub use mapcp::{Mapcp, MapcpMsg};
pub use mask::{Mask, MaskMsg};
pub use prism::{Prism, PrismMsg};
pub use zap::{Zap, ZapMsg, ZapPhase};

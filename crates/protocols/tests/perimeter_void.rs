//! Perimeter-mode recovery on a crafted void: a C-shaped obstacle between
//! source and destination defeats pure greedy forwarding; GPSR's
//! right-hand-rule face routing must carry the packet around it.

use alert_geom::Point;
use alert_protocols::Gpsr;
use alert_sim::{MobilityKind, NodeId, ScenarioConfig, TrafficConfig, World};

/// Builds a topology where the greedy path from the west side to the east
/// side dead-ends inside a "C" of nodes open to the west: the node at the
/// C's inner pocket is closer to the destination than all its neighbors.
///
/// Layout (1000 x 1000, radio range 250):
///
/// ```text
///   wall x = 500..520 with a pocket: nodes only along a C shape
///   S chain -> pocket -> (void) ... D chain
/// ```
fn void_positions() -> Vec<Point> {
    let mut pts = Vec::new();
    // West chain from S towards the pocket.
    for i in 0..4 {
        pts.push(Point::new(60.0 + i as f64 * 120.0, 500.0));
    }
    // The pocket node (index 4): local maximum — its only progress-ward
    // neighbors are the C arms, all farther from D.
    pts.push(Point::new(540.0, 500.0));
    // The C arms: north and south walls extending east, forming the void.
    for i in 0..3 {
        pts.push(Point::new(540.0 + i as f64 * 150.0, 720.0)); // north arm
        pts.push(Point::new(540.0 + i as f64 * 150.0, 280.0)); // south arm
    }
    // East chain to D, beyond the void (x >= 840).
    pts.push(Point::new(900.0, 600.0));
    pts.push(Point::new(940.0, 500.0)); // D (last node)
    pts
}

#[test]
fn gpsr_routes_around_a_void() {
    let positions = void_positions();
    let n = positions.len();
    let mut cfg = ScenarioConfig::default().with_duration(10.0);
    cfg.traffic = TrafficConfig {
        pairs: 1,
        interval_s: 2.0,
        packet_bytes: 256,
        start_s: 1.0,
    };
    // Explicit topology and session: S = west end, D = east end, with the
    // C-shaped void between them.
    let session = alert_sim::Session {
        src: NodeId(0),
        dst: NodeId(n - 1),
    };
    let mut w = World::with_topology(cfg, 3, positions.clone(), vec![session], |_, _| {
        Gpsr::default()
    });
    w.run();
    let m = w.metrics();
    assert!(
        m.delivery_rate() > 0.9,
        "GPSR must deliver around the void, got {}",
        m.delivery_rate()
    );
    // The route is longer than the straight-line hop count: detouring via
    // a C arm costs extra hops over the 4-5 hop crow-fly path.
    assert!(
        m.hops_per_packet() >= 5.0,
        "expected a detour, got {} hops",
        m.hops_per_packet()
    );

    // Deterministic geometric check of the trap itself: the pocket node
    // is a true greedy local maximum, yet right-hand traversal of its
    // planarized neighbors makes progress onto a C arm.
    use alert_crypto::{KeyPair, Pseudonym};
    use alert_protocols::forwarding::{gabriel_neighbors, greedy_next_hop, right_hand_next};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let range = 250.0;
    let me = positions[4]; // the pocket
    let d = *positions.last().unwrap();
    let neighbors: Vec<alert_sim::NeighborEntry> = positions
        .iter()
        .enumerate()
        .filter(|(i, p)| *i != 4 && p.distance(me) <= range)
        .map(|(i, p)| alert_sim::NeighborEntry {
            pseudonym: Pseudonym(i as u64),
            position: *p,
            public_key: kp.public,
            heard_at: 0.0,
        })
        .collect();
    assert!(!neighbors.is_empty());
    assert!(
        greedy_next_hop(me, d, &neighbors).is_none(),
        "the pocket must be a greedy local maximum"
    );
    let planar = gabriel_neighbors(me, &neighbors);
    let next = right_hand_next(me, d, &planar).expect("perimeter exit exists");
    assert!(
        next.position.y > 600.0 || next.position.y < 400.0,
        "perimeter must route onto an arm, got {}",
        next.position
    );
}

/// On a connected static topology with a void, GPSR's end-to-end delivery
/// must beat a greedy-only strawman.
#[test]
fn perimeter_recovers_delivery_on_sparse_static_fields() {
    // Sparse static fields produce natural voids; perimeter mode is what
    // keeps delivery up. Compare GPSR with a greedy-only variant by
    // setting an (effectively) unusable perimeter: we approximate the
    // strawman by observing drop accounting instead — every packet GPSR
    // delivers after entering perimeter mode is a perimeter rescue.
    let mut cfg = ScenarioConfig::default()
        .with_nodes(60)
        .with_duration(30.0)
        .with_mobility(MobilityKind::Static);
    cfg.traffic.pairs = 5;
    let mut total_rate = 0.0;
    let runs = 6;
    for seed in 0..runs {
        let mut w = World::new(cfg.clone(), seed, |_, _| Gpsr::default());
        w.run();
        total_rate += w.metrics().delivery_rate();
    }
    let mean = total_rate / runs as f64;
    assert!(
        mean > 0.55,
        "sparse static GPSR with perimeter should keep most pairs alive, got {mean:.2}"
    );
}

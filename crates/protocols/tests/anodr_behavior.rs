//! Behavioural tests of the ANODR baseline.

use alert_protocols::{Anodr, Gpsr};
use alert_sim::{Metrics, ScenarioConfig, World};

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(40.0);
    cfg.traffic.pairs = 5;
    cfg
}

fn run(seed: u64) -> Metrics {
    let mut w = World::new(scenario(), seed, |_, _| Anodr::default());
    w.run();
    w.metrics().clone()
}

#[test]
fn pins_routes_and_delivers() {
    let m = run(1);
    assert!(
        m.delivery_rate() > 0.8,
        "ANODR delivery {} too low",
        m.delivery_rate()
    );
}

#[test]
fn discovery_floods_dominate_control_overhead() {
    // Each route discovery floods the network: control hops per delivered
    // packet dwarf the data-path hops — the "redundant traffic" cost the
    // paper attributes to topological anonymous routing.
    let m = run(2);
    assert!(
        m.control_hops as f64 > m.packets_sent() as f64 * 2.0,
        "expected heavy flood overhead, got {} control hops for {} packets",
        m.control_hops,
        m.packets_sent()
    );
    assert!(
        m.hops_per_packet_with_control() > m.hops_per_packet() * 2.0,
        "dissemination-inclusive hop metric should be much larger"
    );
}

#[test]
fn data_path_is_short_once_pinned() {
    // After pinning, data follows the discovered path: per-packet data
    // hops comparable to GPSR's shortest path (floods are control-plane).
    let m = run(3);
    let mut w = World::new(scenario(), 3, |_, _| Gpsr::default());
    w.run();
    let g = w.metrics().clone();
    assert!(
        m.hops_per_packet() < g.hops_per_packet() * 2.5,
        "ANODR data path {} hops vs GPSR {}",
        m.hops_per_packet(),
        g.hops_per_packet()
    );
}

#[test]
fn per_hop_symmetric_crypto() {
    // One TBO re-encryption per data hop plus onion work per discovery:
    // symmetric ops well above one per packet, no public-key on the data
    // path.
    let m = run(4);
    assert!(
        m.crypto.symmetric as f64 > m.packets_sent() as f64,
        "per-hop symmetric work missing: {} ops for {} packets",
        m.crypto.symmetric,
        m.packets_sent()
    );
}

#[test]
fn latency_between_gpsr_and_pk_protocols() {
    // Symmetric-only crypto keeps ANODR's latency in the tens of ms —
    // far below ALARM/AO2P, above plain GPSR (discovery stalls the first
    // packets of each session).
    let m = run(5);
    let lat = m.mean_latency().expect("deliveries");
    assert!(
        lat < 0.4,
        "ANODR latency {lat}s should be far below the pk protocols"
    );
}

#[test]
fn survives_mobility_via_rediscovery() {
    let mut cfg = scenario().with_duration(60.0);
    cfg.speed = 6.0;
    let mut w = World::new(cfg, 6, |_, _| Anodr::default());
    w.run();
    let rate = w.metrics().delivery_rate();
    assert!(
        rate > 0.5,
        "rediscovery should keep routes alive under mobility, got {rate}"
    );
}

#[test]
fn discount_variant_moves_crypto_off_the_flood() {
    // Discount-ANODR: same delivery, far fewer symmetric operations per
    // discovery because flood relays skip the onion work.
    let mut plain_w = World::new(scenario(), 7, |_, _| Anodr::default());
    plain_w.run();
    let mut disc_w = World::new(scenario(), 7, |_, _| Anodr::discount());
    disc_w.run();
    let (plain, disc) = (plain_w.metrics().clone(), disc_w.metrics().clone());
    assert!(
        (disc.crypto.symmetric as f64) < plain.crypto.symmetric as f64 * 0.6,
        "discount should cut symmetric ops: {} -> {}",
        plain.crypto.symmetric,
        disc.crypto.symmetric
    );
    assert!(
        disc.delivery_rate() > plain.delivery_rate() - 0.1,
        "discount must not hurt delivery: {} vs {}",
        disc.delivery_rate(),
        plain.delivery_rate()
    );
}

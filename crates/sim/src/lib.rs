//! # alert-sim
//!
//! A deterministic discrete-event MANET simulator — the substrate the
//! paper ran on NS-2.29 (Section 5.2), rebuilt from scratch in Rust (see
//! DESIGN.md § 1 for the substitution argument).
//!
//! Components:
//!
//! * [`EventQueue`] — the future event list (time-ordered, FIFO ties);
//! * [`ScenarioConfig`] — every evaluation knob in one struct, defaulting
//!   to the paper's setup;
//! * [`World`] — the runtime: mobility + spatial index + wireless channel
//!   (unit disk, stochastic 802.11-style MAC) + hello beacons and neighbor
//!   tables + pseudonym rotation + location service + CBR traffic;
//! * [`ProtocolNode`] / [`Api`] — the trait a routing protocol implements
//!   and the capability surface it sees (own position, neighbor table,
//!   location service, unicast/broadcast, timers, crypto cost charging);
//! * [`Metrics`] — ground-truth instrumentation for the paper's six
//!   metrics;
//! * [`Observer`] / [`TxEvent`] — the eavesdropper's view of the channel,
//!   consumed by the adversary analyzers.
//!
//! A run is a pure function of `(ScenarioConfig, seed)`: events tie-break
//! by schedule order and all randomness flows from one seeded generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod config;
mod engine;
mod fault;
mod guard;
mod ids;
mod location;
mod metrics;
mod runtime;

pub use api::{Api, DataRequest, Frame, FrameKind, NeighborEntry, ProtocolNode, TrafficClass};
pub use config::{
    EnergyConfig, InsiderConfig, InsiderMode, LocationPolicy, MacConfig, MobilityKind, Placement,
    ScenarioConfig, ScenarioError, TrafficConfig,
};
pub use engine::{EventId, EventQueue};
pub use fault::{FaultPlan, LinkDegradation, NodeCrash, RegionOutage};
pub use guard::{RunAbort, RunBudget, WALL_CHECK_INTERVAL};
pub use ids::{NodeId, PacketId, SessionId, TimerToken};
pub use location::{LocationInfo, LocationService};
pub use metrics::{Metrics, NodeEnergyAccounting, PacketRecord};
pub use runtime::{FrameAudit, Observer, Session, TxEvent, World};

// Re-export the observability vocabulary so downstream crates (bench,
// examples, tests) can speak it without a separate alert-trace dependency.
pub use alert_trace::{
    filter_events, follow_packet, parse_trace, render_events_csv, render_events_jsonl,
    render_windows_csv, render_windows_json, window_aggregates, DropReason, EventFilter, JsonlSink,
    MetricsTimeseries, NullSink, ParseError, RegistrySnapshot, RingBufferHandle, RingBufferSink,
    RunProfile, SharedBuf, TeeSink, TimeseriesSample, TraceEvent, TraceSink, WindowAggregate,
};

//! Scenario configuration: every knob of the paper's evaluation setup
//! (Section 5.2) in one serializable struct.

use crate::fault::FaultPlan;
use crate::guard::RunBudget;
use alert_crypto::CostModel;
use alert_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`ScenarioConfig`] cannot be simulated.
///
/// Returned by [`ScenarioConfig::validate`] and the fallible `World`
/// constructors instead of the old `panic!("invalid scenario: …")`
/// paths, so callers (the CLIs, tests, sweeps) can report or recover.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `nodes == 0`.
    NoNodes,
    /// `field_w` or `field_h` is not positive.
    EmptyField,
    /// `mac.range_m` is not positive.
    NonPositiveRange,
    /// `duration_s` is not positive.
    NonPositiveDuration,
    /// More S–D pairs than the node population can supply.
    TooManyPairs {
        /// Requested number of S–D pairs.
        pairs: usize,
        /// Available nodes.
        nodes: usize,
    },
    /// `mac.loss_probability` is outside `[0, 1]`.
    InvalidLossProbability(f64),
    /// A pre-built session references a node id outside the population.
    SessionEndpointOutOfRange {
        /// The offending node id.
        node: usize,
        /// Available nodes.
        nodes: usize,
    },
    /// A periodic interval (`traffic.interval_s`, `hello_interval_s` or
    /// `mobility_tick_s`) is not positive; a zero traffic interval would
    /// spin the event loop forever at one instant.
    NonPositiveInterval {
        /// Which interval field is degenerate.
        which: &'static str,
    },
    /// `neighbor_staleness_factor` must be a finite factor `>= 1` (entries
    /// are evicted after `k` missed hello intervals).
    InvalidStalenessFactor(f64),
    /// `mac.arq_backoff_base_s` must be finite and non-negative.
    InvalidArqBackoff(f64),
    /// A fault-plan crash references a node id outside the population.
    FaultNodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Available nodes.
        nodes: usize,
    },
    /// A fault-plan time window is inverted, negative or non-finite (also
    /// covers degenerate outage rectangles).
    InvalidFaultWindow {
        /// Window start in seconds.
        start: f64,
        /// Window end in seconds.
        end: f64,
    },
    /// A link-degradation factor or additive loss is out of range.
    InvalidFaultLoss(f64),
    /// A [`crate::RunBudget`] limit is zero, negative or non-finite —
    /// omit the field for "no limit" instead.
    InvalidBudget {
        /// Which budget field is degenerate.
        which: &'static str,
    },
    /// A Manhattan grid needs at least one street on each axis.
    InvalidStreets {
        /// Requested horizontal street count.
        h: usize,
        /// Requested vertical street count.
        v: usize,
    },
    /// A Manhattan intersection turn probability is outside `[0, 1]` or
    /// non-finite.
    InvalidTurnProbability(f64),
    /// A Manhattan grid needs at least one speed class.
    InvalidSpeedClasses(usize),
    /// Small-teams placement with an empty team.
    InvalidTeamSize(usize),
    /// Small-teams spread is negative or non-finite.
    InvalidTeamSpread(f64),
    /// An [`EnergyConfig`] field is out of range.
    InvalidEnergy {
        /// Which energy field is degenerate.
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The insider compromise fraction is outside `[0, 1]` or non-finite.
    InvalidInsiderFraction(f64),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoNodes => write!(f, "scenario needs at least one node"),
            ScenarioError::EmptyField => write!(f, "field must have positive area"),
            ScenarioError::NonPositiveRange => write!(f, "radio range must be positive"),
            ScenarioError::NonPositiveDuration => write!(f, "duration must be positive"),
            ScenarioError::TooManyPairs { pairs, nodes } => write!(
                f,
                "{} S-D pairs need {} distinct nodes but only {} exist",
                pairs,
                pairs * 2,
                nodes
            ),
            ScenarioError::InvalidLossProbability(p) => {
                write!(f, "loss probability must be in [0, 1], got {p}")
            }
            ScenarioError::SessionEndpointOutOfRange { node, nodes } => {
                write!(f, "session endpoint {node} out of range for {nodes} nodes")
            }
            ScenarioError::NonPositiveInterval { which } => {
                write!(f, "{which} must be positive")
            }
            ScenarioError::InvalidStalenessFactor(k) => {
                write!(
                    f,
                    "neighbor staleness factor must be finite and >= 1, got {k}"
                )
            }
            ScenarioError::InvalidArqBackoff(b) => {
                write!(
                    f,
                    "ARQ backoff base must be finite and non-negative, got {b}"
                )
            }
            ScenarioError::FaultNodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault plan crashes node {node} but only {nodes} nodes exist"
                )
            }
            ScenarioError::InvalidFaultWindow { start, end } => {
                write!(f, "fault window [{start}, {end}] is degenerate")
            }
            ScenarioError::InvalidFaultLoss(v) => {
                write!(f, "link degradation loss value {v} out of range")
            }
            ScenarioError::InvalidBudget { which } => {
                write!(f, "{which} must be positive (omit the field for no limit)")
            }
            ScenarioError::InvalidStreets { h, v } => {
                write!(
                    f,
                    "manhattan grid needs at least one street on each axis, got {h}x{v}"
                )
            }
            ScenarioError::InvalidTurnProbability(p) => {
                write!(f, "manhattan turn probability must be in [0, 1], got {p}")
            }
            ScenarioError::InvalidSpeedClasses(n) => {
                write!(f, "manhattan grid needs at least one speed class, got {n}")
            }
            ScenarioError::InvalidTeamSize(n) => {
                write!(f, "small-teams placement needs team_size >= 1, got {n}")
            }
            ScenarioError::InvalidTeamSpread(v) => {
                write!(
                    f,
                    "small-teams spread must be finite and non-negative, got {v}"
                )
            }
            ScenarioError::InvalidEnergy { which, value } => {
                write!(f, "energy.{which} is out of range, got {value}")
            }
            ScenarioError::InvalidInsiderFraction(v) => {
                write!(f, "insider fraction must be in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which mobility model drives the nodes (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Random waypoint \[17\] at a fixed speed — the paper's default.
    RandomWaypoint,
    /// Reference-point group mobility \[18\] with `groups` groups confined to
    /// `range` metres each (the paper uses 10 groups / 150 m and
    /// 5 groups / 200 m).
    Group {
        /// Number of groups.
        groups: usize,
        /// Movement range of each group in metres.
        range: f64,
    },
    /// No movement (controlled experiments, `v = 0` series).
    Static,
    /// Street-constrained Manhattan-grid mobility: nodes travel along a
    /// lattice of `h_streets` × `v_streets` lanes, turning at intersections
    /// with probability `turn_prob` and moving at one of `speed_classes`
    /// discrete speed tiers (class `c` moves at
    /// `speed * (c + 1) / speed_classes`).
    ManhattanGrid {
        /// Horizontal street count (≥ 1).
        #[serde(default = "default_streets")]
        h_streets: usize,
        /// Vertical street count (≥ 1).
        #[serde(default = "default_streets")]
        v_streets: usize,
        /// Turn probability at intersections, in `[0, 1]`.
        #[serde(default = "default_turn_prob")]
        turn_prob: f64,
        /// Number of discrete speed classes (≥ 1).
        #[serde(default = "default_speed_classes")]
        speed_classes: usize,
    },
}

fn default_streets() -> usize {
    4
}

fn default_turn_prob() -> f64 {
    0.5
}

fn default_speed_classes() -> usize {
    1
}

/// Initial node placement, orthogonal to the mobility model (SNIPPETS.md
/// snippet 3): the placement computes starting positions, the mobility model
/// then moves nodes as usual. Street-constrained models snap placements to
/// the nearest lane point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Uniformly random over the field — the legacy behavior, and the
    /// serde default, so pre-existing scenarios are byte-identical.
    #[default]
    Uniform,
    /// A convoy line: node `i` of `n` starts at
    /// `(field_w * i / n, field_h / 2)`.
    Convoy,
    /// Small teams: consecutive node ids form teams of `team_size`; each
    /// team gets a random center, members scatter within `spread_m` of it.
    SmallTeams {
        /// Nodes per team (≥ 1; the last team may be smaller).
        team_size: usize,
        /// Maximum member offset from the team center, metres.
        spread_m: f64,
    },
}

impl Placement {
    /// Starting positions for `nodes` nodes, or `None` for
    /// [`Placement::Uniform`] (the mobility model's own initial scatter
    /// stands, keeping legacy runs byte-identical).
    ///
    /// Draws come from a dedicated salted RNG in node-id order, so placement
    /// never perturbs the mobility or world draw streams.
    pub fn positions(&self, field: Rect, nodes: usize, seed: u64) -> Option<Vec<Point>> {
        match *self {
            Placement::Uniform => None,
            Placement::Convoy => {
                let y = field.min.y + field.height() / 2.0;
                Some(
                    (0..nodes)
                        .map(|i| {
                            let x =
                                field.min.x + field.width() * i as f64 / nodes.max(1) as f64;
                            Point::new(x, y)
                        })
                        .collect(),
                )
            }
            Placement::SmallTeams { team_size, spread_m } => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x7EA3_5EED);
                let team_size = team_size.max(1);
                let mut center = Point::ORIGIN;
                Some(
                    (0..nodes)
                        .map(|i| {
                            if i % team_size == 0 {
                                center = field.random_point(&mut rng);
                            }
                            let offset = if spread_m > 0.0 {
                                Point::new(
                                    rng.gen_range(-spread_m..spread_m),
                                    rng.gen_range(-spread_m..spread_m),
                                )
                            } else {
                                Point::ORIGIN
                            };
                            field.clamp(center + offset)
                        })
                        .collect(),
                )
            }
        }
    }
}

/// What a compromised relay does with frames it is asked to forward
/// (PAPERS.md: AODVSEC insider-attack taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InsiderMode {
    /// Passive: forward faithfully but log every observed frame for the
    /// §3.3 intersection attacker.
    #[default]
    Log,
    /// Active denial: swallow every forwarded frame.
    Drop,
    /// Active tampering: modify the payload. The next hop's integrity check
    /// rejects the frame, so an honest stack converts each tamper into an
    /// `insider_modified` drop.
    Modify,
    /// Tampering with the integrity check suppressed — the planted defect
    /// for the insider-containment oracle drill. Never generated for honest
    /// fuzz cases.
    #[doc(hidden)]
    ModifyStealth,
}

impl fmt::Display for InsiderMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsiderMode::Log => write!(f, "log"),
            InsiderMode::Drop => write!(f, "drop"),
            InsiderMode::Modify => write!(f, "modify"),
            InsiderMode::ModifyStealth => write!(f, "modify-stealth"),
        }
    }
}

/// Insider-adversary plan: a fraction of nodes are compromised relays.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InsiderConfig {
    /// Fraction of the population that is compromised, in `[0, 1]`.
    /// `0` (the serde default) disables insiders entirely.
    #[serde(default)]
    pub fraction: f64,
    /// Behavior of each compromised relay.
    #[serde(default)]
    pub mode: InsiderMode,
}

impl InsiderConfig {
    /// True when any node is compromised.
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Deterministically selects which nodes are compromised: a seeded
    /// Fisher–Yates shuffle (same LCG family as the adversary crate's
    /// compromise chooser) marks `round(fraction * nodes)` of them, at
    /// least one when active. Pure in `(self, nodes, seed)` so the bench
    /// runner and simcheck agree on the compromised set.
    pub fn choose(&self, nodes: usize, seed: u64) -> Vec<bool> {
        let mut out = vec![false; nodes];
        if !self.is_active() || nodes == 0 {
            return out;
        }
        let count = ((self.fraction * nodes as f64).round() as usize).clamp(1, nodes);
        let mut ids: Vec<usize> = (0..nodes).collect();
        let mut state = seed ^ 0x1D51_DE2A_D5A7_10E5;
        for i in (1..nodes).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        for &id in ids.iter().take(count) {
            out[id] = true;
        }
        out
    }
}

/// How the location service reports a destination's position during a
/// transmission session (Section 5.6 "with/without destination update").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocationPolicy {
    /// Positions are refreshed every `interval_s` seconds — the "with
    /// destination update" condition.
    Periodic {
        /// Refresh interval in seconds.
        interval_s: f64,
    },
    /// Positions are frozen at the value registered when the node last
    /// updated before the session began — the "without destination update"
    /// condition.
    SessionStart,
}

/// 802.11-style MAC and channel model parameters.
///
/// This is a stochastic abstraction of the DCF, not a bit-accurate model:
/// per-frame airtime = `base_overhead_s` (DIFS + PHY preamble + SIFS + ACK)
/// plus a uniform random backoff scaled by local contention, plus the
/// payload serialization time at `bitrate_bps` (see DESIGN.md § 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Radio transmission range in metres (unit-disk model).
    pub range_m: f64,
    /// Channel bitrate in bits/second (802.11b: 2 Mb/s).
    pub bitrate_bps: f64,
    /// Fixed per-frame MAC/PHY overhead in seconds.
    pub base_overhead_s: f64,
    /// Maximum random backoff in seconds (drawn uniformly).
    pub max_backoff_s: f64,
    /// Extra backoff per contending neighbor, in seconds.
    pub contention_per_neighbor_s: f64,
    /// Probability that any individual frame reception fails.
    pub loss_probability: f64,
    /// When true, each node owns a half-duplex transmitter: a frame's
    /// airtime starts only after the node's previous transmission ended,
    /// so bursts (e.g. notify-and-go cover storms) serialize instead of
    /// overlapping. Off by default to match the calibrated figures; turn
    /// on for MAC-fidelity studies.
    pub serialize_tx: bool,
    /// Link-layer ARQ retry budget per unicast frame (802.11 DCF retries
    /// a lost data frame up to `dot11LongRetryLimit` = 4 times). `0`
    /// disables the ARQ entirely — the default, matching the calibrated
    /// figures where a lost unicast is simply dropped.
    #[serde(default)]
    pub arq_max_retries: u32,
    /// Base delay before the first ARQ retransmission; attempt `n` waits
    /// `arq_backoff_base_s * 2^(n-1)` (binary exponential backoff).
    #[serde(default = "default_arq_backoff")]
    pub arq_backoff_base_s: f64,
}

fn default_arq_backoff() -> f64 {
    0.004
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            range_m: 250.0,
            bitrate_bps: 2_000_000.0,
            base_overhead_s: 0.000_8,
            max_backoff_s: 0.001,
            contention_per_neighbor_s: 0.000_02,
            loss_probability: 0.0,
            serialize_tx: false,
            arq_max_retries: 0,
            arq_backoff_base_s: default_arq_backoff(),
        }
    }
}

/// Radio and CPU power draw for the energy accounting (defaults follow
/// the classic WaveLAN measurements used by NS-2-era MANET studies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Power drawn while transmitting, watts.
    pub tx_watts: f64,
    /// Power drawn while receiving, watts.
    pub rx_watts: f64,
    /// CPU power drawn during cryptographic processing, watts.
    pub cpu_watts: f64,
    /// Per-node energy budget in joules. `None` (the serde default) keeps
    /// the legacy unlimited-battery behavior: aggregate joule counters
    /// accrue but nodes never die. `Some(j)` arms the per-node meter —
    /// a node whose meter reaches zero goes down permanently through the
    /// crash machinery (SNIPPETS.md snippet 1, C-MANET reliability
    /// assessment). `Some(0.0)` is the dead-on-arrival degenerate corner.
    #[serde(default)]
    pub initial_j: Option<f64>,
    /// Baseline power drawn by every live node, watts, charged once per
    /// hello interval. Only meaningful with `initial_j` set.
    #[serde(default)]
    pub idle_watts: f64,
    /// Expected fraction of live nodes elected cluster head each hello
    /// round (snippet 1 uses 0.12). Election probability scales with the
    /// node's remaining-energy fraction, so depleted nodes rarely lead.
    /// `0` (the default) disables election. Only meaningful with
    /// `initial_j` set.
    #[serde(default)]
    pub cluster_head_fraction: f64,
    /// Radio-range multiplier a cluster head enjoys for its own
    /// transmissions (≥ 1).
    #[serde(default = "default_head_range_boost")]
    pub cluster_head_range_boost: f64,
    /// Energy-aware forwarding threshold: a node whose remaining-energy
    /// fraction falls below this stops beaconing, withdrawing from relay
    /// duty while still able to originate and receive. In `[0, 1]`;
    /// only meaningful with `initial_j` set.
    #[serde(default = "default_relay_threshold")]
    pub relay_threshold_fraction: f64,
}

fn default_head_range_boost() -> f64 {
    1.5
}

fn default_relay_threshold() -> f64 {
    0.2
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            tx_watts: 1.65,
            rx_watts: 1.40,
            cpu_watts: 1.0,
            initial_j: None,
            idle_watts: 0.0,
            cluster_head_fraction: 0.0,
            cluster_head_range_boost: default_head_range_boost(),
            relay_threshold_fraction: default_relay_threshold(),
        }
    }
}

impl EnergyConfig {
    /// True when the per-node meter (and everything downstream of it:
    /// death-on-empty, cluster heads, beacon withdrawal) is armed.
    pub fn metered(&self) -> bool {
        self.initial_j.is_some()
    }

    /// Largest radio-range multiplier any node can have under this config:
    /// the cluster-head boost when election is armed, else exactly 1. The
    /// radio-range oracle uses this as its bound.
    pub fn max_range_boost(&self) -> f64 {
        if self.metered() && self.cluster_head_fraction > 0.0 {
            self.cluster_head_range_boost
        } else {
            1.0
        }
    }
}

/// Constant-bit-rate traffic description: `pairs` random source–destination
/// pairs each sending a `packet_bytes` packet every `interval_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of S–D pairs (paper: 10).
    pub pairs: usize,
    /// Seconds between consecutive packets of a pair (paper: 2 s).
    pub interval_s: f64,
    /// Application payload size in bytes (paper: 512).
    pub packet_bytes: usize,
    /// Session start time in seconds (lets neighbor tables warm up).
    pub start_s: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            pairs: 10,
            interval_s: 2.0,
            packet_bytes: 512,
            start_s: 1.0,
        }
    }
}

/// Complete description of one simulation scenario. A run is a pure
/// function of `(ScenarioConfig, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Field width in metres.
    pub field_w: f64,
    /// Field height in metres.
    pub field_h: f64,
    /// Number of nodes.
    pub nodes: usize,
    /// Node speed in m/s (fixed, per the paper).
    pub speed: f64,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// MAC and channel parameters.
    pub mac: MacConfig,
    /// CBR traffic.
    pub traffic: TrafficConfig,
    /// Simulated duration in seconds (paper: 100 s).
    pub duration_s: f64,
    /// Crypto latency model.
    pub crypto_cost: CostModel,
    /// Location service freshness policy.
    pub location: LocationPolicy,
    /// Interval of "hello" neighbor beacons in seconds.
    pub hello_interval_s: f64,
    /// Mobility integration step in seconds.
    pub mobility_tick_s: f64,
    /// Pseudonym validity period in seconds (Section 2.2).
    pub pseudonym_lifetime_s: f64,
    /// Radio/CPU power model for energy accounting.
    pub energy: EnergyConfig,
    /// Neighbor-table entries are evicted once they are older than
    /// `neighbor_staleness_factor × hello_interval_s` — i.e. after that
    /// many missed hello beacons. The default of 1 evicts at the first
    /// missed hello, which is exactly the wholesale table rebuild the
    /// simulator always performed.
    #[serde(default = "default_staleness_factor")]
    pub neighbor_staleness_factor: f64,
    /// Deterministic fault schedule; empty by default (no faults).
    #[serde(default)]
    pub faults: FaultPlan,
    /// Per-run guardrail budgets; unlimited by default, so the golden
    /// same-seed traces are unaffected unless a limit is opted into.
    #[serde(default)]
    pub budget: RunBudget,
    /// Initial node placement; uniform by default (the mobility model's
    /// own scatter, byte-identical to pre-placement builds).
    #[serde(default)]
    pub placement: Placement,
    /// Insider-adversary plan; inactive by default.
    #[serde(default)]
    pub insiders: InsiderConfig,
}

fn default_staleness_factor() -> f64 {
    1.0
}

impl Default for ScenarioConfig {
    /// The paper's default setup: 1,000 m x 1,000 m, 200 nodes at 2 m/s
    /// (random waypoint), 250 m range, 512-byte CBR every 2 s over
    /// 10 pairs, 100 s duration.
    fn default() -> Self {
        ScenarioConfig {
            field_w: 1000.0,
            field_h: 1000.0,
            nodes: 200,
            speed: 2.0,
            mobility: MobilityKind::RandomWaypoint,
            mac: MacConfig::default(),
            traffic: TrafficConfig::default(),
            duration_s: 100.0,
            crypto_cost: CostModel::PAPER_1_8GHZ,
            location: LocationPolicy::Periodic { interval_s: 1.0 },
            hello_interval_s: 1.0,
            mobility_tick_s: 0.5,
            pseudonym_lifetime_s: 30.0,
            energy: EnergyConfig::default(),
            neighbor_staleness_factor: default_staleness_factor(),
            faults: FaultPlan::default(),
            budget: RunBudget::default(),
            placement: Placement::default(),
            insiders: InsiderConfig::default(),
        }
    }
}

impl ScenarioConfig {
    /// The network field as a rectangle anchored at the origin.
    pub fn field(&self) -> Rect {
        Rect::with_size(self.field_w, self.field_h)
    }

    /// Node density in nodes per square metre (the paper's `rho`).
    pub fn density(&self) -> f64 {
        self.nodes as f64 / (self.field_w * self.field_h)
    }

    /// Builder-style override of the node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style override of the node speed.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Builder-style override of the field dimensions.
    pub fn with_field(mut self, field_w: f64, field_h: f64) -> Self {
        self.field_w = field_w;
        self.field_h = field_h;
        self
    }

    /// Builder-style override of the node count that also rescales the
    /// field to keep density at the current `nodes / area` value: both
    /// sides grow by `sqrt(nodes / old_nodes)`. This is the shape large
    /// benchmark tiers need — a 100k-node run on the paper's fixed
    /// 1 km² field would mean ~20k neighbors per node, which measures
    /// neighbor-list churn, not event-loop throughput.
    pub fn with_nodes_scaled_field(self, nodes: usize) -> Self {
        let factor = (nodes as f64 / self.nodes.max(1) as f64).sqrt();
        let (w, h) = (self.field_w * factor, self.field_h * factor);
        self.with_nodes(nodes).with_field(w, h)
    }

    /// Builder-style override of the simulated duration.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Builder-style override of the location policy.
    pub fn with_location(mut self, location: LocationPolicy) -> Self {
        self.location = location;
        self
    }

    /// Builder-style override of the mobility model.
    pub fn with_mobility(mut self, mobility: MobilityKind) -> Self {
        self.mobility = mobility;
        self
    }

    /// Builder-style override of the initial placement.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style arming of the per-node energy meter.
    pub fn with_energy_budget(mut self, initial_j: f64) -> Self {
        self.energy.initial_j = Some(initial_j);
        self
    }

    /// Builder-style override of the insider plan.
    pub fn with_insiders(mut self, fraction: f64, mode: InsiderMode) -> Self {
        self.insiders = InsiderConfig { fraction, mode };
        self
    }

    /// Basic sanity checks; call before running.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.nodes == 0 {
            return Err(ScenarioError::NoNodes);
        }
        if self.field_w <= 0.0 || self.field_h <= 0.0 {
            return Err(ScenarioError::EmptyField);
        }
        if self.mac.range_m <= 0.0 {
            return Err(ScenarioError::NonPositiveRange);
        }
        if self.duration_s <= 0.0 {
            return Err(ScenarioError::NonPositiveDuration);
        }
        if self.traffic.pairs * 2 > self.nodes {
            return Err(ScenarioError::TooManyPairs {
                pairs: self.traffic.pairs,
                nodes: self.nodes,
            });
        }
        if !(0.0..=1.0).contains(&self.mac.loss_probability) {
            return Err(ScenarioError::InvalidLossProbability(
                self.mac.loss_probability,
            ));
        }
        if self.traffic.interval_s <= 0.0 {
            return Err(ScenarioError::NonPositiveInterval {
                which: "traffic.interval_s",
            });
        }
        if self.hello_interval_s <= 0.0 {
            return Err(ScenarioError::NonPositiveInterval {
                which: "hello_interval_s",
            });
        }
        if self.mobility_tick_s <= 0.0 {
            return Err(ScenarioError::NonPositiveInterval {
                which: "mobility_tick_s",
            });
        }
        if !self.neighbor_staleness_factor.is_finite() || self.neighbor_staleness_factor < 1.0 {
            return Err(ScenarioError::InvalidStalenessFactor(
                self.neighbor_staleness_factor,
            ));
        }
        if !self.mac.arq_backoff_base_s.is_finite() || self.mac.arq_backoff_base_s < 0.0 {
            return Err(ScenarioError::InvalidArqBackoff(
                self.mac.arq_backoff_base_s,
            ));
        }
        if let MobilityKind::ManhattanGrid {
            h_streets,
            v_streets,
            turn_prob,
            speed_classes,
        } = self.mobility
        {
            if h_streets == 0 || v_streets == 0 {
                return Err(ScenarioError::InvalidStreets {
                    h: h_streets,
                    v: v_streets,
                });
            }
            if !turn_prob.is_finite() || !(0.0..=1.0).contains(&turn_prob) {
                return Err(ScenarioError::InvalidTurnProbability(turn_prob));
            }
            if speed_classes == 0 {
                return Err(ScenarioError::InvalidSpeedClasses(speed_classes));
            }
        }
        if let Placement::SmallTeams { team_size, spread_m } = self.placement {
            if team_size == 0 {
                return Err(ScenarioError::InvalidTeamSize(team_size));
            }
            if !spread_m.is_finite() || spread_m < 0.0 {
                return Err(ScenarioError::InvalidTeamSpread(spread_m));
            }
        }
        if let Some(initial) = self.energy.initial_j {
            if !initial.is_finite() || initial < 0.0 {
                return Err(ScenarioError::InvalidEnergy {
                    which: "initial_j",
                    value: initial,
                });
            }
        }
        if !self.energy.idle_watts.is_finite() || self.energy.idle_watts < 0.0 {
            return Err(ScenarioError::InvalidEnergy {
                which: "idle_watts",
                value: self.energy.idle_watts,
            });
        }
        if !self.energy.cluster_head_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.energy.cluster_head_fraction)
        {
            return Err(ScenarioError::InvalidEnergy {
                which: "cluster_head_fraction",
                value: self.energy.cluster_head_fraction,
            });
        }
        if !self.energy.cluster_head_range_boost.is_finite()
            || self.energy.cluster_head_range_boost < 1.0
        {
            return Err(ScenarioError::InvalidEnergy {
                which: "cluster_head_range_boost",
                value: self.energy.cluster_head_range_boost,
            });
        }
        if !self.energy.relay_threshold_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.energy.relay_threshold_fraction)
        {
            return Err(ScenarioError::InvalidEnergy {
                which: "relay_threshold_fraction",
                value: self.energy.relay_threshold_fraction,
            });
        }
        if !self.insiders.fraction.is_finite() || !(0.0..=1.0).contains(&self.insiders.fraction) {
            return Err(ScenarioError::InvalidInsiderFraction(self.insiders.fraction));
        }
        self.faults.validate(self.nodes)?;
        self.budget.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5_2() {
        let c = ScenarioConfig::default();
        assert_eq!(c.field_w, 1000.0);
        assert_eq!(c.field_h, 1000.0);
        assert_eq!(c.nodes, 200);
        assert_eq!(c.speed, 2.0);
        assert_eq!(c.mac.range_m, 250.0);
        assert_eq!(c.traffic.packet_bytes, 512);
        assert_eq!(c.traffic.interval_s, 2.0);
        assert_eq!(c.traffic.pairs, 10);
        assert_eq!(c.duration_s, 100.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn density_is_nodes_per_square_metre() {
        let c = ScenarioConfig::default();
        assert!((c.density() - 200.0 / 1_000_000.0).abs() < 1e-15);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert_eq!(
            ScenarioConfig::default().with_nodes(0).validate(),
            Err(ScenarioError::NoNodes)
        );
        assert_eq!(
            ScenarioConfig::default()
                .with_nodes(5) // 10 pairs need 20 nodes
                .validate(),
            Err(ScenarioError::TooManyPairs {
                pairs: 10,
                nodes: 5
            })
        );
        let mut c = ScenarioConfig::default();
        c.mac.loss_probability = 1.5;
        assert_eq!(
            c.validate(),
            Err(ScenarioError::InvalidLossProbability(1.5))
        );
        let c = ScenarioConfig {
            duration_s: 0.0,
            ..ScenarioConfig::default()
        };
        assert_eq!(c.validate(), Err(ScenarioError::NonPositiveDuration));
        let mut c = ScenarioConfig::default();
        c.traffic.interval_s = 0.0;
        assert_eq!(
            c.validate(),
            Err(ScenarioError::NonPositiveInterval {
                which: "traffic.interval_s"
            })
        );
        let c = ScenarioConfig {
            hello_interval_s: -1.0,
            ..ScenarioConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ScenarioError::NonPositiveInterval {
                which: "hello_interval_s"
            })
        );
        let c = ScenarioConfig {
            mobility_tick_s: 0.0,
            ..ScenarioConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ScenarioError::NonPositiveInterval {
                which: "mobility_tick_s"
            })
        );
        let c = ScenarioConfig {
            neighbor_staleness_factor: 0.5,
            ..ScenarioConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ScenarioError::InvalidStalenessFactor(0.5))
        );
        let mut c = ScenarioConfig::default();
        c.mac.arq_backoff_base_s = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidArqBackoff(_))
        ));
        let mut c = ScenarioConfig::default();
        c.faults.crashes.push(crate::fault::NodeCrash {
            node: 500,
            at_s: 1.0,
            recover_s: None,
        });
        assert_eq!(
            c.validate(),
            Err(ScenarioError::FaultNodeOutOfRange {
                node: 500,
                nodes: 200
            })
        );
    }

    #[test]
    fn scenario_error_messages_are_stable() {
        assert_eq!(
            ScenarioError::TooManyPairs {
                pairs: 10,
                nodes: 5
            }
            .to_string(),
            "10 S-D pairs need 20 distinct nodes but only 5 exist"
        );
        assert_eq!(
            ScenarioError::NoNodes.to_string(),
            "scenario needs at least one node"
        );
        assert_eq!(
            ScenarioError::NonPositiveInterval {
                which: "traffic.interval_s"
            }
            .to_string(),
            "traffic.interval_s must be positive"
        );
        assert_eq!(
            ScenarioError::InvalidStalenessFactor(0.5).to_string(),
            "neighbor staleness factor must be finite and >= 1, got 0.5"
        );
        assert_eq!(
            ScenarioError::FaultNodeOutOfRange { node: 7, nodes: 5 }.to_string(),
            "fault plan crashes node 7 but only 5 nodes exist"
        );
    }

    #[test]
    fn default_faults_and_arq_are_inert() {
        let c = ScenarioConfig::default();
        assert!(c.faults.is_empty());
        assert_eq!(c.mac.arq_max_retries, 0);
        assert_eq!(c.neighbor_staleness_factor, 1.0);
        assert!(c.budget.is_unlimited());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_scenario_knobs_are_inert() {
        let c = ScenarioConfig::default();
        assert_eq!(c.placement, Placement::Uniform);
        assert!(!c.insiders.is_active());
        assert!(!c.energy.metered());
        assert_eq!(c.energy.max_range_boost(), 1.0);
        assert_eq!(c.energy.idle_watts, 0.0);
        assert_eq!(c.energy.cluster_head_fraction, 0.0);
    }

    #[test]
    fn validate_rejects_bad_scenario_knobs() {
        let c = ScenarioConfig::default().with_mobility(MobilityKind::ManhattanGrid {
            h_streets: 0,
            v_streets: 3,
            turn_prob: 0.5,
            speed_classes: 1,
        });
        assert_eq!(c.validate(), Err(ScenarioError::InvalidStreets { h: 0, v: 3 }));
        let c = ScenarioConfig::default().with_mobility(MobilityKind::ManhattanGrid {
            h_streets: 2,
            v_streets: 2,
            turn_prob: 1.5,
            speed_classes: 1,
        });
        assert_eq!(c.validate(), Err(ScenarioError::InvalidTurnProbability(1.5)));
        let c = ScenarioConfig::default().with_mobility(MobilityKind::ManhattanGrid {
            h_streets: 2,
            v_streets: 2,
            turn_prob: 0.5,
            speed_classes: 0,
        });
        assert_eq!(c.validate(), Err(ScenarioError::InvalidSpeedClasses(0)));
        let c = ScenarioConfig::default().with_placement(Placement::SmallTeams {
            team_size: 0,
            spread_m: 50.0,
        });
        assert_eq!(c.validate(), Err(ScenarioError::InvalidTeamSize(0)));
        let c = ScenarioConfig::default().with_placement(Placement::SmallTeams {
            team_size: 3,
            spread_m: -1.0,
        });
        assert_eq!(c.validate(), Err(ScenarioError::InvalidTeamSpread(-1.0)));
        let c = ScenarioConfig::default().with_energy_budget(f64::NAN);
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidEnergy {
                which: "initial_j",
                ..
            })
        ));
        let mut c = ScenarioConfig::default().with_energy_budget(50.0);
        c.energy.cluster_head_fraction = 1.2;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidEnergy {
                which: "cluster_head_fraction",
                ..
            })
        ));
        let mut c = ScenarioConfig::default();
        c.energy.cluster_head_range_boost = 0.5;
        assert!(matches!(
            c.validate(),
            Err(ScenarioError::InvalidEnergy {
                which: "cluster_head_range_boost",
                ..
            })
        ));
        let c = ScenarioConfig::default().with_insiders(2.0, InsiderMode::Drop);
        assert_eq!(c.validate(), Err(ScenarioError::InvalidInsiderFraction(2.0)));
        // Zero-energy start is legal: the dead-on-arrival corner.
        assert!(ScenarioConfig::default()
            .with_energy_budget(0.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn new_scenario_error_messages_are_stable() {
        assert_eq!(
            ScenarioError::InvalidStreets { h: 0, v: 3 }.to_string(),
            "manhattan grid needs at least one street on each axis, got 0x3"
        );
        assert_eq!(
            ScenarioError::InvalidTurnProbability(1.5).to_string(),
            "manhattan turn probability must be in [0, 1], got 1.5"
        );
        assert_eq!(
            ScenarioError::InvalidSpeedClasses(0).to_string(),
            "manhattan grid needs at least one speed class, got 0"
        );
        assert_eq!(
            ScenarioError::InvalidTeamSize(0).to_string(),
            "small-teams placement needs team_size >= 1, got 0"
        );
        assert_eq!(
            ScenarioError::InvalidTeamSpread(-1.0).to_string(),
            "small-teams spread must be finite and non-negative, got -1"
        );
        assert_eq!(
            ScenarioError::InvalidEnergy {
                which: "initial_j",
                value: -2.0
            }
            .to_string(),
            "energy.initial_j is out of range, got -2"
        );
        assert_eq!(
            ScenarioError::InvalidInsiderFraction(2.0).to_string(),
            "insider fraction must be in [0, 1], got 2"
        );
    }

    #[test]
    fn convoy_placement_is_a_centre_line() {
        let field = Rect::with_size(1000.0, 800.0);
        let pos = Placement::Convoy.positions(field, 4, 99).unwrap();
        assert_eq!(pos.len(), 4);
        for (i, p) in pos.iter().enumerate() {
            assert_eq!(p.y, 400.0);
            assert_eq!(p.x, 1000.0 * i as f64 / 4.0);
        }
        // Placement draws no RNG for convoys, so the seed is irrelevant.
        assert_eq!(pos, Placement::Convoy.positions(field, 4, 7).unwrap());
    }

    #[test]
    fn small_teams_cluster_within_spread() {
        let field = Rect::with_size(1000.0, 1000.0);
        let placement = Placement::SmallTeams {
            team_size: 3,
            spread_m: 50.0,
        };
        let pos = placement.positions(field, 9, 5).unwrap();
        assert_eq!(pos.len(), 9);
        for team in pos.chunks(3) {
            for pair in team.windows(2) {
                // Members sit within a 2*spread*sqrt(2) diameter box
                // (before clamping, which only shrinks distances).
                assert!(pair[0].distance(pair[1]) <= 2.0 * 50.0 * std::f64::consts::SQRT_2 + 1e-9);
            }
        }
        assert_eq!(pos, placement.positions(field, 9, 5).unwrap());
        assert_ne!(pos, placement.positions(field, 9, 6).unwrap());
        // One-node teams with zero spread: every node exactly at its own
        // team center — the degenerate corner must not panic.
        let degenerate = Placement::SmallTeams {
            team_size: 1,
            spread_m: 0.0,
        };
        assert_eq!(degenerate.positions(field, 5, 1).unwrap().len(), 5);
        assert!(Placement::Uniform.positions(field, 5, 1).is_none());
    }

    #[test]
    fn insider_choose_is_deterministic_and_sized() {
        let plan = InsiderConfig {
            fraction: 0.25,
            mode: InsiderMode::Drop,
        };
        let a = plan.choose(40, 9);
        let b = plan.choose(40, 9);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&c| c).count(), 10);
        assert_ne!(a, plan.choose(40, 10));
        // Active plans compromise at least one node even when rounding
        // would say zero; inactive plans compromise none.
        let tiny = InsiderConfig {
            fraction: 0.001,
            mode: InsiderMode::Log,
        };
        assert_eq!(tiny.choose(10, 3).iter().filter(|&&c| c).count(), 1);
        let off = InsiderConfig::default();
        assert!(off.choose(10, 3).iter().all(|&c| !c));
        let all = InsiderConfig {
            fraction: 1.0,
            mode: InsiderMode::ModifyStealth,
        };
        assert!(all.choose(10, 3).iter().all(|&c| c));
    }

    #[test]
    fn validate_covers_the_budget() {
        let mut c = ScenarioConfig::default();
        c.budget.max_events = Some(0);
        assert_eq!(
            c.validate(),
            Err(ScenarioError::InvalidBudget {
                which: "budget.max_events"
            })
        );
        assert_eq!(
            ScenarioError::InvalidBudget {
                which: "budget.max_events"
            }
            .to_string(),
            "budget.max_events must be positive (omit the field for no limit)"
        );
        c.budget.max_events = Some(1_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_override_fields() {
        let c = ScenarioConfig::default()
            .with_nodes(100)
            .with_speed(8.0)
            .with_duration(50.0)
            .with_location(LocationPolicy::SessionStart)
            .with_mobility(MobilityKind::Static)
            .with_field(2000.0, 1500.0);
        assert_eq!(c.nodes, 100);
        assert_eq!(c.speed, 8.0);
        assert_eq!(c.duration_s, 50.0);
        assert_eq!(c.location, LocationPolicy::SessionStart);
        assert_eq!(c.mobility, MobilityKind::Static);
        assert_eq!(c.field_w, 2000.0);
        assert_eq!(c.field_h, 1500.0);
    }

    #[test]
    fn scaled_field_preserves_density() {
        let base = ScenarioConfig::default();
        let scaled = base.clone().with_nodes_scaled_field(20_000);
        assert_eq!(scaled.nodes, 20_000);
        // 100x the population → 10x each side, same nodes per m².
        assert!((scaled.field_w - 10_000.0).abs() < 1e-9);
        assert!((scaled.field_h - 10_000.0).abs() < 1e-9);
        assert!((scaled.density() - base.density()).abs() < 1e-12);
        assert!(scaled.validate().is_ok());
    }
}

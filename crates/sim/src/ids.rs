//! Newtype identifiers shared across the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth node index (never visible to other nodes on the wire —
/// the wire carries pseudonyms).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Application packet index, assigned by the traffic generator and used
/// only for instrumentation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// S–D pair index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Opaque timer token; the owning protocol defines its meaning.
pub type TimerToken = u64;

//! Run guardrails: per-run budgets and the livelock watchdog.
//!
//! Long Monte-Carlo campaigns die in ugly ways — a protocol bug that
//! reschedules a zero-delay timer forever, a pathological scenario that
//! generates events faster than the clock advances, a single run that
//! eats the whole wall-clock budget of a CI job. [`RunBudget`] bounds a
//! run along four independent axes and [`RunAbort`] reports which bound
//! tripped, as a typed error rather than a hung process.
//!
//! All limits default to `None` (unlimited): a default-constructed
//! budget is inert, costs one branch per dispatched event, and leaves
//! same-seed traces byte-identical to builds that predate it. The
//! event, sim-time, and per-instant limits are deterministic — they
//! depend only on `(ScenarioConfig, seed)` — while the wall-clock
//! deadline is inherently machine-dependent and meant for CI jobs, not
//! reproducibility contracts (see DESIGN.md § 11).

use crate::config::ScenarioError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-run resource budgets; every limit is optional and `None` means
/// unlimited. Part of [`crate::ScenarioConfig`] (serde-defaulted, so
/// existing scenario files parse unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunBudget {
    /// Abort after this many dispatched events (exactly `max_events`
    /// events run; the abort fires instead of event `max_events + 1`).
    #[serde(default)]
    pub max_events: Option<u64>,
    /// Abort before dispatching any event whose timestamp exceeds this
    /// simulated time (seconds). The clock never passes the cap.
    #[serde(default)]
    pub max_sim_seconds: Option<f64>,
    /// Abort once the run has consumed this much wall-clock time
    /// (seconds), checked every [`WALL_CHECK_INTERVAL`] events.
    /// Machine-dependent by construction — never set it in scenarios
    /// whose traces are compared across hosts.
    #[serde(default)]
    pub max_wall_seconds: Option<f64>,
    /// Livelock watchdog: abort when more than this many consecutive
    /// events are dispatched at one simulated instant without the clock
    /// advancing (e.g. a timer that reschedules itself with zero delay).
    #[serde(default)]
    pub max_events_per_instant: Option<u64>,
}

/// How many events elapse between wall-clock deadline checks; keeps the
/// (syscall-backed) `Instant::now` off the per-event hot path.
pub const WALL_CHECK_INTERVAL: u64 = 128;

impl RunBudget {
    /// True when no limit is set — the zero-cost default.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none()
            && self.max_sim_seconds.is_none()
            && self.max_wall_seconds.is_none()
            && self.max_events_per_instant.is_none()
    }

    /// Checks that every configured limit is usable: counts must be
    /// nonzero, durations positive and finite. (A zero or negative
    /// budget is always a spec mistake — omit the field for "no
    /// limit".)
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.max_events == Some(0) {
            return Err(ScenarioError::InvalidBudget {
                which: "budget.max_events",
            });
        }
        if let Some(s) = self.max_sim_seconds {
            if !s.is_finite() || s <= 0.0 {
                return Err(ScenarioError::InvalidBudget {
                    which: "budget.max_sim_seconds",
                });
            }
        }
        if let Some(s) = self.max_wall_seconds {
            if !s.is_finite() || s <= 0.0 {
                return Err(ScenarioError::InvalidBudget {
                    which: "budget.max_wall_seconds",
                });
            }
        }
        if self.max_events_per_instant == Some(0) {
            return Err(ScenarioError::InvalidBudget {
                which: "budget.max_events_per_instant",
            });
        }
        Ok(())
    }

    /// The per-field minimum of this budget and `cap`: every limit set
    /// in either applies, and where both set one the tighter wins. This
    /// is how a multi-tenant host (the `alertd` daemon) enforces a
    /// ceiling over whatever budget a submitted scenario asked for —
    /// admission control at the budget layer rather than trusting the
    /// client.
    pub fn tightened(&self, cap: &RunBudget) -> RunBudget {
        fn min_opt<T: PartialOrd + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(if x < y { x } else { y }),
                (x, None) => x,
                (None, y) => y,
            }
        }
        RunBudget {
            max_events: min_opt(self.max_events, cap.max_events),
            max_sim_seconds: min_opt(self.max_sim_seconds, cap.max_sim_seconds),
            max_wall_seconds: min_opt(self.max_wall_seconds, cap.max_wall_seconds),
            max_events_per_instant: min_opt(
                self.max_events_per_instant,
                cap.max_events_per_instant,
            ),
        }
    }
}

/// Why a run was aborted by its [`RunBudget`]. Returned by
/// [`crate::World::try_run`] / [`crate::World::try_run_until`]; also
/// surfaced in traces as `TraceEvent::RunAborted` and in the registry
/// as the `run.aborts` counter.
#[derive(Debug, Clone, PartialEq)]
pub enum RunAbort {
    /// [`RunBudget::max_events`] exhausted.
    EventBudgetExhausted {
        /// The configured event budget.
        budget: u64,
        /// Simulated time at the abort.
        time: f64,
    },
    /// The next event lies beyond [`RunBudget::max_sim_seconds`].
    SimTimeBudgetExhausted {
        /// The configured simulated-seconds budget.
        budget_s: f64,
        /// Simulated time at the abort (the clock never passed the cap).
        time: f64,
    },
    /// The wall-clock deadline of [`RunBudget::max_wall_seconds`] passed.
    WallClockExceeded {
        /// The configured wall-clock budget in seconds.
        budget_s: f64,
        /// Simulated time at the abort.
        time: f64,
    },
    /// The livelock watchdog fired: the clock stopped advancing while
    /// events kept dispatching at one instant.
    Livelock {
        /// Consecutive events observed at the stuck instant.
        events_at_instant: u64,
        /// The simulated time the run is stuck at.
        time: f64,
    },
}

impl RunAbort {
    /// Short machine-readable code for the abort class — the `reason`
    /// field of `TraceEvent::RunAborted` and of failure reports.
    pub fn reason(&self) -> &'static str {
        match self {
            RunAbort::EventBudgetExhausted { .. } => "event_budget",
            RunAbort::SimTimeBudgetExhausted { .. } => "sim_time_budget",
            RunAbort::WallClockExceeded { .. } => "wall_clock",
            RunAbort::Livelock { .. } => "livelock",
        }
    }

    /// Simulated time at which the run aborted.
    pub fn time(&self) -> f64 {
        match self {
            RunAbort::EventBudgetExhausted { time, .. }
            | RunAbort::SimTimeBudgetExhausted { time, .. }
            | RunAbort::WallClockExceeded { time, .. }
            | RunAbort::Livelock { time, .. } => *time,
        }
    }
}

impl fmt::Display for RunAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunAbort::EventBudgetExhausted { budget, time } => {
                write!(f, "event budget of {budget} exhausted at t={time:.3}s")
            }
            RunAbort::SimTimeBudgetExhausted { budget_s, time } => write!(
                f,
                "simulated-time budget of {budget_s}s exhausted at t={time:.3}s"
            ),
            RunAbort::WallClockExceeded { budget_s, time } => write!(
                f,
                "wall-clock deadline of {budget_s}s exceeded at t={time:.3}s"
            ),
            RunAbort::Livelock {
                events_at_instant,
                time,
            } => write!(
                f,
                "livelock: {events_at_instant} consecutive events at t={time:.3}s \
                 without the clock advancing"
            ),
        }
    }
}

impl std::error::Error for RunAbort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_valid() {
        let b = RunBudget::default();
        assert!(b.is_unlimited());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn any_limit_makes_it_limited() {
        for b in [
            RunBudget {
                max_events: Some(1),
                ..RunBudget::default()
            },
            RunBudget {
                max_sim_seconds: Some(1.0),
                ..RunBudget::default()
            },
            RunBudget {
                max_wall_seconds: Some(1.0),
                ..RunBudget::default()
            },
            RunBudget {
                max_events_per_instant: Some(1),
                ..RunBudget::default()
            },
        ] {
            assert!(!b.is_unlimited());
            assert!(b.validate().is_ok());
        }
    }

    #[test]
    fn degenerate_limits_are_rejected() {
        let cases = [
            (
                RunBudget {
                    max_events: Some(0),
                    ..RunBudget::default()
                },
                "budget.max_events",
            ),
            (
                RunBudget {
                    max_sim_seconds: Some(0.0),
                    ..RunBudget::default()
                },
                "budget.max_sim_seconds",
            ),
            (
                RunBudget {
                    max_sim_seconds: Some(f64::NAN),
                    ..RunBudget::default()
                },
                "budget.max_sim_seconds",
            ),
            (
                RunBudget {
                    max_wall_seconds: Some(-1.0),
                    ..RunBudget::default()
                },
                "budget.max_wall_seconds",
            ),
            (
                RunBudget {
                    max_events_per_instant: Some(0),
                    ..RunBudget::default()
                },
                "budget.max_events_per_instant",
            ),
        ];
        for (b, which) in cases {
            assert_eq!(
                b.validate(),
                Err(ScenarioError::InvalidBudget { which }),
                "{b:?}"
            );
        }
    }

    #[test]
    fn abort_reasons_and_messages_are_stable() {
        let a = RunAbort::EventBudgetExhausted {
            budget: 500,
            time: 1.25,
        };
        assert_eq!(a.reason(), "event_budget");
        assert_eq!(a.time(), 1.25);
        assert_eq!(a.to_string(), "event budget of 500 exhausted at t=1.250s");
        let l = RunAbort::Livelock {
            events_at_instant: 64,
            time: 2.0,
        };
        assert_eq!(l.reason(), "livelock");
        assert!(l.to_string().contains("livelock: 64 consecutive events"));
        assert_eq!(
            RunAbort::SimTimeBudgetExhausted {
                budget_s: 3.0,
                time: 3.0
            }
            .reason(),
            "sim_time_budget"
        );
        assert_eq!(
            RunAbort::WallClockExceeded {
                budget_s: 1.0,
                time: 0.5
            }
            .reason(),
            "wall_clock"
        );
    }

    #[test]
    fn tightened_takes_the_per_field_minimum() {
        let spec = RunBudget {
            max_events: Some(1_000_000),
            max_sim_seconds: None,
            max_wall_seconds: Some(120.0),
            max_events_per_instant: Some(64),
        };
        let cap = RunBudget {
            max_events: Some(500),
            max_sim_seconds: Some(30.0),
            max_wall_seconds: Some(300.0),
            max_events_per_instant: None,
        };
        let t = spec.tightened(&cap);
        assert_eq!(t.max_events, Some(500), "cap wins when tighter");
        assert_eq!(t.max_sim_seconds, Some(30.0), "cap fills an unset field");
        assert_eq!(t.max_wall_seconds, Some(120.0), "spec wins when tighter");
        assert_eq!(t.max_events_per_instant, Some(64), "spec-only field kept");
        // Tightening by an unlimited cap is the identity.
        assert_eq!(spec.tightened(&RunBudget::default()), spec);
        // An unlimited spec inherits the cap wholesale.
        assert_eq!(RunBudget::default().tightened(&cap), cap);
    }
}

//! The simulation world: ties the event queue, mobility, channel model,
//! node registry, location service, traffic generator and metrics together
//! around a pluggable routing protocol.

use crate::api::{Api, DataRequest, Frame, FrameKind, ProtocolNode, TrafficClass};
use crate::config::{LocationPolicy, MobilityKind, ScenarioConfig, ScenarioError};
use crate::engine::EventQueue;
use crate::guard::{RunAbort, RunBudget, WALL_CHECK_INTERVAL};
use crate::ids::{NodeId, PacketId, SessionId, TimerToken};
use crate::location::LocationService;
use crate::metrics::Metrics;
use alert_crypto::{KeyPair, MacAddress, Pseudonym, PseudonymGenerator, PublicKey};
use alert_geom::{Point, Rect, SpatialGrid};
use alert_mobility::{
    GroupMobility, GroupMobilityConfig, ManhattanConfig, ManhattanGrid, Mobility, RandomWaypoint,
    RandomWaypointConfig, StaticField,
};
use alert_trace::{
    CounterHandle, DropReason, HistogramHandle, MetricsTimeseries, Registry, RegistrySnapshot,
    RunProfile, TickKind, TraceEvent, TraceSink, Tracer, TrafficKind, TxKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Wire size of a hello beacon (pseudonym + position + public key + MAC
/// framing), bytes.
const HELLO_BYTES: usize = 48;

/// One observed wireless transmission — what a physical-layer eavesdropper
/// can capture: time, transmitter position, frame size, and (ground truth
/// for the experimenter) the resolved receiver and packet id.
#[derive(Debug, Clone, Copy)]
pub struct TxEvent {
    /// Transmission start time.
    pub time: f64,
    /// Transmitting node (ground truth; an attacker sees only a position).
    pub sender: NodeId,
    /// Transmitter position.
    pub sender_pos: Point,
    /// Resolved unicast receiver, if any (ground truth).
    pub receiver: Option<NodeId>,
    /// Frame size in bytes (visible on air).
    pub bytes: usize,
    /// Traffic class (ground truth; on air everything is ciphertext).
    pub class: TrafficClass,
    /// Application packet id (ground truth).
    pub packet: Option<PacketId>,
}

/// A passive observer of all channel activity; the adversary analyzers
/// implement this.
pub trait Observer {
    /// Called for every transmission, at send time.
    fn on_transmission(&mut self, ev: &TxEvent);
    /// Called when the true destination receives an application packet.
    fn on_delivery(&mut self, _time: f64, _node: NodeId, _packet: PacketId) {}
}

/// A frame-audit hook ([`World::set_frame_audit`]): called once per frame
/// put on the air with `(send time, ground-truth sender, on-wire sender
/// pseudonym, message)`, before receiver resolution — so failed unicasts
/// and ARQ retransmissions are audited too. Unlike [`Observer`], the hook
/// sees the typed protocol message, which is what invariant checkers need
/// to audit on-wire contents (e.g. "no real `NodeId` ever leaves a node").
pub type FrameAudit<M> = Box<dyn FnMut(f64, NodeId, Pseudonym, &M)>;

/// Internal event type.
#[derive(Debug)]
pub(crate) enum Event<M> {
    Deliver {
        to: NodeId,
        frame: Frame<M>,
    },
    Timer {
        node: NodeId,
        token: TimerToken,
        /// The owning node's incarnation when the timer was set; a timer
        /// from a pre-crash incarnation is swallowed.
        epoch: u32,
    },
    AppSend {
        session: SessionId,
        seq: u32,
    },
    MobilityTick,
    HelloTick,
    LocationTick,
    /// Fault plan: crash one node.
    NodeDown {
        node: NodeId,
    },
    /// Fault plan: recover one node.
    NodeUp {
        node: NodeId,
    },
    /// Fault plan: start regional outage `index` (victims resolved from
    /// the geometry at dispatch time).
    RegionOutage {
        index: usize,
    },
    /// Fault plan: end regional outage `index`.
    RegionRecover {
        index: usize,
    },
    /// Energy model: a node's battery hit zero; it goes down permanently
    /// (no matching recovery is ever scheduled).
    EnergyDeplete {
        node: NodeId,
    },
    /// Link-layer ARQ retransmission of a failed unicast frame.
    Retry {
        from: NodeId,
        to: Pseudonym,
        msg: M,
        bytes: usize,
        class: TrafficClass,
        packet: Option<PacketId>,
        attempt: u32,
    },
}

impl<M> Event<M> {
    /// Stable class name used as the per-callback profiling key.
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            Event::Deliver { .. } => "deliver",
            Event::Timer { .. } => "timer",
            Event::AppSend { .. } => "app_send",
            Event::MobilityTick => "mobility_tick",
            Event::HelloTick => "hello_tick",
            Event::LocationTick => "location_tick",
            Event::NodeDown { .. } => "node_down",
            Event::NodeUp { .. } => "node_up",
            Event::RegionOutage { .. } => "region_outage",
            Event::RegionRecover { .. } => "region_recover",
            Event::EnergyDeplete { .. } => "energy_deplete",
            Event::Retry { .. } => "retry",
        }
    }
}

/// The runtime's counter/histogram registry plus pre-resolved handles, so
/// hot-path updates are plain array increments.
pub(crate) struct SimStats {
    pub(crate) registry: Registry,
    pub(crate) tx_frames: CounterHandle,
    pub(crate) tx_unicast: CounterHandle,
    pub(crate) tx_broadcast: CounterHandle,
    pub(crate) tx_bytes: CounterHandle,
    pub(crate) rx_frames: CounterHandle,
    pub(crate) drops: CounterHandle,
    pub(crate) timer_fired: CounterHandle,
    pub(crate) app_packets: CounterHandle,
    pub(crate) delivered: CounterHandle,
    pub(crate) pseudonym_rotations: CounterHandle,
    pub(crate) location_lookups: CounterHandle,
    pub(crate) zone_partitions: CounterHandle,
    pub(crate) random_forwarders: CounterHandle,
    pub(crate) crypto_ops: CounterHandle,
    pub(crate) node_downs: CounterHandle,
    pub(crate) node_ups: CounterHandle,
    pub(crate) run_aborts: CounterHandle,
    pub(crate) energy_deaths: CounterHandle,
    pub(crate) cluster_heads: CounterHandle,
    pub(crate) latency_s: HistogramHandle,
    pub(crate) hops: HistogramHandle,
    pub(crate) mac_backoff_s: HistogramHandle,
    pub(crate) link_retries: HistogramHandle,
}

impl SimStats {
    fn new() -> Self {
        let mut registry = Registry::new();
        let tx_frames = registry.counter("tx.frames");
        let tx_unicast = registry.counter("tx.unicast");
        let tx_broadcast = registry.counter("tx.broadcast");
        let tx_bytes = registry.counter("tx.bytes");
        let rx_frames = registry.counter("rx.frames");
        let drops = registry.counter("drops");
        let timer_fired = registry.counter("timer.fired");
        let app_packets = registry.counter("app.packets");
        let delivered = registry.counter("delivered");
        let pseudonym_rotations = registry.counter("pseudonym.rotations");
        let location_lookups = registry.counter("location.lookups");
        let zone_partitions = registry.counter("zone.partitions");
        let random_forwarders = registry.counter("random.forwarders");
        let crypto_ops = registry.counter("crypto.ops");
        let node_downs = registry.counter("node.downs");
        let node_ups = registry.counter("node.ups");
        let run_aborts = registry.counter("run.aborts");
        let energy_deaths = registry.counter("energy.deaths");
        let cluster_heads = registry.counter("energy.cluster_heads");
        let latency_s = registry.histogram("latency_s");
        let hops = registry.histogram("hops");
        let mac_backoff_s = registry.histogram("mac_backoff_s");
        let link_retries = registry.histogram("link.retries");
        SimStats {
            registry,
            tx_frames,
            tx_unicast,
            tx_broadcast,
            tx_bytes,
            rx_frames,
            drops,
            timer_fired,
            app_packets,
            delivered,
            pseudonym_rotations,
            location_lookups,
            zone_partitions,
            random_forwarders,
            crypto_ops,
            node_downs,
            node_ups,
            run_aborts,
            energy_deaths,
            cluster_heads,
            latency_s,
            hops,
            mac_backoff_s,
            link_retries,
        }
    }
}

/// Maps the runtime's traffic class onto the trace vocabulary.
fn class_kind(class: TrafficClass) -> TrafficKind {
    match class {
        TrafficClass::Data => TrafficKind::Data,
        TrafficClass::Control => TrafficKind::Control,
        TrafficClass::ControlHop => TrafficKind::ControlHop,
        TrafficClass::Cover => TrafficKind::Cover,
    }
}

pub(crate) enum TxDest {
    Unicast(Pseudonym),
    Broadcast,
}

/// Per-node bookkeeping owned by the runtime.
pub(crate) struct NodeInfo {
    pub(crate) keypair: KeyPair,
    pub(crate) pseudonyms: PseudonymHistory,
    pub(crate) neighbors: Vec<crate::api::NeighborEntry>,
}

/// A node's current pseudonym plus one predecessor, kept so in-flight
/// frames addressed just before a rotation still resolve (grace window).
pub(crate) struct PseudonymHistory {
    generator: PseudonymGenerator,
    previous: Option<Pseudonym>,
}

impl PseudonymHistory {
    fn new(generator: PseudonymGenerator) -> Self {
        PseudonymHistory {
            generator,
            previous: None,
        }
    }

    pub(crate) fn current(&self) -> Pseudonym {
        self.generator.peek()
    }

    /// Rotates if expired; returns `Some(new)` when a rotation happened.
    fn maybe_rotate(&mut self, now: f64, rng: &mut StdRng) -> Option<Pseudonym> {
        let old = self.generator.peek();
        let (p, rotated) = self.generator.current(now, rng);
        if rotated {
            self.previous = Some(old);
            Some(p)
        } else {
            None
        }
    }
}

/// One CBR session (an S–D pair).
#[derive(Debug, Clone, Copy)]
pub struct Session {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// Everything in the world except the protocol instances (split so a
/// protocol callback can borrow its own state and the world mutably at the
/// same time).
pub(crate) struct WorldCore<M> {
    pub(crate) cfg: ScenarioConfig,
    pub(crate) queue: EventQueue<Event<M>>,
    pub(crate) mobility: Box<dyn Mobility>,
    pub(crate) grid: SpatialGrid,
    pub(crate) nodes: Vec<NodeInfo>,
    pub(crate) pseudonym_map: HashMap<Pseudonym, NodeId>,
    pub(crate) location: LocationService,
    pub(crate) sessions: Vec<Session>,
    pub(crate) metrics: Metrics,
    pub(crate) rng: StdRng,
    pub(crate) observers: Vec<Box<dyn Observer>>,
    /// Test-harness hook: sees every frame put on the air (including ARQ
    /// retransmissions) with its ground-truth sender, before receiver
    /// resolution. `None` (the default) costs nothing and draws no RNG,
    /// so audited and unaudited runs are byte-identical.
    pub(crate) frame_audit: Option<FrameAudit<M>>,
    pub(crate) tracer: Tracer,
    pub(crate) stats: SimStats,
    /// Per-node crash depth: `> 0` means down. A counter rather than a
    /// flag so overlapping outages (individual crash inside a regional
    /// outage) nest correctly.
    pub(crate) down_depth: Vec<u32>,
    /// Per-node incarnation counter; bumped on recovery so timers set
    /// before a crash never fire into the new incarnation.
    pub(crate) epochs: Vec<u32>,
    /// Victims of each in-progress regional outage (resolved at outage
    /// start, recovered together at outage end).
    pub(crate) region_victims: Vec<Vec<NodeId>>,
    /// Reusable buffers for [`WorldCore::hello_tick`] so the steady-state
    /// tick allocates nothing (see DESIGN.md § performance).
    pub(crate) hello_scratch: HelloScratch,
    /// Reusable receiver list for broadcast transmissions.
    pub(crate) bcast_targets: Vec<NodeId>,
    /// Public key → node id. Keys are generated once per run and never
    /// change, so this map is built at construction and lets
    /// `hello_tick` resolve "same neighbor, new pseudonym" in O(1)
    /// instead of scanning the fresh table per retained entry.
    pub(crate) key_to_node: HashMap<PublicKey, NodeId>,
    /// Struct-of-arrays mirrors of the per-node hot state. The hello and
    /// mobility sweeps touch every node every tick; streaming these flat
    /// vectors instead of hopping through `NodeInfo` (whose neighbor
    /// tables and keypairs pad each record past a cache line) keeps those
    /// sweeps linear in memory. Each is an exact mirror of its source of
    /// truth: `positions` of the mobility model (refreshed after every
    /// step), `cur_pseudonyms` of `NodeInfo::pseudonyms` (updated at
    /// rotation), `public_keys` of `NodeInfo::keypair` (immutable per
    /// run). `tx_busy_until` lives here outright — the transmit path is
    /// its only reader and writer.
    pub(crate) positions: Vec<Point>,
    /// End time of each node's in-flight transmission (used only under
    /// `MacConfig::serialize_tx`).
    pub(crate) tx_busy_until: Vec<f64>,
    pub(crate) cur_pseudonyms: Vec<Pseudonym>,
    pub(crate) public_keys: Vec<PublicKey>,
    /// Remaining battery per node in joules. Empty when the scenario has
    /// no energy budget (`EnergyConfig::initial_j` unset), so the legacy
    /// unmetered path pays a single is-empty branch and nothing else.
    pub(crate) energy_j: Vec<f64>,
    /// Whether a node's battery has already hit zero (its depletion event
    /// is scheduled exactly once). Same length as `energy_j`.
    pub(crate) energy_dead: Vec<bool>,
    /// Cluster-head flags from the most recent hello-round election; a
    /// head transmits with a boosted radio range.
    pub(crate) cluster_head: Vec<bool>,
    /// Nodes below the relay-energy threshold this hello round: they
    /// withhold beacons, steering forwarding away from drained relays.
    pub(crate) low_energy: Vec<bool>,
}

/// What a battery drain is charged against (per-cause accounting in
/// [`Metrics::node_energy`], which the energy-conservation oracle checks
/// against the total).
#[derive(Debug, Clone, Copy)]
pub(crate) enum EnergyCause {
    Tx,
    Rx,
    Idle,
    Beacon,
}

/// Scratch buffers reused across [`WorldCore::hello_tick`] rounds. All
/// vectors keep their capacity between ticks; `heard`/`round` implement
/// a generation-stamped "was node X heard by the current observer this
/// tick" set without per-tick clearing.
#[derive(Default)]
pub(crate) struct HelloScratch {
    /// The neighbor table being built for the current node; swapped into
    /// `NodeInfo::neighbors` at the end of each per-node pass.
    table: Vec<crate::api::NeighborEntry>,
    /// Entries that aged out this tick, delivered to `on_neighbor_lost`
    /// by the dispatch loop after the tick completes.
    pub(crate) lost: Vec<(NodeId, crate::api::NeighborEntry)>,
    /// `heard[id] == round` ⇔ node `id` was heard by the observer
    /// currently being processed.
    heard: Vec<u64>,
    /// Generation stamp, bumped once per observer per tick.
    round: u64,
}

impl<M: Clone + std::fmt::Debug> WorldCore<M> {
    pub(crate) fn position(&self, node: NodeId) -> Point {
        self.positions[node.0]
    }

    /// Refreshes the flat position cache from the mobility model; called
    /// after every `step` (and at construction) so `positions[i]` always
    /// equals `mobility.position(i)` without the virtual call per read.
    pub(crate) fn refresh_positions(&mut self) {
        for i in 0..self.positions.len() {
            self.positions[i] = self.mobility.position(i);
        }
    }

    /// Whether `node` is currently crashed (fault plan).
    pub(crate) fn is_down(&self, node: NodeId) -> bool {
        self.down_depth[node.0] > 0
    }

    /// Whether the per-node energy meter is active for this run.
    pub(crate) fn energy_metered(&self) -> bool {
        !self.energy_j.is_empty()
    }

    /// Drains `joules` from `node`'s battery — clamped to the remaining
    /// charge, so the per-cause drain counters sum exactly to the total
    /// drained and the meter never goes negative — and schedules the
    /// depletion event when the meter hits zero. No-op for unmetered runs.
    pub(crate) fn charge_energy(&mut self, node: NodeId, joules: f64, cause: EnergyCause) {
        if self.energy_j.is_empty() {
            return;
        }
        let take = joules.max(0.0).min(self.energy_j[node.0]);
        self.energy_j[node.0] -= take;
        let acct = &mut self.metrics.node_energy;
        acct.drained_j += take;
        match cause {
            EnergyCause::Tx => acct.tx_j += take,
            EnergyCause::Rx => acct.rx_j += take,
            EnergyCause::Idle => acct.idle_j += take,
            EnergyCause::Beacon => acct.beacon_j += take,
        }
        self.check_energy_death(node);
    }

    /// Schedules the permanent shutdown of `node` if its battery is empty
    /// and its depletion event hasn't been scheduled yet. Depletion is a
    /// crash with no recovery: the `down_depth`/epoch machinery wipes the
    /// node's volatile state, and because no matching up event ever
    /// enters the queue the nesting counter keeps the node silent for the
    /// rest of the run even when a fault-plan outage overlaps.
    pub(crate) fn check_energy_death(&mut self, node: NodeId) {
        if self.energy_j.is_empty() || self.energy_dead[node.0] || self.energy_j[node.0] > 0.0 {
            return;
        }
        self.energy_dead[node.0] = true;
        self.metrics.node_energy.deaths += 1;
        self.stats.registry.inc(self.stats.energy_deaths);
        self.queue.schedule_in(0.0, Event::EnergyDeplete { node });
    }

    /// Central drop bookkeeping: legacy `Metrics.drops` string map, the
    /// typed registry counter, and a trace event, all in one place.
    pub(crate) fn drop_frame(
        &mut self,
        node: NodeId,
        reason: DropReason,
        packet: Option<PacketId>,
    ) {
        self.metrics.record_drop(reason);
        self.stats.registry.inc(self.stats.drops);
        let time = self.queue.now();
        self.tracer.emit_with(|| TraceEvent::Drop {
            time,
            node: node.0 as u64,
            reason: reason.as_str().to_owned(),
            packet: packet.map(|p| p.0),
        });
    }

    /// On a failed unicast attempt: schedule an ARQ retransmission while
    /// the retry budget lasts, otherwise record the drop. With
    /// `arq_max_retries == 0` (the default) this is exactly the old
    /// immediate-drop path.
    #[allow(clippy::too_many_arguments)]
    fn unicast_failed(
        &mut self,
        from: NodeId,
        to: Pseudonym,
        msg: M,
        bytes: usize,
        class: TrafficClass,
        packet: Option<PacketId>,
        attempt: u32,
        reason: DropReason,
    ) {
        let max = self.cfg.mac.arq_max_retries;
        if attempt < max {
            let next = attempt + 1;
            self.stats
                .registry
                .observe(self.stats.link_retries, f64::from(next));
            let now = self.queue.now();
            self.tracer.emit_with(|| TraceEvent::LinkRetry {
                time: now,
                node: from.0 as u64,
                packet: packet.map(|p| p.0),
                attempt: u64::from(next),
            });
            // Binary exponential backoff, exponent capped well below
            // anything that could overflow.
            let delay = self.cfg.mac.arq_backoff_base_s * f64::powi(2.0, attempt.min(16) as i32);
            self.queue.schedule_in(
                delay,
                Event::Retry {
                    from,
                    to,
                    msg,
                    bytes,
                    class,
                    packet,
                    attempt: next,
                },
            );
        } else {
            let final_reason = if max > 0 {
                DropReason::RetryLimitExceeded
            } else {
                reason
            };
            self.drop_frame(from, final_reason, packet);
        }
    }

    /// The channel model: computes airtime, resolves receivers, applies
    /// loss, schedules deliveries and notifies observers. `attempt` is the
    /// ARQ retransmission count of this frame (0 for a fresh send).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transmit(
        &mut self,
        from: NodeId,
        dest: TxDest,
        msg: M,
        bytes: usize,
        extra_delay: f64,
        class: TrafficClass,
        packet: Option<PacketId>,
        attempt: u32,
    ) {
        let mac = self.cfg.mac;
        let from_pos = self.position(from);
        let contention = self.nodes[from.0].neighbors.len() as f64;
        let backoff = if mac.max_backoff_s > 0.0 {
            self.rng.gen_range(0.0..mac.max_backoff_s)
        } else {
            0.0
        };
        let airtime = mac.base_overhead_s
            + backoff
            + contention * mac.contention_per_neighbor_s
            + bytes as f64 * 8.0 / mac.bitrate_bps;
        let mut start = self.queue.now() + extra_delay;
        if mac.serialize_tx {
            // Half-duplex transmitter: wait out our own previous frame.
            start = start.max(self.tx_busy_until[from.0]);
            self.tx_busy_until[from.0] = start + airtime;
        }
        let at = start + airtime;
        let from_pseudonym = self.cur_pseudonyms[from.0];
        self.metrics.energy_tx_j += airtime * self.cfg.energy.tx_watts;
        self.charge_energy(from, airtime * self.cfg.energy.tx_watts, EnergyCause::Tx);
        // A cluster head transmits at boosted power, extending its own
        // range; plain members (and every node of an unmetered run) use
        // the configured radio range unchanged.
        let range_m = if !self.cluster_head.is_empty() && self.cluster_head[from.0] {
            mac.range_m * self.cfg.energy.cluster_head_range_boost
        } else {
            mac.range_m
        };

        let tx_kind = match dest {
            TxDest::Unicast(_) => TxKind::Unicast,
            TxDest::Broadcast => TxKind::Broadcast,
        };
        self.stats.registry.inc(self.stats.tx_frames);
        self.stats.registry.inc(match tx_kind {
            TxKind::Unicast => self.stats.tx_unicast,
            TxKind::Broadcast => self.stats.tx_broadcast,
        });
        self.stats.registry.add(self.stats.tx_bytes, bytes as u64);
        self.stats
            .registry
            .observe(self.stats.mac_backoff_s, backoff);
        let now = self.queue.now();
        self.tracer.emit_with(|| TraceEvent::Tx {
            time: now,
            node: from.0 as u64,
            kind: tx_kind,
            class: class_kind(class),
            bytes: bytes as u64,
            packet: packet.map(|p| p.0),
        });
        if let Some(audit) = self.frame_audit.as_mut() {
            audit(now, from, from_pseudonym, &msg);
        }

        // Overhead accounting by class.
        match class {
            TrafficClass::Data => {}
            TrafficClass::Control => {
                self.metrics.control_frames += 1;
                self.metrics.control_bytes += bytes as u64;
            }
            TrafficClass::ControlHop => {
                self.metrics.control_frames += 1;
                self.metrics.control_bytes += bytes as u64;
                self.metrics.control_hops += 1;
            }
            TrafficClass::Cover => {
                self.metrics.cover_frames += 1;
            }
        }

        // Channel loss in effect right now (base rate unless a fault-plan
        // degradation window is active).
        let loss = self.cfg.faults.effective_loss(mac.loss_probability, now);
        let mut receiver = None;
        match dest {
            TxDest::Unicast(p) => {
                if let Some(&to) = self.pseudonym_map.get(&p) {
                    let in_range =
                        self.position(to).distance(from_pos) <= range_m && to != from;
                    let down = self.is_down(to);
                    let lost = loss > 0.0 && self.rng.gen_range(0.0..1.0) < loss;
                    if !in_range || down || lost {
                        let reason = if !in_range {
                            DropReason::UnicastOutOfRange
                        } else if down {
                            DropReason::ReceiverNodeDown
                        } else {
                            DropReason::UnicastChannelLoss
                        };
                        self.unicast_failed(from, p, msg, bytes, class, packet, attempt, reason);
                    } else {
                        receiver = Some(to);
                        self.metrics.energy_rx_j += airtime * self.cfg.energy.rx_watts;
                        self.charge_energy(to, airtime * self.cfg.energy.rx_watts, EnergyCause::Rx);
                        self.stats.registry.inc(self.stats.rx_frames);
                        self.tracer.emit_with(|| TraceEvent::Rx {
                            time: now,
                            node: to.0 as u64,
                            kind: TxKind::Unicast,
                            bytes: bytes as u64,
                            at,
                        });
                        self.queue.schedule(
                            at,
                            Event::Deliver {
                                to,
                                frame: Frame {
                                    from: from_pseudonym,
                                    kind: FrameKind::Unicast,
                                    bytes,
                                    msg,
                                },
                            },
                        );
                    }
                } else {
                    self.drop_frame(from, DropReason::UnicastUnknownPseudonym, packet);
                }
            }
            TxDest::Broadcast => {
                // The receiver list lives in a reusable core buffer; it is
                // taken out for the duration of the delivery loop (which
                // needs `&mut self`) and handed back with its capacity.
                let mut targets = std::mem::take(&mut self.bcast_targets);
                targets.clear();
                self.grid.for_each_in_range(from_pos, range_m, |id, _| {
                    if id != from.0 {
                        targets.push(NodeId(id));
                    }
                });
                // Grid positions are one mobility tick stale; that models
                // real beacon staleness and keeps the query O(1).
                for &to in &targets {
                    // A crashed receiver hears nothing (and consumes no
                    // loss draw, so runs differ only where the fault does).
                    if self.is_down(to) {
                        continue;
                    }
                    let lost = loss > 0.0 && self.rng.gen_range(0.0..1.0) < loss;
                    if !lost {
                        self.metrics.energy_rx_j += airtime * self.cfg.energy.rx_watts;
                        self.charge_energy(to, airtime * self.cfg.energy.rx_watts, EnergyCause::Rx);
                        self.stats.registry.inc(self.stats.rx_frames);
                        self.tracer.emit_with(|| TraceEvent::Rx {
                            time: now,
                            node: to.0 as u64,
                            kind: TxKind::Broadcast,
                            bytes: bytes as u64,
                            at,
                        });
                        self.queue.schedule(
                            at,
                            Event::Deliver {
                                to,
                                frame: Frame {
                                    from: from_pseudonym,
                                    kind: FrameKind::Broadcast,
                                    bytes,
                                    msg: msg.clone(),
                                },
                            },
                        );
                    }
                }
                self.bcast_targets = targets;
            }
        }

        let ev = TxEvent {
            time: self.queue.now(),
            sender: from,
            sender_pos: from_pos,
            receiver,
            bytes,
            class,
            packet,
        };
        for obs in &mut self.observers {
            obs.on_transmission(&ev);
        }
    }

    fn rebuild_grid(&mut self) {
        let positions = self.positions.iter().copied().enumerate();
        self.grid.rebuild(positions);
    }

    /// Refreshes every node's grid position incrementally after a
    /// mobility step. Most nodes stay within their 250 m cell between
    /// ticks, so this is an in-place position overwrite for the common
    /// case; the grid keeps cells id-sorted, making the result
    /// indistinguishable from a full [`WorldCore::rebuild_grid`].
    fn update_grid(&mut self) {
        for i in 0..self.positions.len() {
            self.grid.update_position(i, self.positions[i]);
        }
    }

    /// Hello tick: rotate expired pseudonyms, rebuild every node's
    /// neighbor table from current geometry, evict stale entries, and
    /// account beacon overhead. Entries lost to staleness this round are
    /// left in `hello_scratch.lost` for the runtime to deliver to the
    /// `on_neighbor_lost` protocol hook after the tick.
    fn hello_tick(&mut self) {
        let now = self.queue.now();
        // Pseudonym rotation first so tables carry fresh pseudonyms. A
        // crashed node's radio is off: it neither rotates nor beacons.
        for i in 0..self.nodes.len() {
            if self.down_depth[i] > 0 {
                continue;
            }
            // At any time node i owns at most {current, previous} keys in
            // the map; capture the key that rotation will age out before
            // `previous` is overwritten.
            let aged_out = self.nodes[i].pseudonyms.previous;
            let maybe_new = self.nodes[i].pseudonyms.maybe_rotate(now, &mut self.rng);
            if let Some(p) = maybe_new {
                self.cur_pseudonyms[i] = p;
                // Drop the mapping older than the grace predecessor — a
                // targeted O(1) removal; the old full-map `retain` scanned
                // every key of every node per rotation. The pre-rotation
                // current (now `previous`) is already mapped.
                if let Some(stale) = aged_out {
                    self.pseudonym_map.remove(&stale);
                }
                self.pseudonym_map.insert(p, NodeId(i));
                self.stats.registry.inc(self.stats.pseudonym_rotations);
                self.tracer.emit_with(|| TraceEvent::PseudonymRotation {
                    time: now,
                    node: i as u64,
                });
            }
        }
        // Energy-aware round setup (metered scenarios only; an unmetered
        // run takes none of these branches and draws no extra RNG, so its
        // event stream is byte-identical to the pre-energy runtime).
        let metered = self.energy_metered();
        if metered {
            let initial = self.cfg.energy.initial_j.unwrap_or(0.0);
            // Nodes below the relay threshold withhold their beacon this
            // round: neighbors stop learning about them, which steers
            // forwarding away from nearly-drained relays.
            let floor = self.cfg.energy.relay_threshold_fraction * initial;
            for i in 0..self.nodes.len() {
                self.low_energy[i] = self.energy_j[i] < floor;
            }
            // Cluster-head election: each live node volunteers with
            // probability `cluster_head_fraction` scaled by its remaining
            // energy fraction, so headship rotates towards well-charged
            // nodes. One RNG draw per live node, in id order.
            if self.cfg.energy.cluster_head_fraction > 0.0 {
                let mut heads = 0u64;
                for i in 0..self.nodes.len() {
                    let mut head = false;
                    if self.down_depth[i] == 0 {
                        let ratio = if initial > 0.0 {
                            (self.energy_j[i] / initial).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                        let p = self.cfg.energy.cluster_head_fraction * ratio;
                        head = self.rng.gen_range(0.0..1.0) < p;
                    }
                    self.cluster_head[i] = head;
                    heads += u64::from(head);
                }
                self.stats.registry.add(self.stats.cluster_heads, heads);
            }
        }
        // Neighbor-table eligibility margin: a link is only advertised if
        // it stays within radio range until the next hello even when both
        // endpoints move apart at full speed. This models the link-quality
        // filtering every practical beacon protocol applies and avoids
        // committing unicasts to edge-of-range neighbors.
        let range = (self.cfg.mac.range_m - 2.0 * self.cfg.speed * self.cfg.hello_interval_s)
            .max(self.cfg.mac.range_m * 0.5);
        // An entry survives `k` missed hellos (k = neighbor_staleness
        // factor); the half-interval tolerance keeps the comparison robust
        // to float accumulation, and with the default k = 1 reproduces the
        // historical vanish-at-first-missed-hello semantics exactly.
        let staleness =
            (self.cfg.neighbor_staleness_factor - 0.5).max(0.0) * self.cfg.hello_interval_s;
        // The scratch is taken out for the loop (its buffers and the world
        // are borrowed simultaneously) and handed back with its capacity,
        // so the steady-state tick performs no allocation at all.
        let mut scratch = std::mem::take(&mut self.hello_scratch);
        scratch.lost.clear();
        if scratch.heard.len() < self.nodes.len() {
            scratch.heard.resize(self.nodes.len(), 0);
        }
        for i in 0..self.nodes.len() {
            if self.down_depth[i] > 0 {
                // Crashed: table was wiped at crash time and stays empty.
                continue;
            }
            let me = self.positions[i];
            scratch.round += 1;
            let round = scratch.round;
            scratch.table.clear();
            {
                let table = &mut scratch.table;
                let heard = &mut scratch.heard;
                let pseudonyms = &self.cur_pseudonyms;
                let public_keys = &self.public_keys;
                let down_depth = &self.down_depth;
                let low_energy = &self.low_energy;
                self.grid.for_each_in_range(me, range, |id, pos| {
                    if id == i || down_depth[id] > 0 || (metered && low_energy[id]) {
                        // Self, a crashed neighbor whose radio sends no
                        // beacon to be heard, or an energy-saving node
                        // that withheld its beacon this round.
                        return;
                    }
                    heard[id] = round;
                    table.push(crate::api::NeighborEntry {
                        pseudonym: pseudonyms[id],
                        position: pos,
                        public_key: public_keys[id],
                        heard_at: now,
                    });
                });
            }
            // Entries not re-heard this round survive until they age out;
            // the node's stable public key identifies "the same neighbor"
            // across pseudonym rotations (resolved through `key_to_node`
            // and this round's `heard` stamps, instead of rescanning the
            // fresh table per retained entry).
            for e in &self.nodes[i].neighbors {
                let re_heard = self
                    .key_to_node
                    .get(&e.public_key)
                    .is_some_and(|n| scratch.heard[n.0] == round);
                if re_heard {
                    continue;
                }
                if now - e.heard_at < staleness {
                    scratch.table.push(*e);
                } else {
                    scratch.lost.push((NodeId(i), *e));
                }
            }
            // The freshly built table becomes the node's; the node's old
            // vector becomes next iteration's build buffer.
            std::mem::swap(&mut self.nodes[i].neighbors, &mut scratch.table);
        }
        self.hello_scratch = scratch;
        // Each beaconing node broadcast one beacon this interval; charge
        // the beacon airtime (tx once per node, rx once per table entry).
        // Under the meter, a node below the relay threshold withheld its
        // beacon and is excluded from the beacon accounting.
        let low_energy = &self.low_energy;
        let beaconing = self
            .down_depth
            .iter()
            .enumerate()
            .filter(|&(i, &d)| d == 0 && !(metered && low_energy[i]))
            .count();
        self.metrics.control_frames += beaconing as u64;
        self.metrics.control_bytes += (beaconing * HELLO_BYTES) as u64;
        let beacon_airtime =
            self.cfg.mac.base_overhead_s + HELLO_BYTES as f64 * 8.0 / self.cfg.mac.bitrate_bps;
        let entries: usize = self.nodes.iter().map(|n| n.neighbors.len()).sum();
        self.metrics.energy_tx_j += beacon_airtime * self.cfg.energy.tx_watts * beaconing as f64;
        self.metrics.energy_rx_j += beacon_airtime * self.cfg.energy.rx_watts * entries as f64;
        if metered {
            // Per-node meter: beacon tx for nodes that beaconed, beacon rx
            // per heard table entry, and the idle floor over the interval.
            // These drains can empty a battery and schedule its depletion.
            let idle_j = self.cfg.energy.idle_watts * self.cfg.hello_interval_s;
            let tx_j = beacon_airtime * self.cfg.energy.tx_watts;
            let rx_unit = beacon_airtime * self.cfg.energy.rx_watts;
            for i in 0..self.nodes.len() {
                if self.down_depth[i] > 0 {
                    continue;
                }
                if !self.low_energy[i] {
                    self.charge_energy(NodeId(i), tx_j, EnergyCause::Beacon);
                }
                let heard = self.nodes[i].neighbors.len() as f64;
                self.charge_energy(NodeId(i), rx_unit * heard, EnergyCause::Beacon);
                if idle_j > 0.0 {
                    self.charge_energy(NodeId(i), idle_j, EnergyCause::Idle);
                }
            }
        }
    }

    fn location_tick(&mut self) {
        let now = self.queue.now();
        for i in 0..self.nodes.len() {
            let pos = self.positions[i];
            let key = self.public_keys[i];
            let pseudo = self.cur_pseudonyms[i];
            self.location.update(NodeId(i), pos, key, pseudo, now);
        }
        self.metrics.location_messages = self.location.messages;
    }
}

/// Periodic registry sampling state ([`World::enable_metrics_timeseries`]).
/// Lives outside [`WorldCore`] so the dispatch loop's disabled-path cost
/// is a single `Option` branch: no allocation, no RNG draw, no snapshot.
struct TimeseriesSampler {
    /// Next window boundary to sample, simulated seconds.
    next_t: f64,
    series: MetricsTimeseries,
}

/// The simulation world, generic over the routing protocol.
pub struct World<P: ProtocolNode> {
    core: WorldCore<P::Msg>,
    protos: Vec<Option<P>>,
    started_sessions: Vec<bool>,
    events_dispatched: u64,
    profile_enabled: bool,
    profile_wall_s: f64,
    profile_callbacks: std::collections::BTreeMap<String, alert_trace::CallbackProfile>,
    /// Per-protocol-callback span accounting ([`RunProfile::spans`]),
    /// populated only when profiling is enabled.
    profile_spans: std::collections::BTreeMap<String, alert_trace::CallbackProfile>,
    /// Periodic registry sampler; `None` (the default) costs one branch
    /// per dispatched event and nothing else.
    sampler: Option<TimeseriesSampler>,
    /// Whether the deferred `on_start` sweep has run. Startup hooks fire
    /// on first entry into the run loop — not at construction — so frames
    /// a protocol transmits in `on_start` are visible to trace sinks,
    /// observers, and frame audits attached between `try_new` and the
    /// first run call (otherwise the registry counts frames no trace ever
    /// sees, breaking registry == trace accounting).
    started: bool,
    /// Wall-clock anchor for `RunBudget::max_wall_seconds`, captured on
    /// first entry into the run loop of a budgeted run.
    wall_start: Option<std::time::Instant>,
    /// Set once a guardrail has aborted this run; the world refuses no
    /// further queries, but the dispatch loop will not resume.
    aborted: Option<RunAbort>,
}

impl<P: ProtocolNode> World<P> {
    /// Builds a world from a scenario and seed; `factory(id)` constructs
    /// the protocol instance for each node.
    ///
    /// # Panics
    /// Panics when the scenario fails [`ScenarioConfig::validate`].
    pub fn new(
        cfg: ScenarioConfig,
        seed: u64,
        factory: impl FnMut(NodeId, &ScenarioConfig) -> P,
    ) -> Self {
        match Self::try_new(cfg, seed, factory) {
            Ok(w) => w,
            Err(e) => panic!("invalid scenario: {e}"),
        }
    }

    /// Non-panicking constructor: returns the validation error instead.
    pub fn try_new(
        cfg: ScenarioConfig,
        seed: u64,
        factory: impl FnMut(NodeId, &ScenarioConfig) -> P,
    ) -> Result<Self, ScenarioError> {
        cfg.validate()?;
        let field = cfg.field();
        let mut mobility: Box<dyn Mobility> = match cfg.mobility {
            MobilityKind::RandomWaypoint => Box::new(RandomWaypoint::new(
                field,
                RandomWaypointConfig::fixed_speed(cfg.nodes, cfg.speed),
                seed ^ 0x0B0B_5EED,
            )),
            MobilityKind::Group { groups, range } => Box::new(GroupMobility::new(
                field,
                GroupMobilityConfig::paper(cfg.nodes, groups, range, cfg.speed),
                seed ^ 0x0B0B_5EED,
            )),
            MobilityKind::ManhattanGrid {
                h_streets,
                v_streets,
                turn_prob,
                speed_classes,
            } => Box::new(ManhattanGrid::new(
                field,
                ManhattanConfig {
                    nodes: cfg.nodes,
                    h_streets,
                    v_streets,
                    turn_prob,
                    speed: cfg.speed,
                    speed_classes,
                },
                seed ^ 0x0B0B_5EED,
            )),
            MobilityKind::Static => {
                Box::new(StaticField::uniform(field, cfg.nodes, seed ^ 0x0B0B_5EED))
            }
        };
        // Placement strategies (convoy, small teams) override the model's
        // random initial positions. `place` draws nothing from the model
        // RNG, so the movement draw stream is unchanged; street-bound
        // models snap the requested points to their nearest legal spot.
        if let Some(points) = cfg.placement.positions(field, cfg.nodes, seed) {
            mobility.place(&points);
        }
        Self::with_mobility(cfg, seed, mobility, None, factory)
    }

    /// Builds a world over an explicit static topology with explicit
    /// sessions — the researcher's API for crafted-geometry experiments
    /// (voids, corridors, adversarial placements). `cfg.nodes` is
    /// overridden by `positions.len()`; `cfg.mobility` is ignored.
    ///
    /// # Panics
    /// Panics when the derived scenario fails validation; see
    /// [`World::try_with_topology`] for the fallible variant.
    pub fn with_topology(
        cfg: ScenarioConfig,
        seed: u64,
        positions: Vec<Point>,
        sessions: Vec<Session>,
        factory: impl FnMut(NodeId, &ScenarioConfig) -> P,
    ) -> Self {
        match Self::try_with_topology(cfg, seed, positions, sessions, factory) {
            Ok(w) => w,
            Err(e) => panic!("invalid scenario: {e}"),
        }
    }

    /// Non-panicking [`World::with_topology`]: returns the validation
    /// error (including out-of-range session endpoints) instead.
    pub fn try_with_topology(
        mut cfg: ScenarioConfig,
        seed: u64,
        positions: Vec<Point>,
        sessions: Vec<Session>,
        factory: impl FnMut(NodeId, &ScenarioConfig) -> P,
    ) -> Result<Self, ScenarioError> {
        cfg.nodes = positions.len();
        cfg.mobility = MobilityKind::Static;
        cfg.traffic.pairs = sessions.len();
        let field = cfg.field();
        let mobility: Box<dyn Mobility> = Box::new(StaticField::at(field, positions));
        Self::with_mobility(cfg, seed, mobility, Some(sessions), factory)
    }

    fn with_mobility(
        cfg: ScenarioConfig,
        seed: u64,
        mobility: Box<dyn Mobility>,
        sessions_override: Option<Vec<Session>>,
        mut factory: impl FnMut(NodeId, &ScenarioConfig) -> P,
    ) -> Result<Self, ScenarioError> {
        cfg.validate()?;
        if let Some(s) = &sessions_override {
            if let Some(bad) = s
                .iter()
                .flat_map(|x| [x.src.0, x.dst.0])
                .find(|&n| n >= cfg.nodes)
            {
                return Err(ScenarioError::SessionEndpointOutOfRange {
                    node: bad,
                    nodes: cfg.nodes,
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_A1E7);
        let field = cfg.field();
        let _ = field;

        let mut nodes = Vec::with_capacity(cfg.nodes);
        let mut pseudonym_map = HashMap::with_capacity(cfg.nodes * 2);
        let mut key_to_node = HashMap::with_capacity(cfg.nodes);
        let mut cur_pseudonyms = Vec::with_capacity(cfg.nodes);
        let mut public_keys = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let keypair = KeyPair::generate(&mut rng);
            let generator = PseudonymGenerator::new(
                MacAddress::from_index(i as u64),
                cfg.pseudonym_lifetime_s,
                0.0,
                &mut rng,
            );
            let history = PseudonymHistory::new(generator);
            pseudonym_map.insert(history.current(), NodeId(i));
            let displaced = key_to_node.insert(keypair.public, NodeId(i));
            debug_assert!(
                displaced.is_none(),
                "duplicate public key for node {i} — key-based neighbor identity broken"
            );
            cur_pseudonyms.push(history.current());
            public_keys.push(keypair.public);
            nodes.push(NodeInfo {
                keypair,
                pseudonyms: history,
                neighbors: Vec::new(),
            });
        }

        // Random distinct S-D pairs, unless explicit sessions were given.
        let sessions: Vec<Session> = match sessions_override {
            Some(s) => s,
            None => {
                let mut ids: Vec<usize> = (0..cfg.nodes).collect();
                for i in (1..ids.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    ids.swap(i, j);
                }
                (0..cfg.traffic.pairs)
                    .map(|p| Session {
                        src: NodeId(ids[2 * p]),
                        dst: NodeId(ids[2 * p + 1]),
                    })
                    .collect()
            }
        };

        // Energy vectors are sized only for metered scenarios; an empty
        // `energy_j` is the runtime's "no meter" signal.
        let metered_nodes = if cfg.energy.metered() { cfg.nodes } else { 0 };
        let mut core = WorldCore {
            grid: SpatialGrid::new(field, cfg.mac.range_m),
            location: LocationService::new(cfg.nodes, cfg.location),
            queue: EventQueue::new(),
            mobility,
            nodes,
            pseudonym_map,
            sessions,
            metrics: Metrics::default(),
            rng,
            observers: Vec::new(),
            frame_audit: None,
            tracer: Tracer::disabled(),
            stats: SimStats::new(),
            down_depth: vec![0; cfg.nodes],
            epochs: vec![0; cfg.nodes],
            region_victims: vec![Vec::new(); cfg.faults.regional_outages.len()],
            hello_scratch: HelloScratch {
                heard: vec![0; cfg.nodes],
                ..HelloScratch::default()
            },
            bcast_targets: Vec::new(),
            key_to_node,
            positions: vec![Point::default(); cfg.nodes],
            tx_busy_until: vec![0.0; cfg.nodes],
            cur_pseudonyms,
            public_keys,
            energy_j: vec![cfg.energy.initial_j.unwrap_or(0.0); metered_nodes],
            energy_dead: vec![false; metered_nodes],
            cluster_head: vec![false; metered_nodes],
            low_energy: vec![false; metered_nodes],
            cfg,
        };
        core.refresh_positions();
        core.rebuild_grid();
        core.hello_tick();
        core.location_tick();
        // Nodes that start with an empty battery (or drained it on the
        // construction beacon round) die at t = 0. Their depletion events
        // enter the queue here — before the fault schedule and any traffic
        // — so the FIFO tie-break dispatches energy deaths first at t = 0.
        if core.energy_metered() {
            for i in 0..core.cfg.nodes {
                core.check_energy_death(NodeId(i));
            }
        }

        // Periodic machinery.
        let cfg = &core.cfg;
        core.queue
            .schedule(cfg.mobility_tick_s, Event::MobilityTick);
        core.queue.schedule(cfg.hello_interval_s, Event::HelloTick);
        let loc_interval = match cfg.location {
            LocationPolicy::Periodic { interval_s } => interval_s,
            LocationPolicy::SessionStart => 1.0,
        };
        core.queue.schedule(loc_interval, Event::LocationTick);
        // Fault schedule. Only touched for a non-empty plan, so the
        // default scenario's event stream is byte-identical to a world
        // without fault support. These are enqueued before any traffic,
        // so at equal timestamps the FIFO tie-break dispatches a crash
        // before a same-time delivery: a down node participates in no
        // packet between its NodeDown and NodeUp events.
        if !cfg.faults.is_empty() {
            for c in &cfg.faults.crashes {
                core.queue.schedule(
                    c.at_s,
                    Event::NodeDown {
                        node: NodeId(c.node),
                    },
                );
                if let Some(up) = c.recover_s {
                    core.queue.schedule(
                        up,
                        Event::NodeUp {
                            node: NodeId(c.node),
                        },
                    );
                }
            }
            for (i, r) in cfg.faults.regional_outages.iter().enumerate() {
                core.queue
                    .schedule(r.start_s, Event::RegionOutage { index: i });
                core.queue
                    .schedule(r.end_s, Event::RegionRecover { index: i });
            }
        }
        for (s, _) in core.sessions.iter().enumerate() {
            // Small deterministic stagger decorrelates the pairs.
            let start = cfg.traffic.start_s + s as f64 * 0.037;
            core.queue.schedule(
                start,
                Event::AppSend {
                    session: SessionId(s as u32),
                    seq: 0,
                },
            );
        }

        let protos: Vec<Option<P>> = (0..core.cfg.nodes)
            .map(|i| Some(factory(NodeId(i), &core.cfg)))
            .collect();
        let started_sessions = vec![false; core.sessions.len()];
        let world = World {
            core,
            protos,
            started_sessions,
            events_dispatched: 0,
            profile_enabled: false,
            profile_wall_s: 0.0,
            profile_callbacks: std::collections::BTreeMap::new(),
            profile_spans: std::collections::BTreeMap::new(),
            sampler: None,
            started: false,
            wall_start: None,
            aborted: None,
        };
        Ok(world)
    }

    /// Registers a channel observer (adversary analyzers).
    pub fn add_observer(&mut self, obs: Box<dyn Observer>) {
        self.core.observers.push(obs);
    }

    /// Removes and returns all observers (to inspect after a run).
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.core.observers)
    }

    /// Installs the frame-audit hook (see [`FrameAudit`]). Auditing draws
    /// no randomness and emits no trace events, so an audited run stays
    /// byte-identical to an unaudited one.
    pub fn set_frame_audit(&mut self, audit: FrameAudit<P::Msg>) {
        self.core.frame_audit = Some(audit);
    }

    /// Removes the frame-audit hook, returning it if one was installed.
    pub fn take_frame_audit(&mut self) -> Option<FrameAudit<P::Msg>> {
        self.core.frame_audit.take()
    }

    /// Runs a protocol callback with the world borrowed through [`Api`].
    /// `span` is the callback's name for [`RunProfile::spans`] attribution;
    /// timing happens only when profiling is enabled, so unprofiled runs
    /// pay nothing for it.
    fn with_proto(
        &mut self,
        node: NodeId,
        span: &'static str,
        f: impl FnOnce(&mut P, &mut Api<'_, P::Msg>),
    ) {
        let mut proto = self.protos[node.0].take().expect("protocol re-entered");
        let mut api = Api {
            core: &mut self.core,
            node,
            pending_delay: 0.0,
        };
        if self.profile_enabled {
            let start = std::time::Instant::now();
            f(&mut proto, &mut api);
            let dt = start.elapsed().as_secs_f64();
            let entry = self.profile_spans.entry(span.to_owned()).or_default();
            entry.count += 1;
            entry.seconds += dt;
        } else {
            f(&mut proto, &mut api);
        }
        self.protos[node.0] = Some(proto);
    }

    fn dispatch(&mut self, event: Event<P::Msg>) {
        match event {
            Event::Deliver { to, frame } => {
                if self.core.is_down(to) {
                    // Crashed after the frame hit its radio but before the
                    // propagation delay elapsed.
                    self.core.drop_frame(to, DropReason::ReceiverNodeDown, None);
                    return;
                }
                self.with_proto(to, "on_frame", |p, api| p.on_frame(api, frame));
            }
            Event::Timer { node, token, epoch } => {
                if self.core.is_down(node) || self.core.epochs[node.0] != epoch {
                    // Stale timer from a crashed node or a pre-crash
                    // incarnation: swallowed silently (no counter, no
                    // trace) so trace and registry stay in agreement.
                    return;
                }
                self.core.stats.registry.inc(self.core.stats.timer_fired);
                let now = self.core.queue.now();
                self.core.tracer.emit_with(|| TraceEvent::TimerFire {
                    time: now,
                    node: node.0 as u64,
                    token,
                });
                self.with_proto(node, "on_timer", |p, api| p.on_timer(api, token));
            }
            Event::AppSend { session, seq } => {
                let s = self.core.sessions[session.0 as usize];
                let now = self.core.queue.now();
                // Under the no-update condition, the destination's served
                // position freezes when its session first sends.
                if !self.started_sessions[session.0 as usize] {
                    self.started_sessions[session.0 as usize] = true;
                    if self.core.cfg.location == LocationPolicy::SessionStart {
                        self.core.location.freeze(s.dst);
                    }
                }
                let bytes = self.core.cfg.traffic.packet_bytes;
                let pkt = self
                    .core
                    .metrics
                    .register_packet(session, seq, s.src, s.dst, now, bytes);
                self.core.stats.registry.inc(self.core.stats.app_packets);
                self.core.tracer.emit_with(|| TraceEvent::AppSend {
                    time: now,
                    packet: pkt.0,
                    session: u64::from(session.0),
                    seq: u64::from(seq),
                    src: s.src.0 as u64,
                    dst: s.dst.0 as u64,
                });
                let req = DataRequest {
                    packet: pkt,
                    session,
                    seq,
                    dst: s.dst,
                    bytes,
                };
                if self.core.is_down(s.src) {
                    // The application layer still generates the packet (it
                    // counts against delivery), but a crashed source can't
                    // put it on the air.
                    self.core
                        .drop_frame(s.src, DropReason::SourceNodeDown, Some(pkt));
                } else {
                    self.with_proto(s.src, "on_data_request", |p, api| {
                        p.on_data_request(api, &req)
                    });
                }
                let next = now + self.core.cfg.traffic.interval_s;
                if next < self.core.cfg.duration_s {
                    self.core.queue.schedule(
                        next,
                        Event::AppSend {
                            session,
                            seq: seq + 1,
                        },
                    );
                }
            }
            Event::MobilityTick => {
                self.emit_tick(TickKind::Mobility);
                let dt = self.core.cfg.mobility_tick_s;
                self.core.mobility.step(dt);
                self.core.refresh_positions();
                self.core.update_grid();
                if self.core.queue.now() + dt <= self.core.cfg.duration_s {
                    self.core.queue.schedule_in(dt, Event::MobilityTick);
                }
            }
            Event::HelloTick => {
                self.emit_tick(TickKind::Hello);
                self.core.hello_tick();
                // Take the lost list out (the hook needs `&mut self`) and
                // hand the buffer back afterwards, capacity intact.
                let mut lost = std::mem::take(&mut self.core.hello_scratch.lost);
                for (node, entry) in &lost {
                    self.with_proto(*node, "on_neighbor_lost", |p, api| {
                        p.on_neighbor_lost(api, entry)
                    });
                }
                lost.clear();
                self.core.hello_scratch.lost = lost;
                let dt = self.core.cfg.hello_interval_s;
                if self.core.queue.now() + dt <= self.core.cfg.duration_s {
                    self.core.queue.schedule_in(dt, Event::HelloTick);
                }
            }
            Event::LocationTick => {
                self.emit_tick(TickKind::Location);
                self.core.location_tick();
                let dt = match self.core.cfg.location {
                    LocationPolicy::Periodic { interval_s } => interval_s,
                    LocationPolicy::SessionStart => 1.0,
                };
                if self.core.queue.now() + dt <= self.core.cfg.duration_s {
                    self.core.queue.schedule_in(dt, Event::LocationTick);
                }
            }
            Event::NodeDown { node } => {
                self.apply_node_down(node);
            }
            Event::NodeUp { node } => {
                self.apply_node_up(node);
            }
            Event::RegionOutage { index } => {
                // Resolve victims from the geometry at outage start.
                let r = self.core.cfg.faults.regional_outages[index];
                let rect = Rect::new(Point::new(r.x, r.y), Point::new(r.x + r.w, r.y + r.h));
                let victims: Vec<NodeId> = (0..self.core.cfg.nodes)
                    .map(NodeId)
                    .filter(|&n| rect.contains(self.core.position(n)))
                    .collect();
                for &n in &victims {
                    self.apply_node_down(n);
                }
                self.core.region_victims[index] = victims;
            }
            Event::RegionRecover { index } => {
                let victims = std::mem::take(&mut self.core.region_victims[index]);
                for n in victims {
                    self.apply_node_up(n);
                }
            }
            Event::EnergyDeplete { node } => {
                // Battery exhausted: a crash with no recovery. Nesting
                // through `down_depth` keeps overlap with fault-plan
                // outages correct — a later fault recovery shallows the
                // outage but cannot revive a drained node.
                self.apply_node_down(node);
            }
            Event::Retry {
                from,
                to,
                msg,
                bytes,
                class,
                packet,
                attempt,
            } => {
                if self.core.is_down(from) {
                    // The sender crashed while the frame sat in its
                    // retransmit queue; the queue died with it.
                    self.core
                        .drop_frame(from, DropReason::Protocol("arq_sender_down"), packet);
                } else {
                    self.core.transmit(
                        from,
                        TxDest::Unicast(to),
                        msg,
                        bytes,
                        0.0,
                        class,
                        packet,
                        attempt,
                    );
                }
            }
        }
    }

    /// Crashes `node` (or deepens an existing outage). Only the 0→1 depth
    /// transition is observable: counters, trace, and state wipe.
    fn apply_node_down(&mut self, node: NodeId) {
        self.core.down_depth[node.0] += 1;
        if self.core.down_depth[node.0] != 1 {
            return;
        }
        self.core.stats.registry.inc(self.core.stats.node_downs);
        let now = self.core.queue.now();
        self.core.tracer.emit_with(|| TraceEvent::NodeDown {
            time: now,
            node: node.0 as u64,
        });
        // Volatile runtime state dies with the node.
        self.core.nodes[node.0].neighbors.clear();
        self.core.tx_busy_until[node.0] = 0.0;
    }

    /// Recovers `node` (or shallows an outage). Only the 1→0 transition is
    /// observable: the node rejoins with a wiped neighbor table, a new
    /// incarnation (so pre-crash timers stay dead), and a restarted
    /// protocol (`on_start` re-runs on the retained instance — a warm
    /// reboot).
    fn apply_node_up(&mut self, node: NodeId) {
        let depth = &mut self.core.down_depth[node.0];
        *depth = depth.saturating_sub(1);
        if *depth != 0 {
            return;
        }
        self.core.stats.registry.inc(self.core.stats.node_ups);
        let now = self.core.queue.now();
        self.core.tracer.emit_with(|| TraceEvent::NodeUp {
            time: now,
            node: node.0 as u64,
        });
        self.core.epochs[node.0] = self.core.epochs[node.0].wrapping_add(1);
        self.with_proto(node, "on_start", |p, api| p.on_start(api));
    }

    fn emit_tick(&mut self, kind: TickKind) {
        let time = self.core.queue.now();
        self.core
            .tracer
            .emit_with(|| TraceEvent::Tick { time, kind });
    }

    /// Checks the event, sim-time, and wall-clock budgets before the next
    /// event (at time `next`) is popped. Only called on budgeted runs.
    fn check_budget(&self, budget: &RunBudget, next: f64) -> Result<(), RunAbort> {
        if let Some(max) = budget.max_events {
            if self.events_dispatched >= max {
                return Err(RunAbort::EventBudgetExhausted {
                    budget: max,
                    time: self.core.queue.now(),
                });
            }
        }
        if let Some(cap) = budget.max_sim_seconds {
            if next > cap {
                return Err(RunAbort::SimTimeBudgetExhausted {
                    budget_s: cap,
                    time: self.core.queue.now(),
                });
            }
        }
        if let Some(cap) = budget.max_wall_seconds {
            // Amortized: Instant::now() is syscall-backed, so only probe
            // every WALL_CHECK_INTERVAL events.
            if self.events_dispatched % WALL_CHECK_INTERVAL == 0 {
                if let Some(start) = self.wall_start {
                    if start.elapsed().as_secs_f64() > cap {
                        return Err(RunAbort::WallClockExceeded {
                            budget_s: cap,
                            time: self.core.queue.now(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Records an abort: sticky state, the `run.aborts` counter, and the
    /// trailing `TraceEvent::RunAborted` (flushed, so a truncated trace
    /// still carries its own explanation).
    fn abort_run(&mut self, abort: &RunAbort) {
        self.aborted = Some(abort.clone());
        self.core.stats.registry.inc(self.core.stats.run_aborts);
        let time = self.core.queue.now();
        let events = self.events_dispatched;
        let reason = abort.reason();
        self.core.tracer.emit_with(|| TraceEvent::RunAborted {
            time,
            reason: reason.to_owned(),
            events,
        });
        self.core.tracer.flush();
    }

    /// Processes events up to simulated time `t` (capped at the scenario
    /// duration plus a grace second for in-flight frames), enforcing the
    /// scenario's [`RunBudget`]. Returns `Ok(false)` when the event queue
    /// has drained, `Ok(true)` when `t` was reached first, and
    /// `Err(RunAbort)` when a guardrail tripped (the abort is also
    /// recorded in the trace, the `run.aborts` counter, and
    /// [`World::aborted`]). Budget checks never touch the RNG, so a
    /// budgeted run's trace is a prefix of the unbudgeted run's trace
    /// (plus the final `run_aborted` record).
    pub fn try_run_until(&mut self, t: f64) -> Result<bool, RunAbort> {
        if let Some(abort) = &self.aborted {
            return Err(abort.clone());
        }
        if !self.started {
            // Deferred startup sweep: runs before the first event is
            // dispatched (so the RNG stream matches a construction-time
            // sweep) but after the caller had a chance to attach sinks,
            // observers, and audits — startup-frame traffic is traced.
            self.started = true;
            for i in 0..self.core.cfg.nodes {
                self.with_proto(NodeId(i), "on_start", |p, api| p.on_start(api));
            }
        }
        let horizon = t.min(self.core.cfg.duration_s + 1.0);
        let budget = self.core.cfg.budget;
        let guarded = !budget.is_unlimited();
        if guarded && self.wall_start.is_none() {
            self.wall_start = Some(std::time::Instant::now());
        }
        while let Some(next) = self.core.queue.peek_time() {
            if next > horizon {
                return Ok(true);
            }
            // Metrics sampling: once the clock is about to move past a
            // window boundary, every event in that window has been
            // dispatched, so the registry snapshot at the boundary is
            // final. Events at exactly `k·every_s` belong to the window
            // they end. Disabled (`None`) this is one branch — no
            // allocation, no RNG draw — so sampled and unsampled runs
            // stay byte-identical in trace and RNG stream.
            if let Some(s) = self.sampler.as_mut() {
                while next > s.next_t {
                    s.series
                        .record(s.next_t, &self.core.stats.registry.snapshot());
                    s.next_t += s.series.every_s;
                }
            }
            if guarded {
                if let Err(abort) = self.check_budget(&budget, next) {
                    self.abort_run(&abort);
                    return Err(abort);
                }
            }
            let (_, ev) = self.core.queue.pop().expect("peeked");
            if guarded {
                if let Some(max) = budget.max_events_per_instant {
                    let streak = self.core.queue.pops_at_now();
                    if streak > max {
                        let abort = RunAbort::Livelock {
                            events_at_instant: streak,
                            time: self.core.queue.now(),
                        };
                        self.abort_run(&abort);
                        return Err(abort);
                    }
                }
            }
            self.events_dispatched += 1;
            if self.profile_enabled {
                let kind = ev.kind_name();
                let start = std::time::Instant::now();
                self.dispatch(ev);
                let dt = start.elapsed().as_secs_f64();
                self.profile_wall_s += dt;
                let entry = self.profile_callbacks.entry(kind.to_owned()).or_default();
                entry.count += 1;
                entry.seconds += dt;
            } else {
                self.dispatch(ev);
            }
        }
        self.core.tracer.flush();
        Ok(false)
    }

    /// Runs the scenario to completion, enforcing the scenario's
    /// [`RunBudget`]; see [`World::try_run_until`].
    pub fn try_run(&mut self) -> Result<(), RunAbort> {
        self.try_run_until(f64::INFINITY).map(|_| ())
    }

    /// Processes events up to simulated time `t`; returns `false` when
    /// the event queue has drained.
    ///
    /// # Panics
    /// Panics when a [`RunBudget`] guardrail aborts the run; use
    /// [`World::try_run_until`] to handle aborts as values.
    pub fn run_until(&mut self, t: f64) -> bool {
        match self.try_run_until(t) {
            Ok(more) => more,
            Err(abort) => panic!("run aborted: {abort}"),
        }
    }

    /// Runs the scenario to completion (duration plus in-flight grace).
    ///
    /// # Panics
    /// Panics when a [`RunBudget`] guardrail aborts the run; use
    /// [`World::try_run`] to handle aborts as values.
    pub fn run(&mut self) {
        self.run_until(f64::INFINITY);
    }

    /// The guardrail abort that ended this run, if any.
    pub fn aborted(&self) -> Option<&RunAbort> {
        self.aborted.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.core.queue.now()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The S–D sessions of this run.
    pub fn sessions(&self) -> &[Session] {
        &self.core.sessions
    }

    /// Ground-truth position of a node (experimenter access).
    pub fn position(&self, node: NodeId) -> Point {
        self.core.position(node)
    }

    /// Ground-truth ids of all nodes within `radius` metres of `center`
    /// (e.g. the physical recipients of a broadcast from that point).
    pub fn nodes_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        (0..self.core.cfg.nodes)
            .filter(|&i| self.core.positions[i].distance(center) <= radius)
            .map(NodeId)
            .collect()
    }

    /// Ground-truth ids of all nodes currently inside `zone`.
    pub fn nodes_in_zone(&self, zone: &Rect) -> Vec<NodeId> {
        (0..self.core.cfg.nodes)
            .filter(|&i| zone.contains(self.core.positions[i]))
            .map(NodeId)
            .collect()
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.core.cfg
    }

    /// The location service (message accounting, policy).
    pub fn location(&self) -> &LocationService {
        &self.core.location
    }

    /// Remaining battery per node in joules, or `None` when the scenario
    /// has no energy budget ([`crate::EnergyConfig`] `initial_j` unset).
    pub fn energy_remaining(&self) -> Option<&[f64]> {
        if self.core.energy_j.is_empty() {
            None
        } else {
            Some(&self.core.energy_j)
        }
    }

    /// Whether `node` was elected a cluster head in the most recent hello
    /// round. Always `false` for unmetered scenarios.
    pub fn is_cluster_head(&self, node: NodeId) -> bool {
        self.core.cluster_head.get(node.0).copied().unwrap_or(false)
    }

    /// Read access to a node's protocol instance (experiment analysis).
    pub fn protocol(&self, node: NodeId) -> &P {
        self.protos[node.0].as_ref().expect("protocol in flight")
    }

    /// A node's current pseudonym (experimenter access).
    pub fn node_pseudonym(&self, node: NodeId) -> Pseudonym {
        self.core.cur_pseudonyms[node.0]
    }

    /// Resolves a pseudonym (current or grace predecessor) to its owner.
    pub fn pseudonym_owner(&self, pseudonym: Pseudonym) -> Option<NodeId> {
        self.core.pseudonym_map.get(&pseudonym).copied()
    }

    /// Installs a trace sink; every subsequent simulator step emits
    /// [`TraceEvent`]s into it. Returns the previous sink, if any.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.core.tracer.set(sink)
    }

    /// Flushes and removes the trace sink, disabling tracing.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.core.tracer.flush();
        self.core.tracer.take()
    }

    /// Whether a trace sink is currently installed.
    pub fn trace_enabled(&self) -> bool {
        self.core.tracer.is_enabled()
    }

    /// Turns on wall-clock profiling of the dispatch loop (small per-event
    /// overhead; off by default).
    pub fn enable_profiling(&mut self) {
        self.profile_enabled = true;
    }

    /// Turns on periodic registry sampling into an `alert-timeseries/1`
    /// series: a [`alert_trace::RegistrySnapshot`] is taken every
    /// `every_s` simulated seconds (sample `t = k·every_s` covers the
    /// window `((k-1)·every_s, k·every_s]`). Sampling draws no randomness
    /// and emits no trace events, so a sampled run's trace is
    /// byte-identical to an unsampled one. Replaces any previous sampler.
    ///
    /// # Panics
    /// If `every_s` is not finite and positive.
    pub fn enable_metrics_timeseries(&mut self, every_s: f64) {
        self.sampler = Some(TimeseriesSampler {
            next_t: every_s,
            series: MetricsTimeseries::new(every_s),
        });
    }

    /// Stops sampling and returns the collected series, appending a final
    /// partial sample at the current simulated time when the run ended
    /// past the last window boundary (so the series' last cumulative row
    /// always equals the whole-run registry totals). Returns `None` when
    /// [`World::enable_metrics_timeseries`] was never called.
    pub fn take_metrics_timeseries(&mut self) -> Option<MetricsTimeseries> {
        let mut s = self.sampler.take()?;
        let now = self.core.queue.now();
        if s.series
            .samples
            .last()
            .map_or(now > 0.0, |last| now > last.t)
        {
            s.series.record(now, &self.core.stats.registry.snapshot());
        }
        Some(s.series)
    }

    /// Whether periodic metrics sampling is currently enabled.
    pub fn metrics_timeseries_enabled(&self) -> bool {
        self.sampler.is_some()
    }

    /// Total events popped from the future event list so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Peak number of simultaneously pending events (FEL high-water mark).
    pub fn fel_high_water(&self) -> usize {
        self.core.queue.high_water()
    }

    /// Snapshot of the run's typed counters and histograms.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        self.core.stats.registry.snapshot()
    }

    /// Current value of a registry counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.core.stats.registry.counter_value(name)
    }

    /// Builds the run's [`RunProfile`]. Wall-clock fields are only
    /// populated when [`World::enable_profiling`] was called before the
    /// run; the deterministic fields (event counts, FEL high-water mark,
    /// registry) are always filled.
    pub fn run_profile(&self) -> RunProfile {
        let mut p = RunProfile {
            wall_clock_s: self.profile_wall_s,
            sim_time_s: self.core.queue.now(),
            events_dispatched: self.events_dispatched,
            events_per_sec: 0.0,
            fel_high_water: self.core.queue.high_water() as u64,
            callbacks: self.profile_callbacks.clone(),
            spans: self.profile_spans.clone(),
            registry: self.core.stats.registry.snapshot(),
        };
        p.finalize();
        p
    }
}

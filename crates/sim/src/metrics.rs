//! Ground-truth instrumentation for the paper's six evaluation metrics
//! (Section 5.2): actual participating nodes, random forwarders, remaining
//! nodes in the destination zone, hops per packet, latency per packet, and
//! delivery rate.

use crate::ids::{NodeId, PacketId, SessionId};
use alert_crypto::CryptoOps;
use alert_trace::DropReason;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-application-packet record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Which S–D pair this packet belongs to.
    pub session: SessionId,
    /// Sequence number of the packet within its session.
    pub seq: u32,
    /// True source node.
    pub src: NodeId,
    /// True destination node.
    pub dst: NodeId,
    /// Application send time in seconds.
    pub sent_at: f64,
    /// Payload size in bytes.
    pub bytes: usize,
    /// First time the true destination received it, if ever.
    pub delivered_at: Option<f64>,
    /// Number of wireless transmissions this packet incurred (the paper's
    /// accumulated hop count; broadcasts count once per transmission).
    pub hops: u32,
    /// Number of random forwarders on the path (ALERT only; zero for the
    /// greedy baselines).
    pub random_forwarders: u32,
    /// Every node that transmitted this packet (ground truth, ordered).
    pub participants: Vec<NodeId>,
}

impl PacketRecord {
    /// End-to-end latency in seconds, when delivered.
    pub fn latency(&self) -> Option<f64> {
        self.delivered_at.map(|t| t - self.sent_at)
    }
}

/// All measurements from a single simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// One record per application packet, indexed by [`PacketId`].
    pub packets: Vec<PacketRecord>,
    /// Control-plane frames (hello beacons, ALARM dissemination, AO2P
    /// contention, notify-and-go notifications...).
    pub control_frames: u64,
    /// Total control-plane bytes.
    pub control_bytes: u64,
    /// Control-plane transmissions counted as routing hops (the paper adds
    /// ALARM's id-dissemination hops to its per-packet hop metric).
    pub control_hops: u64,
    /// Cover-traffic frames from "notify and go" (Section 2.6).
    pub cover_frames: u64,
    /// Location-service messages (lookups + position updates).
    pub location_messages: u64,
    /// Crypto operations performed across all nodes.
    pub crypto: CryptoOps,
    /// Packet-drop events by reason (diagnostics; a packet can appear
    /// under several reasons across retransmission attempts).
    pub drops: std::collections::BTreeMap<String, u64>,
    /// Radio energy spent transmitting, joules (airtime x tx power, all
    /// traffic classes including beacons and cover packets).
    pub energy_tx_j: f64,
    /// Radio energy spent receiving, joules (one receive per resolved
    /// frame delivery).
    pub energy_rx_j: f64,
    /// Per-node energy-meter accounting; all-zero unless the scenario arms
    /// `energy.initial_j` (the serde default keeps old snapshots loading).
    #[serde(default)]
    pub node_energy: NodeEnergyAccounting,
}

/// Drain accounting for the per-node energy meter, split by cause. The
/// energy-conservation oracle checks `drained_j == tx + rx + idle + beacon`
/// and that drained energy equals the sum of what every meter lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeEnergyAccounting {
    /// Total joules drained from all meters, all causes.
    pub drained_j: f64,
    /// Joules drained by data-plane transmissions.
    pub tx_j: f64,
    /// Joules drained by data-plane receptions.
    pub rx_j: f64,
    /// Joules drained by idle baseline draw.
    pub idle_j: f64,
    /// Joules drained by hello beaconing (tx and rx sides).
    pub beacon_j: f64,
    /// Nodes that ran their meter to zero and died.
    pub deaths: u64,
}

impl Metrics {
    /// Registers a new application packet; returns its id.
    pub fn register_packet(
        &mut self,
        session: SessionId,
        seq: u32,
        src: NodeId,
        dst: NodeId,
        sent_at: f64,
        bytes: usize,
    ) -> PacketId {
        let id = PacketId(self.packets.len() as u64);
        self.packets.push(PacketRecord {
            session,
            seq,
            src,
            dst,
            sent_at,
            bytes,
            delivered_at: None,
            hops: 0,
            random_forwarders: 0,
            participants: Vec::new(),
        });
        id
    }

    /// Records one wireless transmission of packet `id` by `node`.
    pub fn record_hop(&mut self, id: PacketId, node: NodeId) {
        let r = &mut self.packets[id.0 as usize];
        r.hops += 1;
        // Participants are kept in transmission order, deduplicated.
        if !r.participants.contains(&node) {
            r.participants.push(node);
        }
    }

    /// Marks `node` as a random forwarder for packet `id`.
    pub fn record_random_forwarder(&mut self, id: PacketId, node: NodeId) {
        let r = &mut self.packets[id.0 as usize];
        r.random_forwarders += 1;
        if !r.participants.contains(&node) {
            r.participants.push(node);
        }
    }

    /// Records the first delivery of packet `id` to the true destination.
    /// Duplicate deliveries (rebroadcasts in the destination zone) are
    /// ignored.
    pub fn record_delivery(&mut self, id: PacketId, at: f64) {
        let r = &mut self.packets[id.0 as usize];
        if r.delivered_at.is_none() {
            r.delivered_at = Some(at);
        }
    }

    /// Fraction of packets delivered to their true destination.
    ///
    /// A zero-traffic run (no application packets) reports `0.0`, never
    /// NaN — all `f64` ratio helpers on [`Metrics`] share this contract
    /// so sweep reductions cannot be poisoned by an idle scenario. The
    /// one exception is [`Metrics::energy_per_delivered_packet_j`],
    /// whose NaN-on-zero-delivered behaviour is documented there.
    pub fn delivery_rate(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let delivered = self
            .packets
            .iter()
            .filter(|p| p.delivered_at.is_some())
            .count();
        delivered as f64 / self.packets.len() as f64
    }

    /// Mean end-to-end latency over delivered packets, seconds.
    pub fn mean_latency(&self) -> Option<f64> {
        let lats: Vec<f64> = self.packets.iter().filter_map(|p| p.latency()).collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<f64>() / lats.len() as f64)
        }
    }

    /// The paper's hops-per-packet: accumulated data-plane hop counts
    /// divided by the number of packets sent. `0.0` when no packets were
    /// sent (see [`Metrics::delivery_rate`] for the shared contract).
    pub fn hops_per_packet(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let hops: u64 = self.packets.iter().map(|p| u64::from(p.hops)).sum();
        hops as f64 / self.packets.len() as f64
    }

    /// Hops-per-packet including control-plane hops — the paper's
    /// "ALARM (include id dissemination hops)" variant (Fig. 15). `0.0`
    /// when no packets were sent.
    pub fn hops_per_packet_with_control(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let hops: u64 = self.packets.iter().map(|p| u64::from(p.hops)).sum();
        (hops + self.control_hops) as f64 / self.packets.len() as f64
    }

    /// Mean number of random forwarders per packet. `0.0` when no
    /// packets were sent.
    pub fn mean_random_forwarders(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let rfs: u64 = self
            .packets
            .iter()
            .map(|p| u64::from(p.random_forwarders))
            .sum();
        rfs as f64 / self.packets.len() as f64
    }

    /// Cumulative actual-participating-node counts for one session: entry
    /// `i` is the size of the union of participant sets over the first
    /// `i + 1` packets of the session (Fig. 10a's y-axis, per pair).
    pub fn cumulative_participants(&self, session: SessionId) -> Vec<usize> {
        let mut union: BTreeSet<NodeId> = BTreeSet::new();
        let mut out = Vec::new();
        let mut pkts: Vec<&PacketRecord> = self
            .packets
            .iter()
            .filter(|p| p.session == session)
            .collect();
        pkts.sort_by_key(|a| a.seq);
        for p in pkts {
            union.extend(p.participants.iter().copied());
            out.push(union.len());
        }
        out
    }

    /// Mean cumulative-participant curve across all sessions, truncated to
    /// the shortest session.
    pub fn mean_cumulative_participants(&self) -> Vec<f64> {
        let sessions: BTreeSet<SessionId> = self.packets.iter().map(|p| p.session).collect();
        let curves: Vec<Vec<usize>> = sessions
            .iter()
            .map(|s| self.cumulative_participants(*s))
            .filter(|c| !c.is_empty())
            .collect();
        if curves.is_empty() {
            return Vec::new();
        }
        let n = curves.iter().map(Vec::len).min().unwrap_or(0);
        (0..n)
            .map(|i| curves.iter().map(|c| c[i] as f64).sum::<f64>() / curves.len() as f64)
            .collect()
    }

    /// Number of application packets sent.
    pub fn packets_sent(&self) -> usize {
        self.packets.len()
    }

    /// Records a drop event under `reason`.
    ///
    /// Accepts the typed [`DropReason`] or a `&'static str` (canonicalised
    /// through [`DropReason::from`]); both produce the same stable string
    /// keys in [`Metrics::drops`].
    pub fn record_drop(&mut self, reason: impl Into<DropReason>) {
        *self
            .drops
            .entry(reason.into().as_str().to_owned())
            .or_insert(0) += 1;
    }

    /// The number of drops recorded under `reason` (0 if none).
    pub fn drop_count(&self, reason: impl Into<DropReason>) -> u64 {
        self.drops.get(reason.into().as_str()).copied().unwrap_or(0)
    }

    /// The `p`-th percentile of end-to-end latency over delivered packets
    /// (`p` in [0, 100], nearest-rank). `None` when nothing was delivered.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile in [0, 100]");
        let mut lats: Vec<f64> = self.packets.iter().filter_map(|pk| pk.latency()).collect();
        if lats.is_empty() {
            return None;
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((p / 100.0) * (lats.len() - 1) as f64).round() as usize;
        Some(lats[rank])
    }

    /// A one-paragraph human-readable summary of this run, suitable for
    /// CLI output and logs.
    pub fn summary(&self) -> String {
        let lat = |p: f64| {
            self.latency_percentile(p)
                .map_or("-".into(), |v| format!("{:.1}", v * 1000.0))
        };
        format!(
            "packets {} | delivery {:.3} | latency ms p50/p90/p99 {}/{}/{} | \
hops/pkt {:.2} | RFs/pkt {:.2} | control frames {} | cover {} | drops {:?}",
            self.packets_sent(),
            self.delivery_rate(),
            lat(50.0),
            lat(90.0),
            lat(99.0),
            self.hops_per_packet(),
            self.mean_random_forwarders(),
            self.control_frames,
            self.cover_frames,
            self.drops,
        )
    }

    /// CPU energy implied by the recorded crypto operations under the
    /// given cost and power models, joules.
    pub fn cpu_energy_j(&self, cost: &alert_crypto::CostModel, cpu_watts: f64) -> f64 {
        self.crypto.total_seconds(cost) * cpu_watts
    }

    /// Total network energy per *delivered* packet, joules — radio
    /// transmit + receive + crypto CPU. The paper's summary claim
    /// ("significantly lower energy consumption compared to AO2P and
    /// ALARM") is about this quantity.
    ///
    /// Unlike the per-*sent* ratios, this deliberately returns NaN when
    /// nothing was delivered: energy was spent, so reporting `0.0` would
    /// read as "free", and there is no packet count to amortize over.
    /// Sweep reductions handle this — `Stat::from_samples` discards
    /// non-finite samples and counts them in `Stat::discarded`.
    pub fn energy_per_delivered_packet_j(
        &self,
        cost: &alert_crypto::CostModel,
        cpu_watts: f64,
    ) -> f64 {
        let delivered = self
            .packets
            .iter()
            .filter(|p| p.delivered_at.is_some())
            .count();
        if delivered == 0 {
            return f64::NAN;
        }
        (self.energy_tx_j + self.energy_rx_j + self.cpu_energy_j(cost, cpu_watts))
            / delivered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(m: &mut Metrics, session: u32, seq: u32) -> PacketId {
        m.register_packet(
            SessionId(session),
            seq,
            NodeId(0),
            NodeId(1),
            seq as f64,
            512,
        )
    }

    #[test]
    fn delivery_rate_counts_first_delivery_only() {
        let mut m = Metrics::default();
        let a = pid(&mut m, 0, 0);
        let _b = pid(&mut m, 0, 1);
        m.record_delivery(a, 1.5);
        m.record_delivery(a, 2.5); // duplicate, ignored
        assert_eq!(m.delivery_rate(), 0.5);
        assert_eq!(m.packets[0].delivered_at, Some(1.5));
        assert_eq!(m.mean_latency(), Some(1.5));
    }

    #[test]
    fn hops_per_packet_divides_by_all_sent() {
        let mut m = Metrics::default();
        let a = pid(&mut m, 0, 0);
        let _b = pid(&mut m, 0, 1); // never forwarded
        for n in [2, 3, 4] {
            m.record_hop(a, NodeId(n));
        }
        assert_eq!(m.hops_per_packet(), 1.5);
        m.control_hops = 3;
        assert_eq!(m.hops_per_packet_with_control(), 3.0);
    }

    #[test]
    fn participants_deduplicate() {
        let mut m = Metrics::default();
        let a = pid(&mut m, 0, 0);
        m.record_hop(a, NodeId(5));
        m.record_hop(a, NodeId(5));
        m.record_random_forwarder(a, NodeId(5));
        m.record_hop(a, NodeId(6));
        assert_eq!(m.packets[0].participants, vec![NodeId(5), NodeId(6)]);
        assert_eq!(m.packets[0].hops, 3);
        assert_eq!(m.packets[0].random_forwarders, 1);
    }

    #[test]
    fn cumulative_participants_grows_monotonically() {
        let mut m = Metrics::default();
        let a = pid(&mut m, 0, 0);
        let b = pid(&mut m, 0, 1);
        let c = pid(&mut m, 0, 2);
        m.record_hop(a, NodeId(10));
        m.record_hop(a, NodeId(11));
        m.record_hop(b, NodeId(11)); // no new nodes
        m.record_hop(c, NodeId(12));
        assert_eq!(m.cumulative_participants(SessionId(0)), vec![2, 2, 3]);
    }

    #[test]
    fn mean_cumulative_truncates_to_shortest() {
        let mut m = Metrics::default();
        let a = pid(&mut m, 0, 0);
        let b = pid(&mut m, 1, 0);
        let c = pid(&mut m, 1, 1);
        m.record_hop(a, NodeId(1));
        m.record_hop(b, NodeId(2));
        m.record_hop(c, NodeId(3));
        // session 0 has 1 packet, session 1 has 2: curve truncates to 1.
        assert_eq!(m.mean_cumulative_participants(), vec![1.0]);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let mut m = Metrics::default();
        for i in 0..10u32 {
            let id = pid(&mut m, 0, i);
            // latencies 0.01 .. 0.10
            m.record_delivery(id, i as f64 + 0.01 * (i + 1) as f64);
        }
        let p50 = m.latency_percentile(50.0).unwrap();
        assert!((p50 - 0.06).abs() < 1e-9, "p50 {p50}");
        let p0 = m.latency_percentile(0.0).unwrap();
        assert!((p0 - 0.01).abs() < 1e-9);
        let p100 = m.latency_percentile(100.0).unwrap();
        assert!((p100 - 0.10).abs() < 1e-9);
        assert!(m.latency_percentile(90.0).unwrap() >= p50);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        let m = Metrics::default();
        assert!(m.latency_percentile(50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        Metrics::default().latency_percentile(150.0);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let mut m = Metrics::default();
        let id = pid(&mut m, 0, 0);
        m.record_delivery(id, 0.5);
        let text = m.summary();
        assert!(text.contains("delivery 1.000"));
        assert!(text.contains("p50"));
    }

    #[test]
    fn typed_and_string_drops_share_keys() {
        let mut m = Metrics::default();
        m.record_drop("unicast_out_of_range");
        m.record_drop(DropReason::UnicastOutOfRange);
        m.record_drop("custom_protocol_reason");
        assert_eq!(m.drops["unicast_out_of_range"], 2);
        assert_eq!(m.drop_count(DropReason::UnicastOutOfRange), 2);
        assert_eq!(m.drop_count("custom_protocol_reason"), 1);
        assert_eq!(m.drop_count("never_seen"), 0);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = Metrics::default();
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.mean_latency(), None);
        assert_eq!(m.hops_per_packet(), 0.0);
        assert!(m.mean_cumulative_participants().is_empty());
    }

    #[test]
    fn zero_traffic_ratios_are_zero_not_nan() {
        // The documented contract: every per-sent ratio reports 0.0 on a
        // zero-traffic run, so sweeps over idle scenarios stay finite.
        let m = Metrics::default();
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.hops_per_packet(), 0.0);
        assert_eq!(m.hops_per_packet_with_control(), 0.0);
        assert_eq!(m.mean_random_forwarders(), 0.0);
        assert_eq!(m.latency_percentile(50.0), None);
    }

    #[test]
    fn energy_per_delivered_is_nan_without_deliveries() {
        // The documented exception: energy cannot be amortized over zero
        // delivered packets, and 0.0 would misread as "free".
        let mut m = Metrics::default();
        m.energy_tx_j = 3.0;
        assert!(m
            .energy_per_delivered_packet_j(&alert_crypto::CostModel::PAPER_1_8GHZ, 0.5)
            .is_nan());
        // An undelivered packet doesn't change that.
        pid(&mut m, 0, 0);
        assert!(m
            .energy_per_delivered_packet_j(&alert_crypto::CostModel::PAPER_1_8GHZ, 0.5)
            .is_nan());
    }
}

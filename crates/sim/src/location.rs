//! The (secure) location service (paper Section 2.2).
//!
//! The paper assumes trusted location servers that map a node's *identity*
//! to its current position, public key, and pseudonym; sources query it
//! once per session, and nodes periodically update their position. The
//! evaluation's "with/without destination update" conditions (Figs. 14–16)
//! toggle whether positions keep refreshing during a session.
//!
//! We model the service as ground-truth state filtered through a freshness
//! policy, plus message accounting for the overhead analysis at the end of
//! Section 4.3.

use crate::config::LocationPolicy;
use crate::ids::NodeId;
use alert_crypto::{Pseudonym, PublicKey};
use alert_geom::Point;
use serde::{Deserialize, Serialize};

/// What a lookup returns: everything the paper lets a source learn about a
/// destination (Section 2.2: "the public key and location of the
/// destination ... can be known by others, but its real identity requires
/// protection").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationInfo {
    /// Destination position as registered at the server (possibly stale).
    pub position: Point,
    /// Time the position was registered.
    pub registered_at: f64,
    /// The node's public key.
    pub public_key: PublicKey,
    /// The node's current pseudonym.
    pub pseudonym: Pseudonym,
}

#[derive(Debug, Clone)]
struct Registration {
    position: Point,
    registered_at: f64,
    public_key: PublicKey,
    pseudonym: Pseudonym,
    /// Position frozen at session start under `LocationPolicy::SessionStart`.
    frozen: Option<Point>,
}

/// The location service for one simulation run.
#[derive(Debug, Clone)]
pub struct LocationService {
    policy: LocationPolicy,
    entries: Vec<Option<Registration>>,
    /// Messages exchanged with the service (updates + 2 per lookup).
    pub messages: u64,
    /// Number of replicated location servers (`N_L` in Section 4.3);
    /// only used for the overhead accounting model.
    pub servers: usize,
}

impl LocationService {
    /// Creates an empty service for `nodes` nodes. `servers` defaults to
    /// `sqrt(nodes)` per the paper's feasibility argument (Section 4.3).
    pub fn new(nodes: usize, policy: LocationPolicy) -> Self {
        LocationService {
            policy,
            entries: vec![None; nodes],
            messages: 0,
            servers: (nodes as f64).sqrt().round().max(1.0) as usize,
        }
    }

    /// The freshness policy in force.
    pub fn policy(&self) -> LocationPolicy {
        self.policy
    }

    /// Registers or refreshes a node's record (the periodic position
    /// update every node sends to its server). Under `SessionStart`, the
    /// *served* position stays frozen once [`LocationService::freeze`] has
    /// been called, but key/pseudonym refreshes still propagate.
    pub fn update(
        &mut self,
        node: NodeId,
        position: Point,
        public_key: PublicKey,
        pseudonym: Pseudonym,
        now: f64,
    ) {
        self.messages += 1;
        let frozen = self.entries[node.0].as_ref().and_then(|r| r.frozen);
        self.entries[node.0] = Some(Registration {
            position,
            registered_at: now,
            public_key,
            pseudonym,
            frozen,
        });
    }

    /// Freezes the served position of `node` at its current registration
    /// (called at session start under the "without destination update"
    /// condition).
    pub fn freeze(&mut self, node: NodeId) {
        if let Some(r) = self.entries[node.0].as_mut() {
            r.frozen = Some(r.position);
        }
    }

    /// Queries the service for `node`. Counts two messages (request and
    /// encrypted response, Section 2.2).
    pub fn lookup(&mut self, node: NodeId) -> Option<LocationInfo> {
        self.messages += 2;
        let r = self.entries[node.0].as_ref()?;
        let position = match self.policy {
            LocationPolicy::Periodic { .. } => r.position,
            LocationPolicy::SessionStart => r.frozen.unwrap_or(r.position),
        };
        Some(LocationInfo {
            position,
            registered_at: r.registered_at,
            public_key: r.public_key,
            pseudonym: r.pseudonym,
        })
    }

    /// The overhead ratio of Section 4.3:
    /// `(N_L (N_L - 1) f + N f) / (N F)` — the fraction of total traffic
    /// spent on the location service, which must be `<< 1` for ALERT to be
    /// usable. `f` is the update frequency and `F` the regular
    /// communication frequency, both in Hz.
    pub fn overhead_ratio(&self, nodes: usize, f_updates_hz: f64, f_comm_hz: f64) -> f64 {
        let n = nodes as f64;
        let nl = self.servers as f64;
        (nl * (nl - 1.0) * f_updates_hz + n * f_updates_hz) / (n * f_comm_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pk() -> PublicKey {
        let mut rng = StdRng::seed_from_u64(1);
        KeyPair::generate(&mut rng).public
    }

    #[test]
    fn lookup_before_registration_is_none() {
        let mut s = LocationService::new(4, LocationPolicy::SessionStart);
        assert!(s.lookup(NodeId(2)).is_none());
        assert_eq!(s.messages, 2, "failed lookups still cost messages");
    }

    #[test]
    fn periodic_policy_serves_latest_position() {
        let mut s = LocationService::new(2, LocationPolicy::Periodic { interval_s: 1.0 });
        let key = pk();
        s.update(NodeId(0), Point::new(1.0, 1.0), key, Pseudonym(7), 0.0);
        s.update(NodeId(0), Point::new(9.0, 9.0), key, Pseudonym(8), 5.0);
        let info = s.lookup(NodeId(0)).unwrap();
        assert_eq!(info.position, Point::new(9.0, 9.0));
        assert_eq!(info.pseudonym, Pseudonym(8));
        assert_eq!(info.registered_at, 5.0);
    }

    #[test]
    fn session_start_policy_freezes_position_not_pseudonym() {
        let mut s = LocationService::new(2, LocationPolicy::SessionStart);
        let key = pk();
        s.update(NodeId(0), Point::new(1.0, 1.0), key, Pseudonym(7), 0.0);
        s.freeze(NodeId(0));
        s.update(NodeId(0), Point::new(9.0, 9.0), key, Pseudonym(8), 5.0);
        let info = s.lookup(NodeId(0)).unwrap();
        assert_eq!(info.position, Point::new(1.0, 1.0), "position frozen");
        assert_eq!(info.pseudonym, Pseudonym(8), "pseudonym still fresh");
    }

    #[test]
    fn unfrozen_session_start_serves_registration() {
        let mut s = LocationService::new(1, LocationPolicy::SessionStart);
        s.update(NodeId(0), Point::new(3.0, 4.0), pk(), Pseudonym(1), 0.0);
        assert_eq!(s.lookup(NodeId(0)).unwrap().position, Point::new(3.0, 4.0));
    }

    #[test]
    fn message_accounting() {
        let mut s = LocationService::new(2, LocationPolicy::SessionStart);
        s.update(NodeId(0), Point::ORIGIN, pk(), Pseudonym(1), 0.0); // 1
        s.lookup(NodeId(0)); // 2
        s.lookup(NodeId(1)); // 2
        assert_eq!(s.messages, 5);
    }

    #[test]
    fn overhead_ratio_is_small_when_nl_is_sqrt_n() {
        // Section 4.3: with N_L ~ sqrt(N) and f << F the ratio must be << 1.
        let s = LocationService::new(200, LocationPolicy::SessionStart);
        assert_eq!(s.servers, 14); // sqrt(200) rounded
        let ratio = s.overhead_ratio(200, 0.1, 10.0);
        assert!(ratio < 0.05, "overhead ratio {ratio} not << 1");
    }
}

//! The discrete-event core: a future event list ordered by simulated time.
//!
//! Determinism contract: events at equal timestamps are delivered in the
//! order they were scheduled (FIFO tie-break by sequence number), so a run
//! is a pure function of the scenario and seed.
//!
//! # Calendar/ladder structure
//!
//! The FEL is a calendar queue (Brown 1988, the ns-2 lineage): a "year" of
//! `days.len()` equal-width day buckets covering `[year_base, year_base +
//! days.len() * width)`, plus an unsorted `overflow` ladder for events past
//! the end of the year. Each day bucket is a small binary min-heap over the
//! 24-byte `(time, seq, slot)` keys, so same-instant bursts inside one day
//! still resolve in `O(log k)` for a bucket of `k` — and `k` stays small
//! because the retune policy sizes `width` to the mean gap between pending
//! events. `schedule` is O(1) amortized (bucket push + occasional geometric
//! retune); `pop` is O(1) amortized (bucket pop + cursor walk over empty
//! days, paid at most once per day per year).
//!
//! The day width is tuned to the *mean* gap, but the sim's event times
//! are bimodal: sparse half-second protocol timers and millisecond-scale
//! frame fan-outs from the same hello round. When the fan-out piles one
//! day's heap past [`FAT_BUCKET`], `pop` splits that day into a finer
//! sub-calendar covering just its span (a ladder-queue rung); inserts and
//! cancels for the split day route into the sub-buckets until they drain.
//! That keeps every heap small under both modes without global retunes.
//!
//! Determinism survives the swap from the old `BinaryHeap<Scheduled>`:
//! day buckets partition the time axis into disjoint, monotonically
//! increasing ranges (the sub-calendar only refines one day's partition
//! further), and within a bucket keys are min-heap ordered by
//! `(f64::total_cmp(time), seq)`. Since `schedule` rejects NaN and
//! normalizes `-0.0` to `+0.0`, `total_cmp` agrees with numeric order on
//! every admitted timestamp, so the global pop order is exactly the strict
//! `(time, seq)` order the heap produced — byte-identical traces.

/// A pending key: `(time, seq, slot)`, min-ordered by time then seq.
///
/// The payload itself lives in the queue's slot arena, not in the buckets:
/// sift operations during bucket push/pop move only this 24-byte key, so
/// the cost of reordering a bucket is independent of the event type's size
/// (protocol messages riding in `Deliver`/`Retry` events can be hundreds
/// of bytes). `slot` takes no part in the ordering — `seq` is unique.
#[derive(Clone, Copy, Debug)]
struct Key {
    time: f64,
    seq: u64,
    slot: u32,
}

/// Strict total order: `(time, seq)` ascending, times via `total_cmp`.
///
/// `total_cmp` (not `partial_cmp(..).unwrap_or(Equal)`) means a NaN that
/// somehow slipped past the schedule-time guard would still be *totally*
/// ordered — it sorts deterministically instead of silently corrupting
/// the bucket-heap invariants and with them the FIFO determinism
/// contract. The schedule-time NaN rejection stays in place regardless.
fn key_lt(a: &Key, b: &Key) -> bool {
    match a.time.total_cmp(&b.time) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.seq < b.seq,
    }
}

fn sift_up(heap: &mut [Key], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if key_lt(&heap[i], &heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [Key], mut i: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= heap.len() {
            break;
        }
        let r = l + 1;
        let child = if r < heap.len() && key_lt(&heap[r], &heap[l]) {
            r
        } else {
            l
        };
        if key_lt(&heap[child], &heap[i]) {
            heap.swap(i, child);
            i = child;
        } else {
            break;
        }
    }
}

fn bucket_push(heap: &mut Vec<Key>, k: Key) {
    heap.push(k);
    let last = heap.len() - 1;
    sift_up(heap, last);
}

fn bucket_pop(heap: &mut Vec<Key>) -> Option<Key> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let k = heap.pop().expect("non-empty after len check");
    if !heap.is_empty() {
        sift_down(heap, 0);
    }
    Some(k)
}

/// Removes the key with sequence number `seq`, restoring the heap.
fn bucket_remove_seq(heap: &mut Vec<Key>, seq: u64) -> Option<Key> {
    let i = heap.iter().position(|k| k.seq == seq)?;
    let last = heap.len() - 1;
    heap.swap(i, last);
    let k = heap.pop().expect("non-empty after position hit");
    if i < heap.len() {
        sift_down(heap, i);
        sift_up(heap, i);
    }
    Some(k)
}

/// Handle to a scheduled event, returned by [`EventQueue::schedule`] and
/// accepted by [`EventQueue::cancel`]. Copyable and cheap; a handle whose
/// event already fired (or was already cancelled) simply fails to cancel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventId {
    seq: u64,
    slot: u32,
    /// The (clamped) timestamp the event was filed under — lets `cancel`
    /// locate the owning day bucket without a search over the whole year.
    time_bits: u64,
}

impl EventId {
    fn time(&self) -> f64 {
        f64::from_bits(self.time_bits)
    }
}

/// Fewest day buckets the calendar will use.
const MIN_DAYS: usize = 64;
/// Most day buckets; past this, buckets grow instead (still heaps, so
/// per-op cost degrades only logarithmically in bucket size).
const MAX_DAYS: usize = 1 << 15;
/// Bucket width clamp, seconds per day.
const MIN_WIDTH: f64 = 1e-9;
const MAX_WIDTH: f64 = 60.0;
/// Day-bucket occupancy past which the cursor day is split into a
/// sub-calendar on the next pop. Below this, a single bucket heap pops
/// in ~log2(len) < 8 swaps of 24-byte keys — cheaper than paying a
/// split's scatter plus the empty-sub-bucket walks it implies.
const FAT_BUCKET: usize = 128;
/// Most sub-buckets a split spreads a day over.
const SUB_MAX_BUCKETS: usize = 1 << 15;

/// A split day: when the cursor day's heap grows past [`FAT_BUCKET`]
/// (events much denser than the day width — a hello round's frame
/// fan-out landing inside one day), its keys are scattered over a finer
/// bucket array covering just that day, ladder-queue style. While a
/// split is active the owning day's heap stays empty: every insert into
/// that day routes to the sub-calendar instead, so the day's keys live
/// in exactly one place and the pop order is untouched — the split only
/// refines the partition of one day's time range.
#[derive(Clone, Copy, Debug)]
struct SubMeta {
    /// The day this sub-calendar replaces.
    day: usize,
    /// Earliest key time at split; sub-bucket 0 also absorbs anything
    /// below it (a past-clamped insert), mirroring day 0 of the year.
    start: f64,
    /// Seconds per sub-bucket.
    width: f64,
    /// Number of `sub_buckets` in use for this split.
    nbuckets: usize,
    /// Lower bound on the first non-empty sub-bucket.
    cursor: usize,
    /// Pending keys in the sub-calendar.
    len: usize,
}

/// A deterministic future event list.
///
/// ```
/// use alert_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "sooner-but-second");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((1.0, "sooner-but-second")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Day buckets, each a binary min-heap of keys; day `d` covers
    /// `[year_base + d*width, year_base + (d+1)*width)` (day 0 also
    /// absorbs any stragglers below `year_base`, which stay correctly
    /// ordered because they are smaller than everything else).
    days: Vec<Vec<Key>>,
    /// Events at or past the end of the current year, unsorted; they are
    /// redistributed into day buckets when the year rolls forward.
    overflow: Vec<Key>,
    /// Seconds per day bucket.
    width: f64,
    /// Start time of day 0.
    year_base: f64,
    /// Lower bound on the first non-empty day; when events are pending,
    /// `days[cursor]` is non-empty or a forward walk from it finds the
    /// first non-empty day (pop makes the walk permanent).
    cursor: usize,
    /// Fine-grained sub-calendar standing in for one crowded day, if any.
    sub: Option<SubMeta>,
    /// Persistent sub-bucket storage, recycled across splits.
    sub_buckets: Vec<Vec<Key>>,
    /// Scratch buffer reused by retunes so steady state allocates nothing.
    scratch: Vec<Key>,
    /// Slot arena holding the payloads of pending events; `free` lists
    /// vacated slots for reuse, so a steady-state schedule/pop workload
    /// allocates nothing once the arena has grown to the peak occupancy.
    slots: Vec<Option<E>>,
    /// Sequence number of each slot's current occupant — lets `cancel`
    /// tell a live handle from one whose slot was already recycled.
    slot_seq: Vec<u64>,
    free: Vec<u32>,
    next_seq: u64,
    now: f64,
    len: usize,
    high_water: usize,
    /// Consecutive pops whose timestamp equals the current clock —
    /// the livelock watchdog's progress signal. Resets to 1 whenever a
    /// pop advances the clock.
    pops_at_now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            days: Vec::new(),
            overflow: Vec::new(),
            width: 0.05,
            year_base: 0.0,
            cursor: 0,
            sub: None,
            sub_buckets: Vec::new(),
            scratch: Vec::new(),
            slots: Vec::new(),
            slot_seq: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: 0.0,
            len: 0,
            high_water: 0,
            pops_at_now: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest number of events that were ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Day index for `time` under the current calendar geometry, or
    /// `None` when it falls past the end of the year (overflow ladder).
    fn day_index(&self, time: f64) -> Option<usize> {
        if time < self.year_base {
            return Some(0);
        }
        let d = (time - self.year_base) / self.width;
        if d < self.days.len() as f64 {
            Some(d as usize)
        } else {
            None
        }
    }

    /// Files a key under the current geometry.
    fn insert_key(&mut self, k: Key) {
        match self.day_index(k.time) {
            Some(d) => {
                if self.sub.as_ref().is_some_and(|s| s.day == d) {
                    self.sub_insert(k);
                } else {
                    bucket_push(&mut self.days[d], k);
                }
                if d < self.cursor {
                    self.cursor = d;
                }
            }
            None => self.overflow.push(k),
        }
    }

    /// Files a key into the active sub-calendar (caller checked the day).
    fn sub_insert(&mut self, k: Key) {
        let s = self.sub.as_mut().expect("sub_insert without a split");
        let idx = if k.time <= s.start {
            0
        } else {
            (((k.time - s.start) / s.width) as usize).min(s.nbuckets - 1)
        };
        bucket_push(&mut self.sub_buckets[idx], k);
        if idx < s.cursor {
            s.cursor = idx;
        }
        s.len += 1;
    }

    /// Scatters the cursor day's heap over a fine sub-bucket array.
    /// O(bucket size), amortized against the pops that drain it.
    fn split_cursor_day(&mut self) {
        let day = self.cursor;
        let mut keys = std::mem::take(&mut self.days[day]);
        let day_end = self.year_base + (day as f64 + 1.0) * self.width;
        let mut start = f64::INFINITY;
        for k in &keys {
            start = start.min(k.time);
        }
        let nbuckets = (2 * keys.len())
            .next_power_of_two()
            .clamp(MIN_DAYS, SUB_MAX_BUCKETS);
        if self.sub_buckets.len() < nbuckets {
            self.sub_buckets.resize_with(nbuckets, Vec::new);
        }
        // `start` is a pending key's time, strictly below the day's end,
        // so the width is positive; a same-instant cluster simply shares
        // one sub-bucket heap and keeps its FIFO order there.
        let width = (day_end - start) / nbuckets as f64;
        self.sub = Some(SubMeta {
            day,
            start,
            width,
            nbuckets,
            cursor: 0,
            len: 0,
        });
        for k in keys.drain(..) {
            self.sub_insert(k);
        }
        self.days[day] = keys;
    }

    /// Pops the earliest key from the active sub-calendar.
    fn sub_pop(&mut self) -> Key {
        let s = self.sub.as_mut().expect("sub_pop without a split");
        while self.sub_buckets[s.cursor].is_empty() {
            s.cursor += 1;
        }
        let k = bucket_pop(&mut self.sub_buckets[s.cursor]).expect("walked to non-empty");
        s.len -= 1;
        if s.len == 0 {
            self.sub = None;
        }
        k
    }

    /// True when day `d` still owns pending keys (its heap, or the
    /// sub-calendar standing in for it).
    fn day_busy(&self, d: usize) -> bool {
        !self.days[d].is_empty() || self.sub.as_ref().is_some_and(|s| s.day == d && s.len > 0)
    }

    /// Rebuilds the calendar around the currently pending keys: sizes the
    /// day count to the population, the day width to the mean gap, and
    /// re-anchors the year at the earliest pending time. O(len), but
    /// triggered only by geometric occupancy thresholds (or a year roll),
    /// so the amortized cost per operation is O(1).
    fn retune(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for day in &mut self.days {
            scratch.append(day);
        }
        if let Some(s) = self.sub.take() {
            for b in &mut self.sub_buckets[..s.nbuckets] {
                scratch.append(b);
            }
        }
        scratch.append(&mut self.overflow);
        debug_assert_eq!(scratch.len(), self.len);

        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        for k in &scratch {
            t_min = t_min.min(k.time);
            t_max = t_max.max(k.time);
        }
        // Monotone day count (see the growth-only trigger in
        // `schedule`): never release bucket storage a previous peak
        // justified, so retunes after a drain stay O(live events) and
        // the next burst finds its buckets already allocated.
        let ndays = self
            .len
            .next_power_of_two()
            .clamp(MIN_DAYS, MAX_DAYS)
            .max(self.days.len());
        if self.days.len() != ndays {
            self.days.resize_with(ndays, Vec::new);
        }
        let span = (t_max - t_min).max(0.0);
        self.width = (span / self.len.max(1) as f64).clamp(MIN_WIDTH, MAX_WIDTH);
        self.year_base = if t_min.is_finite() { t_min } else { self.now };
        self.cursor = 0;
        for k in scratch.drain(..) {
            self.insert_key(k);
        }
        self.scratch = scratch;
    }

    /// Advances the year so the earliest overflow event lands in day 0.
    /// Called only when every day bucket is empty and the overflow ladder
    /// is not; retuning from the overflow population also re-tunes the
    /// width to the (possibly much sparser) far-future event spacing.
    fn roll_year(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "rolled an empty year");
        self.retune();
        debug_assert!(
            self.days.iter().any(|d| !d.is_empty()),
            "year roll left all days empty"
        );
    }

    /// After removing a key: walk the cursor past drained days and roll
    /// the year if only overflow events remain, so `days[cursor..]` holds
    /// the minimum whenever events are pending (what `peek_time` relies
    /// on to stay O(1) amortized and allocation-free).
    fn fix_cursor_after_removal(&mut self) {
        if self.len == 0 {
            return;
        }
        while self.cursor < self.days.len() && !self.day_busy(self.cursor) {
            self.cursor += 1;
        }
        if self.cursor == self.days.len() {
            self.roll_year();
        }
    }

    /// Schedules `event` at absolute time `time`, returning a handle that
    /// can [`cancel`](Self::cancel) it before it fires.
    ///
    /// Scheduling in the past (a delay computed as a tiny negative float)
    /// is clamped to `now`; the event still runs after already-queued
    /// events at `now`, preserving causality. A `-0.0` timestamp is
    /// normalized to `+0.0` so `total_cmp` ordering coincides with the
    /// numeric order on every stored time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or infinite, rather than admitting a value
    /// whose bucket index would be meaningless.
    pub fn schedule(&mut self, time: f64, event: E) -> EventId {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let time = if time < self.now { self.now } else { time };
        let time = if time == 0.0 { 0.0 } else { time }; // -0.0 -> +0.0
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(event);
                self.slot_seq[s as usize] = seq;
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event arena full");
                self.slots.push(Some(event));
                self.slot_seq.push(seq);
                (self.slots.len() - 1) as u32
            }
        };
        if self.len == 0 {
            // Re-anchor an empty calendar at this event so the first
            // insert always lands in a day bucket, never in overflow.
            if self.days.is_empty() {
                self.days.resize_with(MIN_DAYS, Vec::new);
            }
            self.year_base = time;
            self.cursor = 0;
        }
        self.len += 1;
        self.insert_key(Key { time, seq, slot });
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        // Growth-only day-count adaptation. A shrink trigger looks
        // symmetric but is a trap in this workload: every hello round
        // swings the pending population by ~10x within one simulated
        // second, and a shrink/grow pair per swing costs two O(len)
        // retunes plus freeing and reallocating thousands of bucket
        // Vecs. Idle oversized calendars are cheap instead — empty days
        // cost one cursor step each, amortized over the year, and year
        // rolls still re-tune the width to the live population.
        if self.len > 2 * self.days.len() && self.days.len() < MAX_DAYS {
            self.retune();
        }
        EventId {
            seq,
            slot,
            time_bits: time.to_bits(),
        }
    }

    /// Schedules `event` after a relative delay from the current clock.
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventId {
        self.schedule(self.now + delay.max(0.0), event)
    }

    /// Cancels a pending event, returning its payload, or `None` if the
    /// event already fired or was already cancelled. O(bucket size): the
    /// handle's timestamp locates the owning day, and the key is removed
    /// from that bucket's heap eagerly — no tombstones, so the pop path
    /// and the determinism contract are untouched by cancellation.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        let s = id.slot as usize;
        if s >= self.slots.len() || self.slot_seq[s] != id.seq || self.slots[s].is_none() {
            return None;
        }
        let key = match self.day_index(id.time()) {
            Some(d) if self.sub.as_ref().is_some_and(|s| s.day == d) => {
                let s = self.sub.as_mut().expect("checked in the guard");
                let idx = if id.time() <= s.start {
                    0
                } else {
                    (((id.time() - s.start) / s.width) as usize).min(s.nbuckets - 1)
                };
                let k = bucket_remove_seq(&mut self.sub_buckets[idx], id.seq);
                if k.is_some() {
                    s.len -= 1;
                    if s.len == 0 {
                        self.sub = None;
                    }
                }
                k
            }
            Some(d) => bucket_remove_seq(&mut self.days[d], id.seq),
            None => {
                let i = self.overflow.iter().position(|k| k.seq == id.seq)?;
                Some(self.overflow.swap_remove(i))
            }
        }?;
        debug_assert_eq!(key.slot, id.slot);
        let event = self.slots[s].take().expect("checked occupied above");
        self.free.push(id.slot);
        self.len -= 1;
        self.fix_cursor_after_removal();
        Some(event)
    }

    /// Consecutive pops delivered at the current clock value without the
    /// clock advancing. A run making progress keeps this near the
    /// natural same-instant fan-out; a protocol spinning on zero-delay
    /// self-rescheduling grows it without bound — the signal the
    /// livelock watchdog (`RunBudget::max_events_per_instant`) trips on.
    pub fn pops_at_now(&self) -> u64 {
        self.pops_at_now
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        if self.len == 0 {
            return None;
        }
        while self.cursor < self.days.len() && !self.day_busy(self.cursor) {
            self.cursor += 1;
        }
        if self.cursor == self.days.len() {
            self.roll_year();
        }
        if self.sub.is_none() && self.days[self.cursor].len() > FAT_BUCKET {
            self.split_cursor_day();
        }
        let s = if self
            .sub
            .as_ref()
            .is_some_and(|s| s.day == self.cursor && s.len > 0)
        {
            self.sub_pop()
        } else {
            bucket_pop(&mut self.days[self.cursor]).expect("cursor day non-empty")
        };
        self.len -= 1;
        self.fix_cursor_after_removal();
        debug_assert!(s.time >= self.now, "clock went backwards");
        if s.time == self.now && self.pops_at_now > 0 {
            self.pops_at_now += 1;
        } else {
            self.pops_at_now = 1;
        }
        self.now = s.time;
        let event = self.slots[s.slot as usize]
            .take()
            .expect("bucket key points at an occupied slot");
        self.free.push(s.slot);
        Some((s.time, event))
    }

    /// Peeks at the time of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut d = self.cursor;
        while !self.day_busy(d) {
            d += 1; // a busy day exists: fix_cursor rolled the year
        }
        if let Some(s) = self.sub.as_ref().filter(|s| s.day == d && s.len > 0) {
            let mut b = s.cursor;
            while self.sub_buckets[b].is_empty() {
                b += 1;
            }
            return Some(self.sub_buckets[b][0].time);
        }
        Some(self.days[d][0].time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 5);
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "base");
        q.pop();
        q.schedule_in(5.0, "later");
        assert_eq!(q.pop(), Some((15.0, "later")));
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "a");
        q.pop();
        q.schedule(3.0, "stale");
        assert_eq!(q.pop(), Some((10.0, "stale")));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule_in(1.0, 2); // at t = 2
        q.schedule_in(2.0, 3); // at t = 3
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.now(), 0.0);
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn nan_times_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn infinite_times_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    fn pops_at_now_counts_same_instant_streaks() {
        let mut q = EventQueue::new();
        assert_eq!(q.pops_at_now(), 0);
        q.schedule(0.0, "a"); // same instant as the initial clock
        q.schedule(0.0, "b");
        q.schedule(1.0, "c");
        q.schedule(1.0, "d");
        q.pop();
        assert_eq!(q.pops_at_now(), 1, "first pop starts a streak of 1");
        q.pop();
        assert_eq!(q.pops_at_now(), 2);
        q.pop();
        assert_eq!(q.pops_at_now(), 1, "clock advance resets the streak");
        q.pop();
        assert_eq!(q.pops_at_now(), 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.schedule(3.0, ());
        q.pop();
        q.pop();
        q.schedule(4.0, ());
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
    }

    // --- calendar-specific coverage -----------------------------------

    #[test]
    fn far_future_events_ride_the_overflow_ladder() {
        let mut q = EventQueue::new();
        // Year at creation covers a few seconds; these are days apart.
        q.schedule(0.5, 1);
        q.schedule(100_000.0, 4);
        q.schedule(7.25, 2);
        q.schedule(99_999.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn year_rolls_preserve_fifo_within_an_instant() {
        let mut q = EventQueue::new();
        q.schedule(0.0, -1);
        for i in 0..10 {
            q.schedule(50_000.0, i); // far past the initial year
        }
        assert_eq!(q.pop(), Some((0.0, -1)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn growth_retunes_keep_order_under_load() {
        // Push through several geometric retunes, interleaving pops, and
        // check against a sorted reference of the surviving population.
        let mut q = EventQueue::new();
        let mut expect: Vec<(f64, u32)> = Vec::new();
        let mut n = 0u32;
        for wave in 0..6 {
            for i in 0..(1 << wave) * 40 {
                let t = ((i * 37 + wave * 11) % 997) as f64 * 0.01;
                q.schedule(t, n);
                if t >= q.now() {
                    expect.push((t, n));
                } else {
                    expect.push((q.now(), n));
                }
                n += 1;
            }
            for _ in 0..20 {
                let (t, e) = q.pop().unwrap();
                expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let (et, ee) = expect.remove(0);
                assert_eq!((t, e), (et, ee));
            }
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (et, ee) in expect {
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.max(q.now()), e), (et.max(q.now()), ee));
            assert_eq!(e, ee);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_removes_exactly_the_handled_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        let b = q.schedule(1.0, "b");
        let c = q.schedule(2.0, "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(b), None, "double-cancel is a no-op");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.cancel(a), None, "fired events cannot be cancelled");
        assert_eq!(q.pop(), Some((2.0, "c")));
        assert_eq!(q.cancel(c), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_handle_survives_slot_reuse() {
        let mut q = EventQueue::new();
        let stale = q.schedule(1.0, 10);
        q.pop();
        // The freed slot is recycled by the next schedule; the stale
        // handle must not cancel the new occupant.
        let fresh = q.schedule(2.0, 20);
        assert_eq!(q.cancel(stale), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(fresh), Some(20));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_reaches_the_overflow_ladder() {
        let mut q = EventQueue::new();
        q.schedule(0.1, "near");
        let far = q.schedule(1_000_000.0, "far");
        assert_eq!(q.cancel(far), Some("far"));
        assert_eq!(q.pop(), Some((0.1, "near")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelling_the_last_near_event_rolls_to_overflow() {
        let mut q = EventQueue::new();
        let near = q.schedule(0.1, "near");
        q.schedule(1_000_000.0, "far");
        assert_eq!(q.cancel(near), Some("near"));
        assert_eq!(q.peek_time(), Some(1_000_000.0));
        assert_eq!(q.pop(), Some((1_000_000.0, "far")));
    }

    #[test]
    fn negative_zero_times_keep_fifo_order() {
        // -0.0 is normalized to +0.0 on entry, so total_cmp cannot split
        // a same-instant burst by zero sign — the seq FIFO decides, as it
        // did under the old partial_cmp comparator.
        let mut q = EventQueue::new();
        q.schedule(0.0, 0);
        q.schedule(-0.0, 1);
        q.schedule(0.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn comparator_totally_orders_nan_keys() {
        // Regression for the old `partial_cmp(..).unwrap_or(Equal)`
        // comparator: a NaN key must still sort deterministically (after
        // every finite time, per total_cmp) instead of comparing Equal to
        // everything and corrupting the heap invariants.
        let nan = Key {
            time: f64::NAN,
            seq: 0,
            slot: 0,
        };
        let one = Key {
            time: 1.0,
            seq: 1,
            slot: 0,
        };
        assert!(key_lt(&one, &nan), "finite sorts before positive NaN");
        assert!(!key_lt(&nan, &one));
        let nan2 = Key {
            time: f64::NAN,
            seq: 5,
            slot: 0,
        };
        assert!(key_lt(&nan, &nan2), "equal bit-pattern NaNs fall to seq");
        assert!(!key_lt(&nan2, &nan));
    }

    #[test]
    fn massive_same_instant_burst_stays_fifo_through_retunes() {
        let mut q = EventQueue::new();
        // Zero span: width clamps to MIN_WIDTH; everything lands in one
        // bucket and the bucket heap alone must keep FIFO order.
        for i in 0..5_000 {
            q.schedule(3.0, i);
        }
        for i in 0..5_000 {
            assert_eq!(q.pop(), Some((3.0, i)));
        }
    }

    #[test]
    fn draining_and_refilling_reanchors_the_year() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 1);
        q.pop();
        // The queue is empty with now = 5.0; a schedule far from the old
        // year base must land in a day bucket, not strand in overflow.
        q.schedule(1_000_000.0, 2);
        assert_eq!(q.peek_time(), Some(1_000_000.0));
        assert_eq!(q.pop(), Some((1_000_000.0, 2)));
    }

    /// Randomized model check: the calendar must agree, step for step,
    /// with a linear-scan reference FEL across seeded schedule/pop/cancel
    /// interleavings. A compact runnable cousin of the proptest suite in
    /// `tests/fel_props.rs`, kept here so it also runs where proptest is
    /// unavailable (the offline harness).
    #[test]
    fn calendar_matches_a_linear_scan_reference_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut q = EventQueue::new();
            let mut model: Vec<(f64, u64)> = Vec::new();
            let mut model_now = 0.0f64;
            let mut handles: Vec<(EventId, u64)> = Vec::new();
            let mut seq = 0u64;
            for _ in 0..600 {
                match rng.gen_range(0..10) {
                    0..=4 => {
                        // Near times, same-instant bursts, and ladder-range
                        // far futures, in one distribution.
                        let t = match rng.gen_range(0..4) {
                            0 => rng.gen_range(0.0..50.0),
                            1 => 2.5,
                            2 => rng.gen_range(0.0..1.0e-3),
                            _ => rng.gen_range(1.0e6..1.0e9),
                        };
                        let id = q.schedule(t, seq);
                        let t = if t < model_now { model_now } else { t };
                        model.push((t, seq));
                        handles.push((id, seq));
                        seq += 1;
                    }
                    5..=7 => {
                        let at = model
                            .iter()
                            .enumerate()
                            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                            .map(|(i, _)| i);
                        let want = at.map(|i| model.remove(i));
                        if let Some((t, _)) = want {
                            model_now = t;
                        }
                        let got = q.pop();
                        assert_eq!(got, want, "pop diverged (seed {seed})");
                        if let Some((_, s)) = got {
                            handles.retain(|&(_, h)| h != s);
                        }
                    }
                    _ => {
                        if handles.is_empty() {
                            continue;
                        }
                        let at = rng.gen_range(0..handles.len());
                        let (id, s) = handles.remove(at);
                        let found = model.iter().position(|&(_, ms)| ms == s);
                        let want = found.map(|i| model.remove(i).1);
                        assert_eq!(q.cancel(id), want, "cancel diverged (seed {seed})");
                    }
                }
                assert_eq!(q.len(), model.len(), "len diverged (seed {seed})");
            }
        }
    }

    /// A fan-out dense enough to trip the [`FAT_BUCKET`] split must pop
    /// in exactly the `(time, seq)` order of the flat model, including
    /// the same-instant cluster that shares one sub-bucket.
    #[test]
    fn fat_day_split_preserves_pop_order() {
        let mut q = EventQueue::new();
        let mut model: Vec<(f64, u64)> = Vec::new();
        // Sparse timers first so the retuned width is coarse relative
        // to the burst spacing — the shape that makes one day fat.
        for i in 0..8u64 {
            q.schedule(i as f64 * 0.5, i);
            model.push((i as f64 * 0.5, i));
        }
        for i in 0..300u64 {
            let t = 1.0 + 1e-4 + (i % 97) as f64 * 3e-6;
            q.schedule(t, 1000 + i);
            model.push((t, 1000 + i));
        }
        // Same-instant cluster: lands in a single sub-bucket heap.
        for i in 0..60u64 {
            q.schedule(1.25, 2000 + i);
            model.push((1.25, 2000 + i));
        }
        model.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for want in model {
            assert_eq!(q.peek_time(), Some(want.0));
            assert_eq!(q.pop(), Some(want));
        }
        assert_eq!(q.pop(), None);
    }

    /// Cancelling and re-scheduling into a split day must route through
    /// the sub-calendar: the handle still cancels, inserts land in time
    /// order, and draining the sub hands the day back to the calendar.
    #[test]
    fn cancel_and_insert_reach_the_split_day() {
        let mut q = EventQueue::new();
        for i in 0..4u64 {
            q.schedule(i as f64, i);
        }
        let mut handles = Vec::new();
        for i in 0..100u64 {
            let t = 1.0 + 1e-5 + i as f64 * 1e-6;
            handles.push(q.schedule(t, 100 + i));
        }
        // Pop past the sparse timers into the burst, forcing the split.
        assert_eq!(q.pop(), Some((0.0, 0)));
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((1.0 + 1e-5, 100)));
        // Cancel a mid-burst event, then schedule a new one inside the
        // split day; both must route into the live sub-calendar.
        assert_eq!(q.cancel(handles[50]), Some(150));
        assert_eq!(q.cancel(handles[50]), None);
        q.schedule(1.0 + 1e-5 + 49.5e-6, 999);
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        let mut want: Vec<u64> = (101..150).collect();
        want.push(999);
        want.extend(151..200);
        want.extend([2, 3]);
        assert_eq!(got, want);
    }
}

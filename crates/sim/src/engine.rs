//! The discrete-event core: a future event list ordered by simulated time.
//!
//! Determinism contract: events at equal timestamps are delivered in the
//! order they were scheduled (FIFO tie-break by sequence number), so a run
//! is a pure function of the scenario and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled key: `(time, seq, slot)`, min-ordered by time then seq.
///
/// The payload itself lives in the queue's slot arena, not in the heap:
/// sift operations during push/pop move only this 24-byte key, so the
/// cost of reordering the heap is independent of the event type's size
/// (protocol messages riding in `Deliver`/`Retry` events can be hundreds
/// of bytes). `slot` takes no part in the ordering — `seq` is unique.
struct Scheduled {
    time: f64,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future event list.
///
/// ```
/// use alert_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "sooner-but-second");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((1.0, "sooner-but-second")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled>,
    /// Slot arena holding the payloads of pending events; `free` lists
    /// vacated slots for reuse, so a steady-state schedule/pop workload
    /// allocates nothing once the arena has grown to the peak occupancy.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: f64,
    high_water: usize,
    /// Consecutive pops whose timestamp equals the current clock —
    /// the livelock watchdog's progress signal. Resets to 1 whenever a
    /// pop advances the clock.
    pops_at_now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: 0.0,
            high_water: 0,
            pops_at_now: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The largest number of events that were ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// Scheduling in the past (a delay computed as a tiny negative float)
    /// is clamped to `now`; the event still runs after already-queued
    /// events at `now`, preserving causality.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or infinite. `Scheduled::cmp` falls back to
    /// `Ordering::Equal` for incomparable floats, so admitting a NaN would
    /// silently corrupt the heap order instead of failing here.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let time = if time < self.now { self.now } else { time };
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event arena full");
                self.slots.push(Some(event));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Scheduled { time, seq, slot });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Schedules `event` after a relative delay from the current clock.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay.max(0.0), event);
    }

    /// Consecutive pops delivered at the current clock value without the
    /// clock advancing. A run making progress keeps this near the
    /// natural same-instant fan-out; a protocol spinning on zero-delay
    /// self-rescheduling grows it without bound — the signal the
    /// livelock watchdog (`RunBudget::max_events_per_instant`) trips on.
    pub fn pops_at_now(&self) -> u64 {
        self.pops_at_now
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "clock went backwards");
        if s.time == self.now && self.pops_at_now > 0 {
            self.pops_at_now += 1;
        } else {
            self.pops_at_now = 1;
        }
        self.now = s.time;
        let event = self.slots[s.slot as usize]
            .take()
            .expect("heap key points at an occupied slot");
        self.free.push(s.slot);
        Some((s.time, event))
    }

    /// Peeks at the time of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 5);
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "base");
        q.pop();
        q.schedule_in(5.0, "later");
        assert_eq!(q.pop(), Some((15.0, "later")));
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "a");
        q.pop();
        q.schedule(3.0, "stale");
        assert_eq!(q.pop(), Some((10.0, "stale")));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule_in(1.0, 2); // at t = 2
        q.schedule_in(2.0, 3); // at t = 3
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.now(), 0.0);
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn nan_times_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn infinite_times_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    fn pops_at_now_counts_same_instant_streaks() {
        let mut q = EventQueue::new();
        assert_eq!(q.pops_at_now(), 0);
        q.schedule(0.0, "a"); // same instant as the initial clock
        q.schedule(0.0, "b");
        q.schedule(1.0, "c");
        q.schedule(1.0, "d");
        q.pop();
        assert_eq!(q.pops_at_now(), 1, "first pop starts a streak of 1");
        q.pop();
        assert_eq!(q.pops_at_now(), 2);
        q.pop();
        assert_eq!(q.pops_at_now(), 1, "clock advance resets the streak");
        q.pop();
        assert_eq!(q.pops_at_now(), 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.schedule(3.0, ());
        q.pop();
        q.pop();
        q.schedule(4.0, ());
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
    }
}

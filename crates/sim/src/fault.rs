//! Deterministic fault injection: seeded node crash/recover schedules,
//! regional outages, and time-windowed link degradation.
//!
//! A [`FaultPlan`] is part of the [`ScenarioConfig`](crate::ScenarioConfig),
//! so a faulty run stays a pure function of `(scenario, seed)` — two runs
//! with the same plan produce byte-identical traces. An empty plan (the
//! default) leaves the simulation bit-for-bit identical to a world without
//! fault support: no fault events are scheduled, no extra RNG draws occur.
//!
//! The model follows what NS-2 MANET studies script via the node
//! energy/failure model: a crashed node transmits nothing, receives
//! nothing, stops beaconing (so neighbors evict it after the staleness
//! window), and loses its volatile runtime state. On recovery it rejoins
//! with a wiped neighbor table, a new timer incarnation (timers set before
//! the crash never fire), and a re-run of the protocol's `on_start` — a
//! warm reboot.

use crate::config::ScenarioError;
use serde::{Deserialize, Serialize};

/// One scheduled node crash, with an optional recovery time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The node to crash (ground-truth index).
    pub node: usize,
    /// Crash time in simulated seconds.
    pub at_s: f64,
    /// Recovery time; `None` means the node stays down for the rest of
    /// the run.
    #[serde(default)]
    pub recover_s: Option<f64>,
}

/// A rectangular outage: every node positioned inside the rectangle when
/// the outage starts crashes, and that same set recovers when it ends
/// (models a localized jammer or power failure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionOutage {
    /// Rectangle origin x in metres.
    pub x: f64,
    /// Rectangle origin y in metres.
    pub y: f64,
    /// Rectangle width in metres.
    pub w: f64,
    /// Rectangle height in metres.
    pub h: f64,
    /// Outage start time in simulated seconds.
    pub start_s: f64,
    /// Outage end time in simulated seconds.
    pub end_s: f64,
}

fn one() -> f64 {
    1.0
}

/// A time window during which the channel degrades: the base
/// `mac.loss_probability` is scaled by `factor` and then increased by
/// `add`, clamped to `[0, 1]` (models interference bursts; the NS-2
/// counterpart is a scripted `ErrorModel` rate change).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Window start time in simulated seconds.
    pub start_s: f64,
    /// Window end time in simulated seconds.
    pub end_s: f64,
    /// Multiplier on the base loss probability inside the window.
    #[serde(default = "one")]
    pub factor: f64,
    /// Additive loss probability inside the window.
    #[serde(default)]
    pub add: f64,
}

/// A deterministic fault schedule for one run. The default (empty) plan
/// injects nothing and perturbs nothing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Individual node crash/recover schedules.
    #[serde(default)]
    pub crashes: Vec<NodeCrash>,
    /// Rectangular regional outages.
    #[serde(default)]
    pub regional_outages: Vec<RegionOutage>,
    /// Time-windowed channel degradations.
    #[serde(default)]
    pub link_degradations: Vec<LinkDegradation>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.regional_outages.is_empty()
            && self.link_degradations.is_empty()
    }

    /// The channel loss probability in effect at `now`: the base rate run
    /// through every active degradation window, clamped to `[0, 1]`.
    /// With no windows this returns `base` unchanged.
    pub fn effective_loss(&self, base: f64, now: f64) -> f64 {
        if self.link_degradations.is_empty() {
            return base;
        }
        let mut loss = base;
        for d in &self.link_degradations {
            if now >= d.start_s && now < d.end_s {
                loss = loss * d.factor + d.add;
            }
        }
        loss.clamp(0.0, 1.0)
    }

    /// Seeded random churn: crashes `crash_fraction` of the population at
    /// staggered times across the middle half of the run, each outage
    /// lasting a quarter of the run (nodes recover only if that completes
    /// before the scenario ends).
    ///
    /// The victim order is a seeded shuffle and crash times depend only on
    /// a victim's index, so for a fixed `(nodes, duration_s, seed)` a
    /// higher `crash_fraction` produces a strict superset of a lower one's
    /// outages — which is what makes delivery-vs-crash-rate sweeps
    /// near-monotone instead of re-rolling the victim set per point.
    pub fn churn(nodes: usize, crash_fraction: f64, duration_s: f64, seed: u64) -> FaultPlan {
        let count = (crash_fraction.clamp(0.0, 1.0) * nodes as f64).round() as usize;
        let count = count.min(nodes);
        let mut order: Vec<usize> = (0..nodes).collect();
        let mut state = seed ^ 0xC4A5_4ED5_EED5_0B0B;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            order.swap(i, j);
        }
        let crashes = order
            .into_iter()
            .take(count)
            .enumerate()
            .map(|(k, node)| {
                let phase = (k % 8) as f64 / 8.0;
                let at_s = duration_s * (0.25 + 0.5 * phase);
                let rec = at_s + 0.25 * duration_s;
                NodeCrash {
                    node,
                    at_s,
                    recover_s: (rec < duration_s).then_some(rec),
                }
            })
            .collect();
        FaultPlan {
            crashes,
            ..FaultPlan::default()
        }
    }

    /// Checks the plan against a population of `nodes`; called from
    /// [`ScenarioConfig::validate`](crate::ScenarioConfig::validate).
    pub fn validate(&self, nodes: usize) -> Result<(), ScenarioError> {
        for c in &self.crashes {
            if c.node >= nodes {
                return Err(ScenarioError::FaultNodeOutOfRange {
                    node: c.node,
                    nodes,
                });
            }
            let end = c.recover_s.unwrap_or(f64::INFINITY);
            if !c.at_s.is_finite() || c.at_s < 0.0 || end <= c.at_s {
                return Err(ScenarioError::InvalidFaultWindow { start: c.at_s, end });
            }
        }
        for r in &self.regional_outages {
            if !(r.x.is_finite() && r.y.is_finite())
                || !(r.w.is_finite() && r.h.is_finite())
                || r.w < 0.0
                || r.h < 0.0
            {
                return Err(ScenarioError::InvalidFaultWindow {
                    start: r.start_s,
                    end: r.end_s,
                });
            }
            if !r.start_s.is_finite()
                || r.start_s < 0.0
                || !r.end_s.is_finite()
                || r.end_s <= r.start_s
            {
                return Err(ScenarioError::InvalidFaultWindow {
                    start: r.start_s,
                    end: r.end_s,
                });
            }
        }
        for d in &self.link_degradations {
            if !d.start_s.is_finite()
                || d.start_s < 0.0
                || !d.end_s.is_finite()
                || d.end_s <= d.start_s
            {
                return Err(ScenarioError::InvalidFaultWindow {
                    start: d.start_s,
                    end: d.end_s,
                });
            }
            if !d.factor.is_finite() || d.factor < 0.0 {
                return Err(ScenarioError::InvalidFaultLoss(d.factor));
            }
            if !d.add.is_finite() || !(0.0..=1.0).contains(&d.add) {
                return Err(ScenarioError::InvalidFaultLoss(d.add));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.validate(10), Ok(()));
        assert_eq!(p.effective_loss(0.25, 5.0), 0.25);
    }

    #[test]
    fn effective_loss_applies_active_windows_and_clamps() {
        let p = FaultPlan {
            link_degradations: vec![
                LinkDegradation {
                    start_s: 10.0,
                    end_s: 20.0,
                    factor: 2.0,
                    add: 0.1,
                },
                LinkDegradation {
                    start_s: 15.0,
                    end_s: 25.0,
                    factor: 1.0,
                    add: 0.9,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(p.effective_loss(0.1, 5.0), 0.1);
        assert!((p.effective_loss(0.1, 12.0) - 0.3).abs() < 1e-12);
        // Both windows active: (0.1*2 + 0.1) + 0.9 clamps to 1.
        assert_eq!(p.effective_loss(0.1, 16.0), 1.0);
        assert_eq!(p.effective_loss(0.1, 25.0), 0.1);
    }

    #[test]
    fn churn_is_deterministic_with_prefix_property() {
        let small = FaultPlan::churn(100, 0.1, 100.0, 42);
        let large = FaultPlan::churn(100, 0.3, 100.0, 42);
        assert_eq!(small.crashes.len(), 10);
        assert_eq!(large.crashes.len(), 30);
        assert_eq!(&large.crashes[..10], &small.crashes[..]);
        assert_eq!(small, FaultPlan::churn(100, 0.1, 100.0, 42));
        assert_ne!(small, FaultPlan::churn(100, 0.1, 100.0, 43));
        for c in &large.crashes {
            assert!(c.at_s >= 25.0 && c.at_s < 75.0);
            if let Some(r) = c.recover_s {
                assert!(r > c.at_s && r < 100.0);
            }
        }
        assert!(FaultPlan::churn(100, 0.0, 100.0, 42).is_empty());
        assert_eq!(large.validate(100), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let p = FaultPlan {
            crashes: vec![NodeCrash {
                node: 10,
                at_s: 1.0,
                recover_s: None,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(
            p.validate(10),
            Err(ScenarioError::FaultNodeOutOfRange {
                node: 10,
                nodes: 10
            })
        );

        let p = FaultPlan {
            crashes: vec![NodeCrash {
                node: 0,
                at_s: 5.0,
                recover_s: Some(5.0),
            }],
            ..FaultPlan::default()
        };
        assert_eq!(
            p.validate(10),
            Err(ScenarioError::InvalidFaultWindow {
                start: 5.0,
                end: 5.0
            })
        );

        let p = FaultPlan {
            regional_outages: vec![RegionOutage {
                x: 0.0,
                y: 0.0,
                w: -5.0,
                h: 10.0,
                start_s: 1.0,
                end_s: 2.0,
            }],
            ..FaultPlan::default()
        };
        assert!(p.validate(10).is_err());

        let p = FaultPlan {
            link_degradations: vec![LinkDegradation {
                start_s: 1.0,
                end_s: 2.0,
                factor: 1.0,
                add: 1.5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(10), Err(ScenarioError::InvalidFaultLoss(1.5)));
    }
}

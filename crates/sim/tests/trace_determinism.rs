//! Determinism and consistency guarantees of the trace layer: the same
//! `(ScenarioConfig, seed)` must produce byte-identical JSONL traces, and
//! every aggregate derivable from the trace must agree with the
//! simulator's own `Metrics` bookkeeping.

use alert_sim::{
    Api, DataRequest, FaultPlan, Frame, JsonlSink, LinkDegradation, NodeCrash, PacketId,
    ProtocolNode, RegionOutage, ScenarioConfig, SharedBuf, TrafficClass, World,
};
use alert_trace::{parse_trace, trace_stats};
use std::collections::HashSet;

/// Minimal flooding protocol (same shape as `runtime_smoke.rs`), enough
/// to generate hops, deliveries, drops, and broadcasts.
#[derive(Default)]
struct Flood {
    seen: HashSet<PacketId>,
}

#[derive(Debug, Clone)]
struct FloodMsg {
    packet: PacketId,
    ttl: u32,
    bytes: usize,
}

impl ProtocolNode for Flood {
    type Msg = FloodMsg;

    fn name() -> &'static str {
        "FLOOD"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        api.send_broadcast(
            FloodMsg {
                packet: req.packet,
                ttl: 8,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if !self.seen.insert(m.packet) {
            return;
        }
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        if m.ttl > 0 {
            api.mark_hop(m.packet);
            api.send_broadcast(
                FloodMsg {
                    packet: m.packet,
                    ttl: m.ttl - 1,
                    bytes: m.bytes,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        } else {
            api.mark_packet_drop("flood_ttl_exhausted", m.packet);
        }
    }
}

fn small_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(60).with_duration(20.0);
    cfg.traffic.pairs = 4;
    cfg
}

/// Runs the flood scenario with a JSONL sink attached; returns the world
/// and the raw trace text.
fn traced_run(seed: u64) -> (World<Flood>, String) {
    let buf = SharedBuf::new();
    let mut w = World::new(small_scenario(), seed, |_, _| Flood::default());
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    w.run();
    w.take_trace_sink();
    (w, buf.contents())
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let (_, a) = traced_run(7);
    let (_, b) = traced_run(7);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same (scenario, seed) must trace identically");
}

#[test]
fn different_seeds_produce_different_traces() {
    let (_, a) = traced_run(7);
    let (_, c) = traced_run(8);
    assert_ne!(a, c, "different seeds must not trace identically");
}

/// Every new workload family is as byte-deterministic as the legacy
/// waypoint one: Manhattan-grid mobility, convoy and small-teams
/// placement, and the metered energy model (with cluster heads and
/// beacon withdrawal) all trace identically at the same seed.
#[test]
fn same_seed_diverse_families_produce_byte_identical_traces() {
    let manhattan = {
        let mut cfg = small_scenario();
        cfg.mobility = alert_sim::MobilityKind::ManhattanGrid {
            h_streets: 4,
            v_streets: 3,
            turn_prob: 0.4,
            speed_classes: 2,
        };
        cfg
    };
    let convoy = {
        let mut cfg = small_scenario();
        cfg.placement = alert_sim::Placement::Convoy;
        cfg
    };
    let teams_energy = {
        let mut cfg = small_scenario();
        cfg.placement = alert_sim::Placement::SmallTeams {
            team_size: 5,
            spread_m: 40.0,
        };
        cfg.energy.initial_j = Some(300.0);
        cfg.energy.idle_watts = 0.05;
        cfg.energy.cluster_head_fraction = 0.12;
        cfg
    };
    let run = |cfg: &ScenarioConfig| {
        let buf = SharedBuf::new();
        let mut w = World::new(cfg.clone(), 13, |_, _| Flood::default());
        w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
        w.run();
        w.take_trace_sink();
        buf.contents()
    };
    let mut traces = Vec::new();
    for cfg in [&manhattan, &convoy, &teams_energy] {
        let a = run(cfg);
        assert!(!a.is_empty(), "family trace must not be empty");
        assert_eq!(a, run(cfg), "family must trace identically per seed");
        traces.push(a);
    }
    // And the families are genuinely different workloads, not aliases.
    assert_ne!(traces[0], traces[1]);
    assert_ne!(traces[1], traces[2]);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let (traced, _) = traced_run(11);
    let mut plain = World::new(small_scenario(), 11, |_, _| Flood::default());
    plain.run();
    assert_eq!(
        traced.metrics().packets_sent(),
        plain.metrics().packets_sent()
    );
    assert_eq!(
        traced.metrics().delivery_rate(),
        plain.metrics().delivery_rate()
    );
    assert_eq!(
        traced.metrics().hops_per_packet(),
        plain.metrics().hops_per_packet()
    );
    assert_eq!(traced.metrics().drops, plain.metrics().drops);
}

#[test]
fn trace_counters_agree_with_metrics_and_registry() {
    let (w, text) = traced_run(5);
    let events = parse_trace(&text).expect("emitted trace parses");
    let stats = trace_stats(&events);
    let m = w.metrics();

    assert_eq!(stats.app_packets, m.packets_sent() as u64);
    assert_eq!(stats.drops_by_reason, m.drops);
    let delivered = m
        .packets
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    assert_eq!(stats.delivered_packets, delivered as u64);

    // The typed registry and the trace are two independent observers of
    // the same run; they must agree exactly.
    assert_eq!(stats.tx_frames, w.counter("tx.frames"));
    assert_eq!(stats.rx_frames, w.counter("rx.frames"));
    assert_eq!(stats.app_packets, w.counter("app.packets"));
    assert_eq!(stats.delivered_packets, w.counter("delivered"));
    assert_eq!(stats.timer_fires, w.counter("timer.fired"));
    assert_eq!(
        stats.drops_by_reason.values().sum::<u64>(),
        w.counter("drops")
    );
}

#[test]
fn trace_hops_match_metrics_hops() {
    let (w, text) = traced_run(3);
    let events = parse_trace(&text).expect("emitted trace parses");
    let packets = alert_trace::reconstruct_packets(&events);
    let m = w.metrics();
    assert_eq!(packets.len(), m.packets_sent());
    for (id, rec) in m.packets.iter().enumerate() {
        let p = packets
            .get(&(id as u64))
            .unwrap_or_else(|| panic!("packet {id} missing from trace"));
        assert_eq!(p.hops, u64::from(rec.hops), "hop count for packet {id}");
        let participants: Vec<u64> = rec.participants.iter().map(|n| n.0 as u64).collect();
        assert_eq!(p.participants, participants, "participants for packet {id}");
        assert_eq!(p.delivered_at.is_some(), rec.delivered_at.is_some());
    }
}

#[test]
fn registry_snapshot_is_deterministic() {
    let (a, _) = traced_run(9);
    let (b, _) = traced_run(9);
    assert_eq!(a.registry_snapshot(), b.registry_snapshot());
}

/// The flood scenario traced with metrics sampling also enabled;
/// returns the trace text and the encoded timeseries.
fn sampled_run(seed: u64, every: f64) -> (String, String) {
    let buf = SharedBuf::new();
    let mut w = World::new(small_scenario(), seed, |_, _| Flood::default());
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    w.enable_metrics_timeseries(every);
    w.run();
    w.take_trace_sink();
    let series = w.take_metrics_timeseries().expect("sampling was enabled");
    (buf.contents(), series.to_jsonl())
}

#[test]
fn metrics_sampling_does_not_perturb_the_trace() {
    let (_, plain) = traced_run(7);
    let (sampled, _) = sampled_run(7, 5.0);
    assert_eq!(
        plain, sampled,
        "enabling the timeseries sampler must leave the event trace byte-identical"
    );
}

#[test]
fn timeseries_encoding_is_byte_deterministic() {
    let (_, a) = sampled_run(13, 5.0);
    let (_, b) = sampled_run(13, 5.0);
    assert!(
        a.lines().count() > 2,
        "a 20 s run at 5 s sampling must yield several samples"
    );
    assert_eq!(a, b, "same (scenario, seed) must sample identically");
    let parsed = alert_trace::MetricsTimeseries::parse(&a).expect("own encoding parses");
    assert_eq!(parsed.to_jsonl(), a, "encode → parse → encode is identity");
}

/// The faulty scenario: crashes, a regional outage, a degradation window,
/// and link-layer ARQ all active at once.
fn faulty_scenario() -> ScenarioConfig {
    let mut cfg = small_scenario();
    cfg.mac.arq_max_retries = 3;
    cfg.neighbor_staleness_factor = 2.0;
    cfg.faults = FaultPlan {
        crashes: vec![
            NodeCrash {
                node: 3,
                at_s: 4.0,
                recover_s: Some(12.0),
            },
            NodeCrash {
                node: 17,
                at_s: 6.0,
                recover_s: None,
            },
        ],
        regional_outages: vec![RegionOutage {
            x: 0.0,
            y: 0.0,
            w: 250.0,
            h: 250.0,
            start_s: 8.0,
            end_s: 14.0,
        }],
        link_degradations: vec![LinkDegradation {
            start_s: 5.0,
            end_s: 10.0,
            factor: 1.0,
            add: 0.1,
        }],
    };
    cfg
}

fn faulty_traced_run(seed: u64) -> (World<Flood>, String) {
    let buf = SharedBuf::new();
    let mut w = World::new(faulty_scenario(), seed, |_, _| Flood::default());
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    w.run();
    w.take_trace_sink();
    (w, buf.contents())
}

#[test]
fn same_seed_with_faults_produces_byte_identical_traces() {
    let (wa, a) = faulty_traced_run(21);
    let (wb, b) = faulty_traced_run(21);
    assert!(!a.is_empty(), "faulty trace must not be empty");
    assert_eq!(a, b, "same (faulty scenario, seed) must trace identically");
    assert_eq!(wa.registry_snapshot(), wb.registry_snapshot());
    // The plan actually fired: both crashes plus some outage victims.
    assert!(wa.counter("node.downs") >= 2);
    assert!(wa.counter("node.ups") >= 1);
}

#[test]
fn fault_events_round_trip_through_the_codec() {
    let (_, text) = faulty_traced_run(21);
    let events = parse_trace(&text).expect("faulty trace parses");
    let stats = trace_stats(&events);
    assert!(stats.node_downs >= 2, "NodeDown events present in trace");
    assert!(stats.node_ups >= 1, "NodeUp events present in trace");
}

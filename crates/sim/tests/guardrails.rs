//! Run-guardrail guarantees: budgets trip deterministically, livelocks
//! are caught, aborted traces stay parseable (ending in `run_aborted`),
//! and generous budgets are perfectly transparent — same-seed traces
//! stay byte-identical with or without them.

use alert_sim::{
    Api, DataRequest, Frame, JsonlSink, PacketId, ProtocolNode, RunAbort, RunBudget,
    ScenarioConfig, SharedBuf, TimerToken, TraceEvent, TrafficClass, World,
};
use alert_trace::parse_trace;
use std::collections::HashSet;

/// Minimal flooding protocol (same shape as `trace_determinism.rs`),
/// enough to generate a busy, deterministic event stream.
#[derive(Default)]
struct Flood {
    seen: HashSet<PacketId>,
}

#[derive(Debug, Clone)]
struct FloodMsg {
    packet: PacketId,
    ttl: u32,
    bytes: usize,
}

impl ProtocolNode for Flood {
    type Msg = FloodMsg;

    fn name() -> &'static str {
        "FLOOD"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        api.send_broadcast(
            FloodMsg {
                packet: req.packet,
                ttl: 8,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if !self.seen.insert(m.packet) {
            return;
        }
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        if m.ttl > 0 {
            api.mark_hop(m.packet);
            api.send_broadcast(
                FloodMsg {
                    packet: m.packet,
                    ttl: m.ttl - 1,
                    bytes: m.bytes,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        }
    }
}

fn small_scenario(budget: RunBudget) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(15.0);
    cfg.traffic.pairs = 3;
    cfg.budget = budget;
    cfg
}

/// Runs the flood scenario with a JSONL sink attached; returns the world
/// and the raw trace text. The run may abort — that's the point.
fn traced_run(budget: RunBudget, seed: u64) -> (World<Flood>, String, Result<(), RunAbort>) {
    let buf = SharedBuf::new();
    let mut w = World::new(small_scenario(budget), seed, |_, _| Flood::default());
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    let ran = w.try_run();
    w.take_trace_sink();
    (w, buf.contents(), ran)
}

#[test]
fn event_budget_trips_deterministically() {
    let budget = RunBudget {
        max_events: Some(500),
        ..RunBudget::default()
    };
    let (wa, _, ra) = traced_run(budget, 7);
    let abort = ra.expect_err("a 500-event budget must trip on this scenario");
    assert_eq!(abort.reason(), "event_budget");
    // Exactly the budgeted number of events dispatched, never more.
    assert_eq!(wa.events_dispatched(), 500);
    assert_eq!(wa.counter("run.aborts"), 1);
    assert_eq!(wa.aborted(), Some(&abort));

    // Same seed, same budget: the abort is bit-for-bit reproducible.
    let (wb, _, rb) = traced_run(budget, 7);
    assert_eq!(rb.expect_err("same budget must trip again"), abort);
    assert_eq!(wb.events_dispatched(), 500);
}

#[test]
fn sim_time_budget_caps_the_clock() {
    let budget = RunBudget {
        max_sim_seconds: Some(4.0),
        ..RunBudget::default()
    };
    let (w, _, ran) = traced_run(budget, 7);
    let abort = ran.expect_err("a 4 s cap on a 15 s scenario must trip");
    assert_eq!(abort.reason(), "sim_time_budget");
    assert!(
        w.now() <= 4.0,
        "clock {} advanced past the 4 s budget",
        w.now()
    );
}

#[test]
fn wall_clock_budget_aborts() {
    let budget = RunBudget {
        max_wall_seconds: Some(1e-9),
        ..RunBudget::default()
    };
    let (_, _, ran) = traced_run(budget, 7);
    let abort = ran.expect_err("a 1 ns wall budget must trip");
    assert_eq!(abort.reason(), "wall_clock");
}

#[test]
fn aborted_runs_stay_aborted() {
    let budget = RunBudget {
        max_events: Some(200),
        ..RunBudget::default()
    };
    let mut w = World::new(small_scenario(budget), 3, |_, _| Flood::default());
    let first = w.try_run().expect_err("budget must trip");
    // The abort is sticky: re-driving the world reports it again rather
    // than dispatching further events.
    let again = w.try_run().expect_err("aborted world must stay aborted");
    assert_eq!(first, again);
    assert_eq!(w.events_dispatched(), 200);
}

#[test]
fn aborted_trace_is_a_prefix_plus_run_aborted() {
    let (_, full, ran) = traced_run(RunBudget::default(), 7);
    ran.expect("unbudgeted run completes");
    let budget = RunBudget {
        max_events: Some(500),
        ..RunBudget::default()
    };
    let (_, aborted, ran) = traced_run(budget, 7);
    ran.expect_err("budget must trip");

    // Last event of the aborted trace is the abort marker...
    let events = parse_trace(&aborted).expect("aborted trace parses");
    match events.last().expect("aborted trace is non-empty") {
        TraceEvent::RunAborted { reason, events, .. } => {
            assert_eq!(reason, "event_budget");
            assert_eq!(*events, 500);
        }
        other => panic!("last event should be run_aborted, got {other:?}"),
    }
    // ...and everything before it is a byte-for-byte prefix of the
    // unbudgeted run: the guardrail observed the run without steering it.
    let body = &aborted[..aborted
        .rfind('\n')
        .map_or(0, |i| aborted[..i].rfind('\n').map_or(0, |j| j + 1))];
    assert!(
        !body.is_empty(),
        "aborted trace has events before the marker"
    );
    assert!(
        full.starts_with(body),
        "aborted trace must be a prefix of the unbudgeted trace"
    );
}

#[test]
fn generous_budgets_do_not_perturb_traces() {
    let (_, plain, ran) = traced_run(RunBudget::default(), 11);
    ran.expect("unbudgeted run completes");
    let generous = RunBudget {
        max_events: Some(u64::MAX),
        max_sim_seconds: Some(1e9),
        max_events_per_instant: Some(u64::MAX),
        ..RunBudget::default()
    };
    let (_, guarded, ran) = traced_run(generous, 11);
    ran.expect("generous budgets never trip");
    assert!(!plain.is_empty());
    assert_eq!(
        plain, guarded,
        "budget checks must not perturb the simulation"
    );
}

// ---------------------------------------------------------------------
// Livelock
// ---------------------------------------------------------------------

/// A deliberately broken protocol: every timer fire re-arms the timer
/// with zero delay, so simulated time stops advancing the moment the
/// first timer fires. Without the watchdog this spins forever.
struct Spinner;

impl ProtocolNode for Spinner {
    type Msg = ();

    fn name() -> &'static str {
        "SPINNER"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        api.set_timer(0.0, 0 as TimerToken);
    }

    fn on_data_request(&mut self, _api: &mut Api<'_, Self::Msg>, _req: &DataRequest) {}

    fn on_frame(&mut self, _api: &mut Api<'_, Self::Msg>, _frame: Frame<Self::Msg>) {}

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        api.set_timer(0.0, token);
    }
}

#[test]
fn livelock_watchdog_catches_zero_delay_timer_loops() {
    let mut cfg = ScenarioConfig::default().with_nodes(10).with_duration(15.0);
    cfg.traffic.pairs = 1;
    cfg.budget.max_events_per_instant = Some(64);
    let mut w = World::new(cfg, 5, |_, _| Spinner);
    let abort = w
        .try_run()
        .expect_err("the watchdog must catch the zero-delay loop");
    match abort {
        RunAbort::Livelock {
            events_at_instant, ..
        } => assert!(events_at_instant > 64),
        other => panic!("expected a livelock abort, got {other:?}"),
    }
    assert_eq!(abort.reason(), "livelock");
    assert_eq!(w.counter("run.aborts"), 1);
}

//! Pseudonym rotation through the runtime (paper Section 2.2): frames
//! addressed to a just-expired pseudonym must still deliver within the
//! one-generation grace window, and routing must keep working across
//! rotations.

use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, Frame, NodeId, ProtocolNode, ScenarioConfig, Session, TrafficClass, World,
};

/// Captures the destination's pseudonym at start and keeps unicasting to
/// that (increasingly stale) pseudonym for every packet.
struct StaleAddresser {
    stale_dst: Option<Pseudonym>,
}

#[derive(Debug, Clone)]
struct Msg(alert_sim::PacketId);

impl ProtocolNode for StaleAddresser {
    type Msg = Msg;
    fn name() -> &'static str {
        "STALE"
    }
    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let dst = *self.stale_dst.get_or_insert_with(|| {
            // Look the destination up exactly once; never refresh.
            api.lookup(req.dst).expect("registered").pseudonym
        });
        api.mark_hop(req.packet);
        api.send_unicast(
            dst,
            Msg(req.packet),
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }
    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        if api.is_true_destination(frame.msg.0) {
            api.mark_delivered(frame.msg.0);
        }
    }
}

fn run(pseudonym_lifetime_s: f64) -> Vec<Option<f64>> {
    let mut cfg = ScenarioConfig::default().with_duration(30.0);
    cfg.pseudonym_lifetime_s = pseudonym_lifetime_s;
    cfg.traffic.interval_s = 2.0;
    let positions = vec![Point::new(400.0, 500.0), Point::new(550.0, 500.0)];
    let sessions = vec![Session {
        src: NodeId(0),
        dst: NodeId(1),
    }];
    let mut w = World::with_topology(cfg, 5, positions, sessions, |_, _| StaleAddresser {
        stale_dst: None,
    });
    w.run();
    w.metrics().packets.iter().map(|p| p.latency()).collect()
}

#[test]
fn long_lifetime_never_breaks_addressing() {
    let lats = run(1000.0);
    assert!(lats.iter().all(Option::is_some), "no rotation, no loss");
}

#[test]
fn rotation_grace_covers_one_generation_then_expires() {
    // Lifetime 8 s: the pseudonym captured at t~1 s rotates at t=8 and 16.
    // The grace window keeps the *previous* pseudonym resolvable, so
    // packets keep flowing through the first rotation and die after the
    // second (the stale address is then two generations old).
    let lats = run(8.0);
    let delivered: Vec<bool> = lats.iter().map(Option::is_some).collect();
    assert!(delivered[0], "initial packets must deliver");
    // Something was delivered after the first rotation (t in 8..16 ->
    // packets 4..7)...
    assert!(
        delivered[4..7].iter().any(|&d| d),
        "grace window should cover one rotation: {delivered:?}"
    );
    // ...but the tail (t > 16, two rotations later) is dead.
    assert!(
        delivered[9..].iter().all(|&d| !d),
        "two-generation-old pseudonyms must not resolve: {delivered:?}"
    );
}

#[test]
fn fresh_lookups_survive_rotations() {
    // A protocol that looks up the destination per packet (like GPSR)
    // is immune: the location service serves current pseudonyms.
    struct FreshAddresser;
    impl ProtocolNode for FreshAddresser {
        type Msg = Msg;
        fn name() -> &'static str {
            "FRESH"
        }
        fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
            let dst = api.lookup(req.dst).expect("registered").pseudonym;
            api.mark_hop(req.packet);
            api.send_unicast(
                dst,
                Msg(req.packet),
                req.bytes,
                TrafficClass::Data,
                Some(req.packet),
            );
        }
        fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
            if api.is_true_destination(frame.msg.0) {
                api.mark_delivered(frame.msg.0);
            }
        }
    }
    let mut cfg = ScenarioConfig::default().with_duration(30.0);
    cfg.pseudonym_lifetime_s = 5.0; // rotate often
    let positions = vec![Point::new(400.0, 500.0), Point::new(550.0, 500.0)];
    let sessions = vec![Session {
        src: NodeId(0),
        dst: NodeId(1),
    }];
    let mut w = World::with_topology(cfg, 6, positions, sessions, |_, _| FreshAddresser);
    w.run();
    assert!(
        w.metrics().delivery_rate() > 0.99,
        "fresh lookups must survive rotations, got {}",
        w.metrics().delivery_rate()
    );
}

//! Allocation-regression guard for the simulator's steady-state hot
//! paths. The per-tick machinery (hello rounds, mobility/grid updates,
//! pseudonym rotation, FEL traffic) reuses scratch buffers, so once a
//! run is warmed up, ticking the world must perform at most a handful
//! of allocations (rare buffer growth when a cell or neighbor table
//! exceeds its historical peak) — not the O(nodes) per tick the naive
//! collect-into-fresh-Vec implementation costs.

use alert_sim::{Api, DataRequest, Frame, ProtocolNode, ScenarioConfig, World};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation calls (`alloc` and
/// `realloc`; frees are irrelevant to the regression).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A protocol that does nothing: the run exercises only the simulator's
/// own tick machinery (hello rounds, mobility, grid, rotation).
#[derive(Default)]
struct Idle;

impl ProtocolNode for Idle {
    type Msg = ();
    fn name() -> &'static str {
        "IDLE"
    }
    fn on_data_request(&mut self, _api: &mut Api<'_, Self::Msg>, _req: &DataRequest) {}
    fn on_frame(&mut self, _api: &mut Api<'_, Self::Msg>, _frame: Frame<Self::Msg>) {}
}

#[test]
fn steady_state_ticks_are_allocation_free() {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(120)
        .with_duration(100.0);
    cfg.traffic.pairs = 0; // hello + mobility + rotation only
    let mut w = World::new(cfg, 0xA110C, |_, _| Idle);

    // Warm-up: let every scratch buffer, grid cell, and the FEL arena
    // grow to its working size.
    w.run_until(40.0);

    let before = allocs();
    w.run_until(90.0);
    let during = allocs() - before;

    // 50 simulated seconds = 50 hello rounds x 120 nodes = 6000 table
    // refreshes plus 500 mobility ticks. The pre-optimization code
    // allocated at least two Vecs per refresh (> 12000 allocations);
    // steady state now only allocates when some buffer outgrows its
    // historical peak, which mobility can trigger a handful of times.
    assert!(
        during < 500,
        "steady-state ticks allocated {during} times over 50 simulated \
         seconds; hot-path buffer reuse has regressed"
    );
}

#[test]
fn disabled_metrics_sampling_adds_no_allocations() {
    // The `--metrics-every` registry-sampling hook sits on the event
    // dispatch path. When sampling was never enabled it must cost one
    // `Option` branch — no snapshots, no buffers — so a warmed world
    // stays inside the same budget as before the hook existed. (With
    // sampling *on*, snapshot clones allocate by design; that cost is
    // tracked by the `tracing_overhead` bench datum instead.)
    let mut cfg = ScenarioConfig::default()
        .with_nodes(120)
        .with_duration(100.0);
    cfg.traffic.pairs = 0;
    let mut w = World::new(cfg, 0xA110C, |_, _| Idle);
    assert!(
        !w.metrics_timeseries_enabled(),
        "sampling must default to off"
    );

    w.run_until(40.0);
    let before = allocs();
    w.run_until(90.0);
    let during = allocs() - before;

    assert!(
        during < 500,
        "steady-state ticks with sampling disabled allocated {during} \
         times over 50 simulated seconds; the sampling hook is no longer \
         free when off"
    );
    assert!(w.take_metrics_timeseries().is_none());
}

#[test]
fn hello_rounds_allocate_far_less_than_once_per_node_per_round() {
    // A per-tick-allocating implementation costs at least one allocation
    // per node per hello round (nodes x rounds: >= 12000 here). Buffer
    // growth past historical peaks costs at most a few allocations per
    // node over the whole run (observed: ~180). Asserting the per-round
    // rate stays far below one-per-node separates the two regimes with
    // two orders of magnitude of margin on each side.
    const NODES: usize = 240;
    const ROUNDS: u64 = 50; // hello interval is 1 s; we measure 50 s

    let mut cfg = ScenarioConfig::default()
        .with_nodes(NODES)
        .with_duration(100.0);
    cfg.traffic.pairs = 0;
    let mut w = World::new(cfg, 0xA110C, |_, _| Idle);
    w.run_until(40.0);
    let before = allocs();
    w.run_until(90.0);
    let during = allocs() - before;

    let per_round = during / ROUNDS;
    assert!(
        per_round < NODES as u64 / 10,
        "{during} allocations over {ROUNDS} hello rounds at {NODES} nodes \
         ({per_round}/round); the hot path is allocating per node again"
    );
}

//! Model-based equivalence tests for the calendar event queue.
//!
//! A trivially-correct reference FEL — a flat `Vec` popped by linear
//! scan for the minimum `(total_cmp(time), seq)` key — is driven through
//! the same interleaved schedule/pop/cancel sequences as the real
//! [`EventQueue`]. Both must agree on every pop and every cancel. This
//! pins the calendar's moving parts (day buckets, year rolls, overflow
//! ladder migration, geometric retunes, slot recycling) to the simple
//! FIFO-per-instant contract the simulator's byte-identical traces
//! depend on.

use alert_sim::{EventId, EventQueue};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One step of an interleaving. `Cancel` indexes into the set of
/// still-live handles at the moment it executes.
#[derive(Debug, Clone)]
enum Op {
    Schedule(f64),
    Pop,
    Cancel(usize),
}

/// Times covering every calendar regime: ordinary near-future values
/// (day buckets), repeated constants (same-instant FIFO bursts),
/// sub-bucket-width clusters, and far-future values that must ride the
/// overflow ladder until a year roll migrates them.
fn arb_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => 0.0..100.0f64,
        2 => Just(1.0),
        2 => Just(2.5),
        1 => 0.0..1.0e-3f64,
        1 => 1.0e6..1.0e9f64,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => arb_time().prop_map(Op::Schedule),
        3 => Just(Op::Pop),
        2 => (0usize..64).prop_map(Op::Cancel),
    ]
}

/// The reference model: linear-scan extraction over a flat vector,
/// mirroring the queue's admission rules (finite times only, past times
/// clamped to `now`, `-0.0` normalized to `+0.0`).
struct Reference {
    live: Vec<(f64, u64)>,
    now: f64,
}

impl Reference {
    fn new() -> Self {
        Reference {
            live: Vec::new(),
            now: 0.0,
        }
    }

    fn schedule(&mut self, time: f64, seq: u64) {
        let time = if time == 0.0 { 0.0 } else { time };
        let time = if time < self.now { self.now } else { time };
        self.live.push((time, seq));
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        let at = self
            .live
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(i, _)| i)?;
        let (t, s) = self.live.remove(at);
        self.now = t;
        Some((t, s))
    }

    fn cancel(&mut self, seq: u64) -> Option<u64> {
        let at = self.live.iter().position(|&(_, s)| s == seq)?;
        Some(self.live.remove(at).1)
    }
}

/// Runs one interleaving through both implementations, comparing every
/// observable step, then drains both and compares the full tail.
fn check_equivalence(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Reference::new();
    let mut handles: Vec<(EventId, u64)> = Vec::new();
    let mut seq = 0u64;
    for op in ops {
        match *op {
            Op::Schedule(t) => {
                let id = q.schedule(t, seq);
                model.schedule(t, seq);
                handles.push((id, seq));
                seq += 1;
            }
            Op::Pop => {
                let got = q.pop();
                let want = model.pop().map(|(t, s)| (t, s));
                prop_assert_eq!(got, want, "pop diverged");
                if let Some((_, s)) = got {
                    handles.retain(|&(_, h)| h != s);
                }
            }
            Op::Cancel(pick) => {
                if handles.is_empty() {
                    continue;
                }
                let (id, s) = handles.remove(pick % handles.len());
                let got = q.cancel(id);
                let want = model.cancel(s);
                prop_assert_eq!(got, want, "cancel diverged for seq {}", s);
            }
        }
        prop_assert_eq!(q.len(), model.live.len(), "len diverged");
    }
    loop {
        let got = q.pop();
        let want = model.pop().map(|(t, s)| (t, s));
        prop_assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    /// Arbitrary schedule/pop/cancel interleavings: the calendar agrees
    /// with the reference on every step.
    #[test]
    fn interleavings_match_the_reference(
        ops in proptest::collection::vec(arb_op(), 1..250),
    ) {
        check_equivalence(&ops)?;
    }

    /// Bursts of events at a handful of shared timestamps, with pops
    /// mixed in: FIFO within each instant must match the model exactly,
    /// across the retunes such bursts trigger.
    #[test]
    fn same_instant_bursts_stay_fifo(
        bursts in proptest::collection::vec(
            ((0usize..4), (1usize..30), any::<bool>()),
            1..40,
        ),
    ) {
        let instants = [0.0, 1.0, 2.5, 60.0];
        let mut ops = Vec::new();
        for (which, n, pop_after) in bursts {
            for _ in 0..n {
                ops.push(Op::Schedule(instants[which]));
            }
            if pop_after {
                ops.push(Op::Pop);
            }
        }
        check_equivalence(&ops)?;
    }

    /// Mixes dominated by far-future times force events through the
    /// overflow ladder and across year rolls; cancels reach into the
    /// ladder as well as the day buckets.
    #[test]
    fn overflow_ladder_migration_matches(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (1.0e5..1.0e9f64).prop_map(Op::Schedule),
                2 => (0.0..10.0f64).prop_map(Op::Schedule),
                3 => Just(Op::Pop),
                2 => (0usize..64).prop_map(Op::Cancel),
            ],
            1..200,
        ),
    ) {
        check_equivalence(&ops)?;
    }
}

//! Property-based tests of the event queue's determinism contract.

use alert_sim::EventQueue;
use proptest::prelude::*;

proptest! {
    /// Pops always come out in nondecreasing time order.
    #[test]
    fn pops_are_time_ordered(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Events at identical timestamps preserve insertion order (FIFO).
    #[test]
    fn equal_times_fifo(groups in proptest::collection::vec((0.0f64..100.0, 1usize..10), 1..20)) {
        let mut q = EventQueue::new();
        let mut id = 0usize;
        for (t, n) in &groups {
            for _ in 0..*n {
                q.schedule(*t, (*t, id));
                id += 1;
            }
        }
        let mut seen_per_time: std::collections::HashMap<u64, usize> = Default::default();
        while let Some((t, (_, eid))) = q.pop() {
            // Within one timestamp, ids must be increasing.
            let key = t.to_bits();
            if let Some(prev) = seen_per_time.get(&key) {
                prop_assert!(eid > *prev, "FIFO violated at t={t}");
            }
            seen_per_time.insert(key, eid);
        }
    }

    /// Every scheduled event is eventually popped exactly once.
    #[test]
    fn conservation(times in proptest::collection::vec(0.0f64..1e3, 0..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Interleaving schedules with pops never reorders the past: an event
    /// scheduled with a delay lands at or after the current clock.
    #[test]
    fn no_time_travel(ops in proptest::collection::vec((0.0f64..100.0, any::<bool>()), 1..100)) {
        let mut q = EventQueue::new();
        let mut clock = 0.0f64;
        for (t, do_pop) in ops {
            q.schedule_in(t, ());
            if do_pop {
                if let Some((at, ())) = q.pop() {
                    prop_assert!(at >= clock);
                    clock = at;
                }
            }
        }
    }
}

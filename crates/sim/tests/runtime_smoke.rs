//! End-to-end exercises of the simulator runtime with a minimal flooding
//! protocol — validates delivery, determinism, metrics plumbing, the
//! location service, and the observer hook before any real routing
//! protocol exists on top.

use alert_sim::{
    Api, DataRequest, Frame, LocationPolicy, MobilityKind, NodeId, Observer, PacketId,
    ProtocolNode, ScenarioConfig, TrafficClass, TxEvent, World,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Controlled flooding: every node rebroadcasts each packet once, with a
/// hop budget. Dumb but delivery-complete on a connected network.
#[derive(Default)]
struct Flood {
    seen: HashSet<(PacketId, u32)>,
}

#[derive(Debug, Clone)]
struct FloodMsg {
    packet: PacketId,
    ttl: u32,
    bytes: usize,
}

impl ProtocolNode for Flood {
    type Msg = FloodMsg;

    fn name() -> &'static str {
        "FLOOD"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        api.send_broadcast(
            FloodMsg {
                packet: req.packet,
                ttl: 8,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if !self.seen.insert((m.packet, 0)) {
            return;
        }
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        if m.ttl > 0 {
            api.mark_hop(m.packet);
            api.send_broadcast(
                FloodMsg {
                    packet: m.packet,
                    ttl: m.ttl - 1,
                    bytes: m.bytes,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        }
    }
}

fn small_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(60).with_duration(20.0);
    cfg.traffic.pairs = 4;
    cfg
}

fn run_flood(cfg: ScenarioConfig, seed: u64) -> World<Flood> {
    let mut w = World::new(cfg, seed, |_, _| Flood::default());
    w.run();
    w
}

#[test]
fn flooding_delivers_on_dense_network() {
    let w = run_flood(small_scenario(), 1);
    let m = w.metrics();
    assert!(m.packets_sent() > 0, "traffic generator produced packets");
    let rate = m.delivery_rate();
    assert!(
        rate > 0.9,
        "flooding on a dense field must deliver, got {rate}"
    );
    let latency = m.mean_latency().expect("some deliveries");
    assert!(
        latency > 0.0 && latency < 1.0,
        "latency {latency}s out of range"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run_flood(small_scenario(), 7);
    let b = run_flood(small_scenario(), 7);
    assert_eq!(a.metrics().packets_sent(), b.metrics().packets_sent());
    assert_eq!(a.metrics().delivery_rate(), b.metrics().delivery_rate());
    assert_eq!(a.metrics().mean_latency(), b.metrics().mean_latency());
    assert_eq!(a.metrics().hops_per_packet(), b.metrics().hops_per_packet());
    assert_eq!(a.metrics().control_frames, b.metrics().control_frames);
    let c = run_flood(small_scenario(), 8);
    // Different seed: placements differ, so at minimum hop counts differ.
    assert!(
        a.metrics().hops_per_packet() != c.metrics().hops_per_packet()
            || a.metrics().mean_latency() != c.metrics().mean_latency(),
        "seeds 7 and 8 produced identical runs"
    );
}

#[test]
fn sessions_use_distinct_endpoints() {
    let w = run_flood(small_scenario(), 3);
    let mut seen = HashSet::new();
    for s in w.sessions() {
        assert_ne!(s.src, s.dst);
        assert!(seen.insert(s.src), "source reused");
        assert!(seen.insert(s.dst), "destination reused");
    }
}

#[test]
fn hello_overhead_is_accounted() {
    let w = run_flood(small_scenario(), 4);
    let m = w.metrics();
    // 60 nodes, 20 s, 1 s hello interval -> at least 60 * 20 beacons.
    assert!(
        m.control_frames >= 60 * 20,
        "expected >= 1200 hello beacons, got {}",
        m.control_frames
    );
    assert!(m.control_bytes > 0);
}

#[test]
fn location_service_policy_freezes_destinations() {
    let mut cfg = small_scenario().with_location(LocationPolicy::SessionStart);
    cfg.speed = 8.0;
    let w = run_flood(cfg, 5);
    assert!(w.location().messages > 0);
}

#[test]
fn observer_sees_all_transmissions() {
    struct Counter(Arc<AtomicU64>);
    impl Observer for Counter {
        fn on_transmission(&mut self, _ev: &TxEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let count = Arc::new(AtomicU64::new(0));
    let mut w = World::new(small_scenario(), 6, |_, _| Flood::default());
    w.add_observer(Box::new(Counter(count.clone())));
    w.run();
    let seen = count.load(Ordering::Relaxed);
    // Every data frame is a transmission; hellos are implicit (not frames),
    // so the observer count tracks protocol transmissions only.
    let hops: u64 = w.metrics().packets.iter().map(|p| u64::from(p.hops)).sum();
    assert_eq!(
        seen, hops,
        "observer must see exactly the data transmissions"
    );
}

#[test]
fn static_mobility_keeps_positions() {
    let cfg = small_scenario().with_mobility(MobilityKind::Static);
    let mut w = World::new(cfg, 9, |_, _| Flood::default());
    let p0: Vec<_> = (0..10).map(|i| w.position(NodeId(i))).collect();
    w.run();
    let p1: Vec<_> = (0..10).map(|i| w.position(NodeId(i))).collect();
    assert_eq!(p0, p1);
}

#[test]
fn group_mobility_runs() {
    // Groups wide enough to keep the sparse 60-node field connected; the
    // tight-cluster partition case is exercised by Fig. 17.
    let cfg = small_scenario().with_mobility(MobilityKind::Group {
        groups: 6,
        range: 300.0,
    });
    let w = run_flood(cfg, 10);
    assert!(w.metrics().delivery_rate() > 0.5);
}

#[test]
fn run_until_supports_time_slicing() {
    let mut w = World::new(small_scenario(), 11, |_, _| Flood::default());
    let mut steps = 0;
    let mut t = 0.0;
    while t < 20.0 {
        t += 2.0;
        w.run_until(t);
        assert!(w.now() <= t + 1e-9);
        steps += 1;
    }
    assert_eq!(steps, 10);
    w.run();
    assert!(w.metrics().delivery_rate() > 0.9);
}

#[test]
fn nodes_in_zone_matches_positions() {
    let w = run_flood(small_scenario(), 12);
    let zone = alert_geom::Rect::new(
        alert_geom::Point::new(0.0, 0.0),
        alert_geom::Point::new(500.0, 500.0),
    );
    for id in w.nodes_in_zone(&zone) {
        assert!(zone.contains(w.position(id)));
    }
}

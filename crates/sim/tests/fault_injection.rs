//! End-to-end guarantees of the fault-injection subsystem: crashed nodes
//! participate in nothing while down, neighbor staleness eviction fires
//! the `on_neighbor_lost` hook (with or without a fault plan), link-layer
//! ARQ retries up to its budget, and recovery is a warm reboot with a new
//! timer incarnation.

use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, FaultPlan, Frame, JsonlSink, NeighborEntry, NodeCrash, NodeId, PacketId,
    ProtocolNode, RegionOutage, ScenarioConfig, Session, SharedBuf, TimerToken, TrafficClass,
    World,
};
use alert_trace::{down_intervals, parse_trace, TraceEvent};
use std::collections::HashSet;

/// Instrumented single-hop protocol: unicasts data to the first neighbor
/// and counts every lifecycle callback, so tests can read per-node
/// ground truth back out of the protocol instances.
#[derive(Default)]
struct Probe {
    starts: u32,
    timer_fires: u32,
    neighbors_lost: u32,
}

#[derive(Debug, Clone)]
struct Ping(PacketId);

impl ProtocolNode for Probe {
    type Msg = Ping;

    fn name() -> &'static str {
        "PROBE"
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        self.starts += 1;
        api.set_timer(5.0, 1);
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        if let Some(n) = api.neighbors().first().copied() {
            api.send_unicast(
                n.pseudonym,
                Ping(req.packet),
                req.bytes,
                TrafficClass::Data,
                Some(req.packet),
            );
        }
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let Ping(pkt) = frame.msg;
        if api.is_true_destination(pkt) {
            api.mark_delivered(pkt);
        }
    }

    fn on_timer(&mut self, _api: &mut Api<'_, Self::Msg>, _token: TimerToken) {
        self.timer_fires += 1;
    }

    fn on_neighbor_lost(&mut self, _api: &mut Api<'_, Self::Msg>, _neighbor: &NeighborEntry) {
        self.neighbors_lost += 1;
    }
}

/// Minimal flooding protocol for multi-hop churn runs.
#[derive(Default)]
struct Flood {
    seen: HashSet<PacketId>,
}

#[derive(Debug, Clone)]
struct FloodMsg {
    packet: PacketId,
    ttl: u32,
    bytes: usize,
}

impl ProtocolNode for Flood {
    type Msg = FloodMsg;

    fn name() -> &'static str {
        "FLOOD"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        api.send_broadcast(
            FloodMsg {
                packet: req.packet,
                ttl: 8,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if !self.seen.insert(m.packet) {
            return;
        }
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        if m.ttl > 0 {
            api.mark_hop(m.packet);
            api.send_broadcast(
                FloodMsg {
                    packet: m.packet,
                    ttl: m.ttl - 1,
                    bytes: m.bytes,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        }
    }
}

/// A two-node line topology with one session from node 0 to node 1.
fn pair_world(cfg: ScenarioConfig) -> World<Probe> {
    World::with_topology(
        cfg,
        1,
        vec![Point::new(100.0, 500.0), Point::new(200.0, 500.0)],
        vec![Session {
            src: NodeId(0),
            dst: NodeId(1),
        }],
        |_, _| Probe::default(),
    )
}

#[test]
fn crashed_nodes_participate_in_no_packet_while_down() {
    let mut cfg = ScenarioConfig::default().with_nodes(60).with_duration(20.0);
    cfg.traffic.pairs = 4;
    cfg.faults = FaultPlan::churn(cfg.nodes, 0.3, cfg.duration_s, 1);
    assert!(!cfg.faults.is_empty());

    let buf = SharedBuf::new();
    let mut w = World::new(cfg, 5, |_, _| Flood::default());
    w.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    w.run();
    w.take_trace_sink();

    let events = parse_trace(&buf.contents()).expect("trace parses");
    let down = down_intervals(&events);
    assert!(!down.is_empty(), "churn plan produced down intervals");
    // The acceptance criterion: between its NodeDown and NodeUp a node
    // transmits nothing and joins no packet's participant set.
    let active = |node: u64, time: f64| {
        if let Some(ivs) = down.get(&node) {
            for &(d, u) in ivs {
                assert!(
                    !(time >= d && time < u),
                    "node {node} active at {time} inside down interval [{d}, {u})"
                );
            }
        }
    };
    for e in &events {
        match *e {
            TraceEvent::Tx { time, node, .. } => active(node, time),
            TraceEvent::Hop { time, node, .. } => active(node, time),
            TraceEvent::RandomForwarder { time, node, .. } => active(node, time),
            TraceEvent::Delivered { time, node, .. } => active(node, time),
            TraceEvent::TimerFire { time, node, .. } => active(node, time),
            _ => {}
        }
    }
}

#[test]
fn crash_evicts_neighbor_and_fires_hook_after_staleness_window() {
    let mut cfg = ScenarioConfig::default().with_duration(12.0);
    cfg.neighbor_staleness_factor = 3.0;
    cfg.faults = FaultPlan {
        crashes: vec![NodeCrash {
            node: 1,
            at_s: 3.0,
            recover_s: None,
        }],
        ..FaultPlan::default()
    };
    let mut w = pair_world(cfg);
    w.run();
    // Node 1 last beaconed at t = 2; with k = 3 its entry survives the
    // hellos at 3 and 4 and is evicted at t = 5, firing the hook once.
    assert_eq!(w.protocol(NodeId(0)).neighbors_lost, 1);
    assert_eq!(w.counter("node.downs"), 1);
    assert_eq!(w.counter("node.ups"), 0);
}

#[test]
fn staleness_eviction_works_without_any_fault_plan() {
    // Eviction is a property of the beacon layer, not the fault layer:
    // with an empty plan, mobility alone must age entries out.
    let mut cfg = ScenarioConfig::default()
        .with_nodes(60)
        .with_duration(20.0)
        .with_speed(20.0);
    cfg.traffic.pairs = 2;
    cfg.neighbor_staleness_factor = 2.0;
    assert!(cfg.faults.is_empty());
    let mut w = World::new(cfg, 3, |_, _| Probe::default());
    w.run();
    let lost: u32 = (0..60).map(|i| w.protocol(NodeId(i)).neighbors_lost).sum();
    assert!(lost > 0, "fast mobility must age some neighbor entries out");
    assert_eq!(w.counter("node.downs"), 0, "no faults were injected");
}

#[test]
fn arq_retries_up_to_budget_then_drops() {
    let mut cfg = ScenarioConfig::default().with_duration(6.0);
    cfg.mac.loss_probability = 1.0;
    cfg.mac.arq_max_retries = 2;
    let mut w = pair_world(cfg);
    w.run();
    let m = w.metrics();
    // Packets at t = 1, 3, 5; every attempt lost; each packet burns two
    // retries then drops with the ARQ-specific reason.
    assert_eq!(m.drops.get("retry_limit_exceeded").copied(), Some(3));
    assert_eq!(m.drops.get("unicast_channel_loss"), None);
    let snap = w.registry_snapshot();
    let retries = snap.histograms.get("link.retries").expect("histogram");
    assert_eq!(retries.count, 6, "two retry attempts per packet");
    assert_eq!(m.delivery_rate(), 0.0);
}

#[test]
fn arq_disabled_by_default_drops_immediately() {
    let mut cfg = ScenarioConfig::default().with_duration(6.0);
    cfg.mac.loss_probability = 1.0;
    assert_eq!(cfg.mac.arq_max_retries, 0);
    let mut w = pair_world(cfg);
    w.run();
    let m = w.metrics();
    assert_eq!(m.drops.get("unicast_channel_loss").copied(), Some(3));
    assert_eq!(m.drops.get("retry_limit_exceeded"), None);
    let snap = w.registry_snapshot();
    assert!(snap
        .histograms
        .get("link.retries")
        .map_or(true, |h| h.count == 0));
}

#[test]
fn recovery_is_a_warm_reboot_with_fresh_timer_epoch() {
    let mut cfg = ScenarioConfig::default().with_duration(10.0);
    cfg.faults = FaultPlan {
        crashes: vec![NodeCrash {
            node: 1,
            at_s: 1.0,
            recover_s: Some(3.0),
        }],
        ..FaultPlan::default()
    };
    let mut w = pair_world(cfg);
    w.run();
    // Node 1: on_start at t = 0 and again at recovery (t = 3). The t = 0
    // timer (due t = 5) belongs to the dead incarnation and is swallowed;
    // the recovery timer (due t = 8) fires.
    assert_eq!(w.protocol(NodeId(1)).starts, 2);
    assert_eq!(w.protocol(NodeId(1)).timer_fires, 1);
    // Node 0 is untouched.
    assert_eq!(w.protocol(NodeId(0)).starts, 1);
    assert_eq!(w.protocol(NodeId(0)).timer_fires, 1);
    assert_eq!(w.counter("node.downs"), 1);
    assert_eq!(w.counter("node.ups"), 1);
}

#[test]
fn crashed_source_drops_generated_packets() {
    let mut cfg = ScenarioConfig::default().with_duration(6.0);
    cfg.faults = FaultPlan {
        crashes: vec![NodeCrash {
            node: 0,
            at_s: 0.5,
            recover_s: None,
        }],
        ..FaultPlan::default()
    };
    let mut w = pair_world(cfg);
    w.run();
    let m = w.metrics();
    assert_eq!(m.drops.get("source_node_down").copied(), Some(3));
    assert_eq!(m.delivery_rate(), 0.0);
}

#[test]
fn regional_outage_downs_exactly_the_nodes_inside() {
    let mut cfg = ScenarioConfig::default().with_duration(8.0);
    cfg.faults = FaultPlan {
        regional_outages: vec![RegionOutage {
            x: 0.0,
            y: 400.0,
            w: 300.0,
            h: 200.0,
            start_s: 2.0,
            end_s: 4.0,
        }],
        ..FaultPlan::default()
    };
    // Nodes 0 and 1 sit inside the rectangle, node 2 outside it.
    let mut w: World<Probe> = World::with_topology(
        cfg,
        1,
        vec![
            Point::new(100.0, 500.0),
            Point::new(200.0, 500.0),
            Point::new(600.0, 500.0),
        ],
        vec![Session {
            src: NodeId(0),
            dst: NodeId(1),
        }],
        |_, _| Probe::default(),
    );
    w.run();
    assert_eq!(w.counter("node.downs"), 2);
    assert_eq!(w.counter("node.ups"), 2);
    // The outside node never rebooted; the victims did.
    assert_eq!(w.protocol(NodeId(2)).starts, 1);
    assert_eq!(w.protocol(NodeId(0)).starts, 2);
    assert_eq!(w.protocol(NodeId(1)).starts, 2);
}

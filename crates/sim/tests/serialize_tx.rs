//! The half-duplex transmitter option: back-to-back sends from one node
//! must serialize when `serialize_tx` is on and may overlap when off.

use alert_sim::{Api, DataRequest, Frame, ProtocolNode, ScenarioConfig, TrafficClass, World};
use std::sync::{Arc, Mutex};

/// Sends a burst of 10 broadcasts per data request; receivers record
/// frame arrival times into a shared log.
struct Burst {
    arrivals: Arc<Mutex<Vec<f64>>>,
}

impl ProtocolNode for Burst {
    type Msg = u32;
    fn name() -> &'static str {
        "BURST"
    }
    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        for i in 0..10 {
            api.send_broadcast(i, req.bytes, TrafficClass::Data, Some(req.packet));
            api.mark_hop(req.packet);
        }
    }
    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, _frame: Frame<Self::Msg>) {
        self.arrivals.lock().unwrap().push(api.now());
    }
}

/// Returns the span between the first and last frame arrival.
fn run(serialize: bool) -> f64 {
    let mut cfg = ScenarioConfig::default().with_nodes(20).with_duration(5.0);
    cfg.traffic.pairs = 1;
    cfg.traffic.interval_s = 100.0; // single burst
    cfg.mac.serialize_tx = serialize;
    let arrivals: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let handle = arrivals.clone();
    let mut w = World::new(cfg, 3, move |_, _| Burst {
        arrivals: handle.clone(),
    });
    w.run();
    let log = arrivals.lock().unwrap();
    assert!(!log.is_empty(), "burst reached nobody");
    let (min, max) = log
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
    max - min
}

#[test]
fn serialization_stretches_bursts() {
    let overlapped = run(false);
    let serialized = run(true);
    assert!(
        serialized > overlapped + 0.01,
        "10-frame burst arrival span should stretch under half-duplex: \
{overlapped:.4}s -> {serialized:.4}s"
    );
}

#[test]
fn default_mac_does_not_serialize() {
    assert!(!ScenarioConfig::default().mac.serialize_tx);
}

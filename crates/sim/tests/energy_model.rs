//! End-to-end guarantees of the per-node energy meter and the placement
//! models: meters drain monotonically and never go negative, drained
//! joules equal the sum of their accounting buckets, battery death is
//! permanent (fault recovery cannot revive a drained node), cluster-head
//! election and beacon withdrawal only exist in metered runs, and the
//! convoy / small-teams placements put nodes where they claim to.

use alert_geom::{Point, Rect};
use alert_sim::{
    Api, DataRequest, FaultPlan, Frame, MobilityKind, NodeCrash, NodeId, PacketId, Placement,
    ProtocolNode, ScenarioConfig, Session, TrafficClass, World,
};
use std::collections::HashSet;

/// Minimal flooding protocol: enough traffic to exercise tx/rx charging.
#[derive(Default)]
struct Flood {
    seen: HashSet<PacketId>,
}

#[derive(Debug, Clone)]
struct FloodMsg {
    packet: PacketId,
    ttl: u32,
    bytes: usize,
}

impl ProtocolNode for Flood {
    type Msg = FloodMsg;

    fn name() -> &'static str {
        "FLOOD"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.mark_hop(req.packet);
        api.send_broadcast(
            FloodMsg {
                packet: req.packet,
                ttl: 8,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if !self.seen.insert(m.packet) {
            return;
        }
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        if m.ttl > 0 {
            api.mark_hop(m.packet);
            api.send_broadcast(
                FloodMsg {
                    packet: m.packet,
                    ttl: m.ttl - 1,
                    bytes: m.bytes,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        }
    }
}

fn metered_scenario(initial_j: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(15.0);
    cfg.traffic.pairs = 3;
    cfg.energy.initial_j = Some(initial_j);
    cfg.energy.idle_watts = 0.05;
    cfg
}

#[test]
fn unmetered_default_has_no_per_node_meter() {
    let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(10.0);
    cfg.traffic.pairs = 3;
    assert!(!cfg.energy.metered());
    let mut w = World::new(cfg, 1, |_, _| Flood::default());
    w.run();
    assert!(w.energy_remaining().is_none(), "no meter without a budget");
    let acct = &w.metrics().node_energy;
    assert_eq!(acct.drained_j, 0.0);
    assert_eq!(acct.deaths, 0);
    assert_eq!(w.counter("energy.deaths"), 0);
    assert_eq!(w.counter("energy.cluster_heads"), 0);
    assert!(!(0..40).any(|i| w.is_cluster_head(NodeId(i))));
    // The legacy aggregate joule counters still accrue.
    assert!(w.metrics().energy_tx_j > 0.0);
}

#[test]
fn meters_drain_monotonically_and_never_go_negative() {
    let mut w = World::new(metered_scenario(120.0), 2, |_, _| Flood::default());
    let mut prev = w.energy_remaining().expect("metered").to_vec();
    let mut t = 0.0;
    while t < 15.0 {
        t += 3.0;
        w.run_until(t);
        let cur = w.energy_remaining().expect("metered");
        for (i, (&was, &now)) in prev.iter().zip(cur).enumerate() {
            assert!(now >= 0.0, "node {i} meter went negative: {now}");
            assert!(now <= was + 1e-12, "node {i} meter rose {was} -> {now}");
        }
        prev = cur.to_vec();
    }
}

#[test]
fn drained_joules_equal_the_sum_of_their_buckets() {
    let mut w = World::new(metered_scenario(120.0), 3, |_, _| Flood::default());
    w.run();
    let acct = &w.metrics().node_energy;
    assert!(acct.drained_j > 0.0, "a live run must drain something");
    let parts = acct.tx_j + acct.rx_j + acct.idle_j + acct.beacon_j;
    assert!(
        (acct.drained_j - parts).abs() <= 1e-9 * (1.0 + parts.abs()),
        "drained {} != bucket sum {parts}",
        acct.drained_j
    );
    // What left the batteries is what the meters no longer hold.
    let remaining: f64 = w.energy_remaining().expect("metered").iter().sum();
    let initial_total = 120.0 * 40.0;
    assert!(
        (initial_total - remaining - acct.drained_j).abs() <= 1e-6,
        "meter sum {remaining} inconsistent with drained {}",
        acct.drained_j
    );
}

#[test]
fn zero_budget_kills_every_node_at_time_zero() {
    let mut w = World::new(metered_scenario(0.0), 4, |_, _| Flood::default());
    w.run();
    assert_eq!(w.counter("energy.deaths"), 40);
    assert_eq!(w.metrics().node_energy.deaths, 40);
    assert_eq!(w.counter("node.downs"), 40);
    assert_eq!(w.counter("node.ups"), 0, "battery death has no recovery");
    assert_eq!(w.metrics().delivery_rate(), 0.0);
    // The construction-time beacon round at t = 0 precedes the depletion
    // sweep (a node may well die *because* of that round), so every node
    // beacons exactly once and never again.
    assert_eq!(w.metrics().control_frames, 40);
}

#[test]
fn energy_death_preempts_fault_recovery() {
    // FIFO-ordering pin: energy-depletion events are scheduled before any
    // fault event at t = 0, so the fault plan's crash lands on an
    // already-dead node and its recovery only shallows the outage depth —
    // `node.ups` must stay 0 because depth never returns to zero.
    let mut cfg = ScenarioConfig::default().with_duration(10.0);
    cfg.energy.initial_j = Some(0.0);
    cfg.faults = FaultPlan {
        crashes: vec![NodeCrash {
            node: 1,
            at_s: 0.0,
            recover_s: Some(5.0),
        }],
        ..FaultPlan::default()
    };
    let mut w: World<Flood> = World::with_topology(
        cfg,
        5,
        vec![Point::new(100.0, 500.0), Point::new(200.0, 500.0)],
        vec![Session {
            src: NodeId(0),
            dst: NodeId(1),
        }],
        |_, _| Flood::default(),
    );
    w.run();
    assert_eq!(w.counter("energy.deaths"), 2);
    assert_eq!(w.counter("node.downs"), 2, "only the 0->1 transition counts");
    assert_eq!(w.counter("node.ups"), 0, "recovery cannot revive a drained node");
}

#[test]
fn cluster_heads_exist_only_in_metered_runs() {
    let mut cfg = metered_scenario(500.0);
    cfg.energy.cluster_head_fraction = 0.4;
    let mut w = World::new(cfg, 6, |_, _| Flood::default());
    w.run();
    assert!(
        w.counter("energy.cluster_heads") > 0,
        "a 0.4 fraction over 40 nodes x 15 rounds must elect someone"
    );

    let mut plain = World::new(
        {
            let mut c = ScenarioConfig::default().with_nodes(40).with_duration(15.0);
            c.traffic.pairs = 3;
            c.energy.cluster_head_fraction = 0.4; // ignored without a budget
            c
        },
        6,
        |_, _| Flood::default(),
    );
    plain.run();
    assert_eq!(plain.counter("energy.cluster_heads"), 0);
}

#[test]
fn low_energy_nodes_withdraw_from_beaconing() {
    // With the relay threshold at the full budget, every node falls below
    // it after its first joule drains and stops beaconing; the run must
    // produce strictly less hello traffic than its unmetered twin.
    let mut starved = metered_scenario(200.0);
    starved.energy.relay_threshold_fraction = 1.0;
    let mut a = World::new(starved, 7, |_, _| Flood::default());
    a.run();

    let mut plain = ScenarioConfig::default().with_nodes(40).with_duration(15.0);
    plain.traffic.pairs = 3;
    let mut b = World::new(plain, 7, |_, _| Flood::default());
    b.run();

    assert!(
        a.metrics().control_frames < b.metrics().control_frames,
        "withdrawn nodes must beacon less: {} vs {}",
        a.metrics().control_frames,
        b.metrics().control_frames
    );
}

#[test]
fn convoy_places_nodes_in_a_line_on_the_midline() {
    let field = Rect::with_size(1000.0, 600.0);
    let pos = Placement::Convoy.positions(field, 10, 42).expect("convoy");
    assert_eq!(pos.len(), 10);
    for w in pos.windows(2) {
        assert!(w[0].x < w[1].x, "convoy x-coordinates must ascend");
    }
    for p in &pos {
        assert_eq!(p.y, 300.0, "convoy rides the horizontal midline");
        assert!(field.contains(*p));
    }
    // Pure in the seed (and in fact seed-independent for a convoy).
    assert_eq!(pos, Placement::Convoy.positions(field, 10, 43).unwrap());
}

#[test]
fn small_teams_cluster_within_their_spread() {
    let field = Rect::with_size(1000.0, 1000.0);
    let team_size = 4usize;
    let spread = 30.0;
    let place = Placement::SmallTeams {
        team_size,
        spread_m: spread,
    };
    let pos = place.positions(field, 19, 9).expect("teams");
    assert_eq!(pos.len(), 19);
    // Teammates scatter at most `spread` per axis from a shared center, so
    // any two members of one team sit within 2 * spread per axis.
    for (i, a) in pos.iter().enumerate() {
        assert!(field.contains(*a), "member {i} escaped the field");
        for (j, b) in pos.iter().enumerate().skip(i + 1) {
            if i / team_size == j / team_size {
                assert!(
                    (a.x - b.x).abs() <= 2.0 * spread && (a.y - b.y).abs() <= 2.0 * spread,
                    "teammates {i},{j} too far apart: {a:?} vs {b:?}"
                );
            }
        }
    }
    // Deterministic in the seed; a different seed moves the team centers.
    assert_eq!(pos, place.positions(field, 19, 9).unwrap());
    assert_ne!(pos, place.positions(field, 19, 10).unwrap());
}

#[test]
fn uniform_placement_defers_to_the_mobility_model() {
    let field = Rect::with_size(1000.0, 1000.0);
    assert!(Placement::Uniform.positions(field, 50, 7).is_none());
}

#[test]
fn world_applies_convoy_placement() {
    let mut cfg = ScenarioConfig::default().with_nodes(20).with_duration(5.0);
    cfg.traffic.pairs = 2;
    cfg.placement = Placement::Convoy;
    cfg.mobility = MobilityKind::Static;
    let w = World::new(cfg, 8, |_, _| Flood::default());
    for i in 0..20 {
        assert_eq!(
            w.position(NodeId(i)).y,
            500.0,
            "static convoy node {i} must sit on the midline"
        );
    }
}

#[test]
fn manhattan_mobility_snaps_convoy_placement_to_lanes() {
    let mut cfg = ScenarioConfig::default().with_nodes(12).with_duration(5.0);
    cfg.traffic.pairs = 1;
    cfg.placement = Placement::Convoy;
    cfg.mobility = MobilityKind::ManhattanGrid {
        h_streets: 3,
        v_streets: 3,
        turn_prob: 0.5,
        speed_classes: 1,
    };
    let w = World::new(cfg, 9, |_, _| Flood::default());
    // Lane k of 3 sits at fraction (k + 0.5) / 3 of the 1,000 m span.
    let lanes: Vec<f64> = (0..3).map(|k| 1000.0 * (k as f64 + 0.5) / 3.0).collect();
    for i in 0..12 {
        let p = w.position(NodeId(i));
        let on_lane = lanes.iter().any(|&c| (p.x - c).abs() <= 1e-6)
            || lanes.iter().any(|&c| (p.y - c).abs() <= 1e-6);
        assert!(on_lane, "node {i} at {p:?} was not snapped to a street");
    }
}

//! Energy-accounting tests: the radio/CPU energy model behind the paper's
//! "significantly lower energy consumption" claim.

use alert_crypto::CostModel;
use alert_sim::{Api, DataRequest, Frame, ProtocolNode, ScenarioConfig, TrafficClass, World};

/// One-shot protocol: the source broadcasts each packet once; receivers do
/// nothing. Gives exactly one transmission per data request.
struct OneShot;

impl ProtocolNode for OneShot {
    type Msg = u64;
    fn name() -> &'static str {
        "ONESHOT"
    }
    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.charge_symmetric(1);
        api.send_broadcast(0, req.bytes, TrafficClass::Data, Some(req.packet));
    }
    fn on_frame(&mut self, _api: &mut Api<'_, Self::Msg>, _frame: Frame<Self::Msg>) {}
}

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_nodes(50).with_duration(10.0);
    cfg.traffic.pairs = 2;
    cfg
}

#[test]
fn transmit_energy_accumulates() {
    let mut w = World::new(scenario(), 1, |_, _| OneShot);
    w.run();
    let m = w.metrics();
    assert!(m.energy_tx_j > 0.0, "no tx energy recorded");
    assert!(m.energy_rx_j > 0.0, "no rx energy recorded");
    // Broadcasts reach many receivers: rx energy should not be below tx
    // for a broadcast-only protocol with several neighbors.
    assert!(m.energy_rx_j > m.energy_tx_j * 0.5);
}

#[test]
fn cpu_energy_follows_the_cost_model() {
    let mut w = World::new(scenario(), 2, |_, _| OneShot);
    w.run();
    let m = w.metrics();
    let sends = m.packets_sent() as f64;
    let expected = sends * CostModel::PAPER_1_8GHZ.symmetric_s * 1.0;
    let got = m.cpu_energy_j(&CostModel::PAPER_1_8GHZ, 1.0);
    assert!(
        (got - expected).abs() < 1e-9,
        "cpu energy {got} != {expected}"
    );
    assert_eq!(m.cpu_energy_j(&CostModel::FREE, 1.0), 0.0);
}

#[test]
fn per_packet_energy_is_finite_when_delivering() {
    // Flood-style protocol that actually delivers.
    struct Deliver;
    impl ProtocolNode for Deliver {
        type Msg = alert_sim::PacketId;
        fn name() -> &'static str {
            "DELIVER"
        }
        fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
            api.send_broadcast(req.packet, req.bytes, TrafficClass::Data, Some(req.packet));
        }
        fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
            if api.is_true_destination(frame.msg) {
                api.mark_delivered(frame.msg);
            }
        }
    }
    let mut w = World::new(scenario(), 3, |_, _| Deliver);
    w.run();
    let m = w.metrics();
    let e = m.energy_per_delivered_packet_j(&CostModel::PAPER_1_8GHZ, 1.0);
    if m.delivery_rate() > 0.0 {
        assert!(e.is_finite() && e > 0.0, "energy/packet {e}");
    }
}

#[test]
fn doubling_power_doubles_radio_energy() {
    let mut cfg_hi = scenario();
    cfg_hi.energy.tx_watts *= 2.0;
    cfg_hi.energy.rx_watts *= 2.0;
    let mut lo = World::new(scenario(), 4, |_, _| OneShot);
    lo.run();
    let mut hi = World::new(cfg_hi, 4, |_, _| OneShot);
    hi.run();
    let (l, h) = (lo.metrics(), hi.metrics());
    assert!((h.energy_tx_j / l.energy_tx_j - 2.0).abs() < 1e-9);
    assert!((h.energy_rx_j / l.energy_rx_j - 2.0).abs() < 1e-9);
}

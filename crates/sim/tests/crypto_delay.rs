//! The crypto cost model must actually delay frames: a protocol that
//! charges public-key work before transmitting sees the charge on the
//! wire, and a destination's decryption delays the recorded delivery.

use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, Frame, NodeId, ProtocolNode, ScenarioConfig, Session, TrafficClass, World,
};

/// Sender charges `PK_OPS` public-key encryptions before each send;
/// receiver delivers immediately.
struct Charged {
    pk_ops: u64,
}

#[derive(Debug, Clone)]
struct Msg {
    packet: alert_sim::PacketId,
    #[allow(dead_code)] // models the payload; only its wire size matters
    bytes: usize,
}

impl ProtocolNode for Charged {
    type Msg = Msg;
    fn name() -> &'static str {
        "CHARGED"
    }
    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        api.charge_pk_encrypt(self.pk_ops);
        let next = api.neighbors()[0].pseudonym;
        api.mark_hop(req.packet);
        api.send_unicast(
            next,
            Msg {
                packet: req.packet,
                bytes: req.bytes,
            },
            req.bytes,
            TrafficClass::Data,
            Some(req.packet),
        );
    }
    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        if api.is_true_destination(frame.msg.packet) {
            api.mark_delivered(frame.msg.packet);
        }
    }
}

fn latency_with(pk_ops: u64) -> f64 {
    let mut cfg = ScenarioConfig::default().with_duration(10.0);
    cfg.traffic.interval_s = 100.0;
    let positions = vec![Point::new(100.0, 500.0), Point::new(300.0, 500.0)];
    let sessions = vec![Session {
        src: NodeId(0),
        dst: NodeId(1),
    }];
    let mut w = World::with_topology(cfg, 1, positions, sessions, |_, _| Charged { pk_ops });
    w.run();
    w.metrics().mean_latency().expect("delivered")
}

#[test]
fn charged_crypto_delays_the_wire() {
    let base = latency_with(0);
    let one = latency_with(1);
    let four = latency_with(4);
    // Each pk op is 250 ms under the paper model.
    assert!(
        (one - base - 0.25).abs() < 0.01,
        "one op added {:.3}s",
        one - base
    );
    assert!(
        (four - base - 1.0).abs() < 0.02,
        "four ops added {:.3}s",
        four - base
    );
}

#[test]
fn receiver_side_charge_delays_delivery_timestamp() {
    struct SlowReceiver;
    impl ProtocolNode for SlowReceiver {
        type Msg = Msg;
        fn name() -> &'static str {
            "SLOWRX"
        }
        fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
            let next = api.neighbors()[0].pseudonym;
            api.mark_hop(req.packet);
            api.send_unicast(
                next,
                Msg {
                    packet: req.packet,
                    bytes: req.bytes,
                },
                req.bytes,
                TrafficClass::Data,
                Some(req.packet),
            );
        }
        fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
            if api.is_true_destination(frame.msg.packet) {
                // Decrypt before accepting: the latency metric must
                // include this processing time.
                api.charge_pk_decrypt(1);
                api.mark_delivered(frame.msg.packet);
            }
        }
    }
    let mut cfg = ScenarioConfig::default().with_duration(10.0);
    cfg.traffic.interval_s = 100.0;
    let positions = vec![Point::new(100.0, 500.0), Point::new(300.0, 500.0)];
    let sessions = vec![Session {
        src: NodeId(0),
        dst: NodeId(1),
    }];
    let mut w = World::with_topology(cfg, 1, positions, sessions, |_, _| SlowReceiver);
    w.run();
    let lat = w.metrics().mean_latency().unwrap();
    assert!(
        lat > 0.25,
        "receiver decryption (250 ms) must land in the latency, got {lat:.3}s"
    );
}

//! Channel-model behavior: the stochastic MAC abstraction must respond to
//! its knobs the way a real 802.11 channel responds to load, loss, and
//! bitrate — these are the mechanisms behind the paper's density and
//! efficiency trends.

use alert_geom::Point;
use alert_sim::{
    Api, DataRequest, Frame, NodeId, ProtocolNode, ScenarioConfig, Session, TrafficClass, World,
};

/// Single-hop relay chain protocol: forwards along a fixed next-node
/// chain (node i -> node i+1) until the destination. Lets us measure
/// per-hop channel behavior without routing noise.
struct Chain;

#[derive(Debug, Clone)]
struct ChainMsg {
    packet: alert_sim::PacketId,
    bytes: usize,
    hop: usize,
}

impl ProtocolNode for Chain {
    type Msg = ChainMsg;
    fn name() -> &'static str {
        "CHAIN"
    }
    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let me = api.my_id().0;
        // Next node in the chain is my id + 1; resolve via neighbor table
        // order is unreliable, so the test topology spaces nodes within
        // range and we address by position match.
        let next = api
            .neighbors()
            .iter()
            .find(|n| n.position.x > api.my_pos().x + 1.0)
            .copied();
        if let Some(n) = next {
            api.mark_hop(req.packet);
            api.send_unicast(
                n.pseudonym,
                ChainMsg {
                    packet: req.packet,
                    bytes: req.bytes,
                    hop: me + 1,
                },
                req.bytes,
                TrafficClass::Data,
                Some(req.packet),
            );
        }
    }
    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let m = frame.msg;
        if api.is_true_destination(m.packet) {
            api.mark_delivered(m.packet);
            return;
        }
        let next = api
            .neighbors()
            .iter()
            .find(|n| n.position.x > api.my_pos().x + 1.0)
            .copied();
        if let Some(n) = next {
            api.mark_hop(m.packet);
            api.send_unicast(
                n.pseudonym,
                ChainMsg {
                    packet: m.packet,
                    bytes: m.bytes,
                    hop: m.hop + 1,
                },
                m.bytes,
                TrafficClass::Data,
                Some(m.packet),
            );
        }
    }
}

/// A 5-node west-to-east chain, 200 m spacing (radio range 250 m: each
/// node reaches exactly its chain neighbors).
fn chain_world(mut cfg: ScenarioConfig, seed: u64) -> World<Chain> {
    let positions: Vec<Point> = (0..5)
        .map(|i| Point::new(60.0 + 200.0 * i as f64, 500.0))
        .collect();
    cfg.duration_s = 20.0;
    let sessions = vec![Session {
        src: NodeId(0),
        dst: NodeId(4),
    }];
    World::with_topology(cfg, seed, positions, sessions, |_, _| Chain)
}

#[test]
fn chain_delivers_over_four_hops() {
    let mut w = chain_world(ScenarioConfig::default(), 1);
    w.run();
    let m = w.metrics();
    assert!(m.delivery_rate() > 0.99, "rate {}", m.delivery_rate());
    assert!(
        (m.hops_per_packet() - 4.0).abs() < 0.01,
        "hops {}",
        m.hops_per_packet()
    );
}

#[test]
fn latency_scales_with_payload_at_fixed_bitrate() {
    // Double the payload: per-hop serialization time doubles its share.
    let mut small_cfg = ScenarioConfig::default();
    small_cfg.traffic.packet_bytes = 256;
    let mut big_cfg = ScenarioConfig::default();
    big_cfg.traffic.packet_bytes = 2048;
    let mut small = chain_world(small_cfg, 2);
    small.run();
    let mut big = chain_world(big_cfg, 2);
    big.run();
    let (ls, lb) = (
        small.metrics().mean_latency().unwrap(),
        big.metrics().mean_latency().unwrap(),
    );
    // 4 hops x (2048-256)*8/2e6 = ~28.7 ms extra.
    let extra_ms = (lb - ls) * 1000.0;
    assert!(
        (20.0..40.0).contains(&extra_ms),
        "payload scaling off: +{extra_ms:.1} ms"
    );
}

#[test]
fn higher_bitrate_cuts_latency() {
    let slow = ScenarioConfig::default(); // 2 Mb/s
    let mut fast = ScenarioConfig::default();
    fast.mac.bitrate_bps = 11_000_000.0;
    let mut w_slow = chain_world(slow, 3);
    w_slow.run();
    let mut w_fast = chain_world(fast, 3);
    w_fast.run();
    assert!(
        w_fast.metrics().mean_latency().unwrap() < w_slow.metrics().mean_latency().unwrap(),
        "11 Mb/s must beat 2 Mb/s"
    );
}

#[test]
fn channel_loss_kills_chain_delivery_geometrically() {
    // Four hops at per-frame loss p: delivery ~ (1-p)^4 without recovery.
    let mut lossy = ScenarioConfig::default();
    lossy.mac.loss_probability = 0.2;
    let mut w = chain_world(lossy, 4);
    w.run();
    let rate = w.metrics().delivery_rate();
    let expected = 0.8f64.powi(4); // ~0.41
    assert!(
        (rate - expected).abs() < 0.2,
        "4-hop delivery under 20% loss should be near {expected:.2}, got {rate:.2}"
    );
    assert!(
        w.metrics().drops.contains_key("unicast_channel_loss"),
        "loss drops must be accounted"
    );
}

#[test]
fn zero_duration_grace_lets_in_flight_frames_land() {
    // Frames sent just before the duration boundary still deliver within
    // the grace second.
    let mut cfg = ScenarioConfig::default();
    cfg.traffic.start_s = 19.9; // single send right at the end
    cfg.traffic.interval_s = 100.0;
    let mut w = chain_world(cfg, 5);
    w.run();
    assert!(w.metrics().delivery_rate() > 0.99);
}
